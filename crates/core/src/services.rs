//! Per-component `Services` object: the component's window onto the
//! framework, handed to it once through [`Component::set_services`].

use crate::error::CcaError;
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The CCA component abstraction: a data-less object with one deferred
/// method, invoked by the framework at creation time. The component uses it
/// to register itself, its provides-ports and its uses-ports; components
/// that need the registry later (to fetch connected ports) keep a clone of
/// the [`Services`] handle.
pub trait Component {
    /// Called exactly once, immediately after instantiation.
    fn set_services(&mut self, services: Services);
}

/// Type-erased `Rc` duplicator stored alongside each provides-port.
type Cloner = Rc<dyn Fn(&dyn Any) -> Box<dyn Any>>;

/// A registered provides-port: the port object (an `Rc<dyn Trait>` boxed as
/// `Any`) plus enough metadata to type-check connections and to duplicate
/// the `Rc` when the framework moves it to a user.
pub(crate) struct PortObject {
    pub(crate) type_id: TypeId,
    pub(crate) type_name: &'static str,
    value: Box<dyn Any>,
    cloner: Cloner,
}

impl PortObject {
    fn new<P: Clone + 'static>(port: P) -> Self {
        PortObject {
            type_id: TypeId::of::<P>(),
            type_name: std::any::type_name::<P>(),
            value: Box::new(port),
            cloner: Rc::new(|a: &dyn Any| {
                Box::new(
                    a.downcast_ref::<P>()
                        .expect("cloner is only invoked on its own P")
                        .clone(),
                ) as Box<dyn Any>
            }),
        }
    }

    /// Clone the inner `Rc<dyn Trait>` (pointer copy, no deep clone).
    pub(crate) fn duplicate(&self) -> Box<dyn Any> {
        (self.cloner)(self.value.as_ref())
    }

    pub(crate) fn downcast_ref<P: 'static>(&self) -> Option<&P> {
        self.value.downcast_ref::<P>()
    }
}

/// A declared uses-port: expected type and, once `connect` has run, the
/// provider's port object.
pub(crate) struct UsesSlot {
    pub(crate) type_id: TypeId,
    pub(crate) type_name: &'static str,
    pub(crate) connected: Option<Box<dyn Any>>,
    /// `instance.port` of the provider, for arena rendering.
    pub(crate) connected_to: Option<(String, String)>,
    /// Optional ports may stay dangling at `go` (CCA's minOccurs = 0).
    pub(crate) optional: bool,
}

pub(crate) struct ServicesState {
    pub(crate) instance: String,
    pub(crate) provides: BTreeMap<String, PortObject>,
    pub(crate) uses: BTreeMap<String, UsesSlot>,
    pub(crate) profiler: crate::profile::Profiler,
    pub(crate) executor: crate::executor::Executor,
}

/// Cheap-to-clone handle onto one component's port registry.
///
/// The framework creates one per instance; the component receives it in
/// [`Component::set_services`] and typically stores it to call
/// [`Services::get_port`] during execution — mirroring
/// `gov.cca.Services::getPort`.
#[derive(Clone)]
pub struct Services {
    pub(crate) state: Rc<RefCell<ServicesState>>,
}

impl Services {
    /// Create a registry for instance `name`. Public so substrates can unit
    /// test components without a full framework.
    pub fn new(name: &str) -> Self {
        Self::with_profiler(name, crate::profile::Profiler::new())
    }

    /// Create a registry sharing the framework's [`crate::profile::Profiler`]
    /// (with a private serial executor; see [`Services::with_runtime`]).
    pub fn with_profiler(name: &str, profiler: crate::profile::Profiler) -> Self {
        let executor = crate::executor::Executor::new(profiler.clone());
        Self::with_runtime(name, profiler, executor)
    }

    /// Create a registry sharing both framework-wide runtime services: the
    /// profiler and the patch-kernel [`crate::executor::Executor`]. This is
    /// what [`crate::Framework::instantiate`] uses, so every component sees
    /// the same worker-count setting.
    pub fn with_runtime(
        name: &str,
        profiler: crate::profile::Profiler,
        executor: crate::executor::Executor,
    ) -> Self {
        Services {
            state: Rc::new(RefCell::new(ServicesState {
                instance: name.to_string(),
                provides: BTreeMap::new(),
                uses: BTreeMap::new(),
                profiler,
                executor,
            })),
        }
    }

    /// The shared performance registry (paper future-work (4): per-
    /// component timing à la TAU). Components bracket expensive port
    /// bodies with `services.profiler().scope("Instance.port")`.
    pub fn profiler(&self) -> crate::profile::Profiler {
        self.state.borrow().profiler.clone()
    }

    /// The framework's shared patch-kernel executor. Components hand it
    /// independent per-patch work via [`crate::executor::Executor::run`];
    /// at the default worker count of 1 everything runs inline, so using
    /// it costs nothing when parallelism is off.
    pub fn executor(&self) -> crate::executor::Executor {
        self.state.borrow().executor.clone()
    }

    /// The instance name this registry belongs to.
    pub fn instance_name(&self) -> String {
        self.state.borrow().instance.clone()
    }

    /// Export a provides-port. By convention `P` is `Rc<dyn SomePort>`; the
    /// framework moves clones of the `Rc` to connected users.
    ///
    /// # Panics
    /// Panics if `name` was already registered on this component — port
    /// names are a component's public API and a collision is a programming
    /// error, matching CCAFFEINE's behaviour of refusing the registration.
    pub fn add_provides_port<P: Clone + 'static>(&self, name: &str, port: P) {
        let mut st = self.state.borrow_mut();
        assert!(
            !st.provides.contains_key(name),
            "component '{}' registered provides port '{}' twice",
            st.instance,
            name
        );
        st.provides.insert(name.to_string(), PortObject::new(port));
    }

    /// Declare a uses-port of type `P` (again `Rc<dyn SomePort>`).
    ///
    /// # Panics
    /// Panics on duplicate registration, as for provides-ports.
    pub fn register_uses_port<P: Clone + 'static>(&self, name: &str) {
        self.register_uses_port_impl::<P>(name, false);
    }

    /// Declare a uses-port that may legitimately stay unconnected (the
    /// component has a built-in default behaviour). The script
    /// interpreter's dangling-port check at `go` skips these.
    pub fn register_optional_uses_port<P: Clone + 'static>(&self, name: &str) {
        self.register_uses_port_impl::<P>(name, true);
    }

    fn register_uses_port_impl<P: Clone + 'static>(&self, name: &str, optional: bool) {
        let mut st = self.state.borrow_mut();
        assert!(
            !st.uses.contains_key(name),
            "component '{}' registered uses port '{}' twice",
            st.instance,
            name
        );
        st.uses.insert(
            name.to_string(),
            UsesSlot {
                type_id: TypeId::of::<P>(),
                type_name: std::any::type_name::<P>(),
                connected: None,
                connected_to: None,
                optional,
            },
        );
    }

    /// Fetch the port connected to uses-port `name`.
    ///
    /// Errors with [`CcaError::NotConnected`] before wiring, and
    /// [`CcaError::UnknownPort`] if the name was never declared.
    pub fn get_port<P: Clone + 'static>(&self, name: &str) -> Result<P, CcaError> {
        let st = self.state.borrow();
        let slot = st.uses.get(name).ok_or_else(|| CcaError::UnknownPort {
            instance: st.instance.clone(),
            port: name.to_string(),
        })?;
        let boxed = slot
            .connected
            .as_ref()
            .ok_or_else(|| CcaError::NotConnected {
                instance: st.instance.clone(),
                port: name.to_string(),
            })?;
        Ok(boxed
            .downcast_ref::<P>()
            .expect("connect() type-checked this slot")
            .clone())
    }

    /// CCA's `releasePort`: drop the borrowed reference. A later
    /// [`Services::get_port`] re-fetches it; the connection itself persists
    /// until the framework disconnects it.
    ///
    /// References handed out are `Rc` clones owned by the caller, so there
    /// is no bookkeeping to undo — but a release of a port this component
    /// never declared is a wiring bug and errors with
    /// [`CcaError::UnknownPort`] instead of silently succeeding.
    pub fn release_port(&self, name: &str) -> Result<(), CcaError> {
        let st = self.state.borrow();
        if st.uses.contains_key(name) {
            Ok(())
        } else {
            Err(CcaError::UnknownPort {
                instance: st.instance.clone(),
                port: name.to_string(),
            })
        }
    }

    /// Names of all provides-ports (sorted).
    pub fn provides_names(&self) -> Vec<String> {
        self.state.borrow().provides.keys().cloned().collect()
    }

    /// Names of all uses-ports (sorted).
    pub fn uses_names(&self) -> Vec<String> {
        self.state.borrow().uses.keys().cloned().collect()
    }

    /// Is the given uses-port currently connected?
    pub fn is_connected(&self, name: &str) -> bool {
        self.state
            .borrow()
            .uses
            .get(name)
            .map(|s| s.connected.is_some())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Echo {
        fn echo(&self) -> i32;
    }
    struct E(i32);
    impl Echo for E {
        fn echo(&self) -> i32 {
            self.0
        }
    }

    #[test]
    fn provides_then_downcast() {
        let s = Services::new("x");
        s.add_provides_port::<Rc<dyn Echo>>("e", Rc::new(E(7)));
        let st = s.state.borrow();
        let po = st.provides.get("e").unwrap();
        let rc = po.downcast_ref::<Rc<dyn Echo>>().unwrap();
        assert_eq!(rc.echo(), 7);
        // duplicate() yields an independent box holding a cloned Rc.
        let dup = po.duplicate();
        let rc2 = dup.downcast_ref::<Rc<dyn Echo>>().unwrap();
        assert_eq!(rc2.echo(), 7);
        assert!(Rc::ptr_eq(rc, rc2));
    }

    #[test]
    fn get_port_before_connect_errors() {
        let s = Services::new("u");
        s.register_uses_port::<Rc<dyn Echo>>("in");
        let err = s.get_port::<Rc<dyn Echo>>("in").err().unwrap();
        assert!(matches!(err, CcaError::NotConnected { .. }));
        let err = s.get_port::<Rc<dyn Echo>>("nope").err().unwrap();
        assert!(matches!(err, CcaError::UnknownPort { .. }));
    }

    #[test]
    fn release_port_rejects_unknown_names() {
        let s = Services::new("u");
        s.register_uses_port::<Rc<dyn Echo>>("in");
        // Releasing a declared port is fine even while unconnected...
        s.release_port("in").unwrap();
        // ...but releasing a name that was never declared is a wiring bug.
        let err = s.release_port("ghost").err().unwrap();
        assert!(matches!(err, CcaError::UnknownPort { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_provides_panics() {
        let s = Services::new("x");
        s.add_provides_port::<Rc<dyn Echo>>("e", Rc::new(E(1)));
        s.add_provides_port::<Rc<dyn Echo>>("e", Rc::new(E(2)));
    }
}
