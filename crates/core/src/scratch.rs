//! Scratch-workspace pools: reusable, size-classed temporary buffers for
//! the SAMR hot loops (RKC stage vectors, diffusion property tables, ghost
//! pack/unpack buffers, kinetics thermo tables).
//!
//! The paper's performance claim (Tables 4/5) is that componentization
//! costs ≲1.5% because the inner loops are numerics-dominated. Per-step
//! heap allocation quietly breaks that premise — `vec![0.0; n]` inside a
//! stage loop is a round trip through the global allocator per call, and
//! under the parallel patch executor every worker contends on it. The
//! discipline here is the one waLBerla attributes its throughput to:
//! preallocated per-block (here: per-thread) buffers reused across macro
//! steps.
//!
//! Design:
//!
//! * [`take_f64`] / [`take_i64`] check a buffer out of a **thread-local**
//!   pool, zeroed to the requested length — bit-identical to a fresh
//!   `vec![0.0; n]` by construction. The returned [`ScratchF64`] /
//!   [`ScratchI64`] guard derefs to `Vec<T>` and returns the storage to
//!   the pool on drop.
//! * Buffers are binned by power-of-two **size class**; a checkout only
//!   allocates when its bin is empty (a *pool miss*). After one warm-up
//!   step every hot loop runs at zero steady-state allocations.
//! * Two global counters make that claim testable: [`checkouts`] (every
//!   take) and [`alloc_events`] (pool misses, i.e. real heap
//!   allocations). They are deterministic — pure functions of the work
//!   done, never of timing — so CI can freeze them in a benchmark
//!   baseline.
//! * [`set_pooling`]`(false)` turns the pool into a pass-through that
//!   always allocates fresh zeroed buffers (still counting them): the
//!   *fresh-alloc reference path* that determinism tests diff against.
//!
//! Ownership rule (see DESIGN.md §8): scratch is taken by the innermost
//! code that needs it and never crosses a port boundary — port signatures
//! stay allocation-agnostic, so callers are free to pass plain slices.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Maximum buffers retained per (thread, size-class) bin. Hot loops need
/// a handful of live buffers at a time; anything beyond this is returned
/// to the allocator instead of hoarded.
const MAX_PER_BIN: usize = 32;

/// Pooling toggle: `true` = reuse buffers (production), `false` = always
/// allocate fresh (the reference path determinism tests compare against).
static POOLING: AtomicBool = AtomicBool::new(true);

/// Total checkouts since the last [`reset_stats`] (process-wide).
static CHECKOUTS: AtomicU64 = AtomicU64::new(0);

/// Total real heap allocations (pool misses) since the last
/// [`reset_stats`] (process-wide).
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread allocation tally — what the profiler diffs around a
    /// scope, so concurrent workers cannot pollute each other's
    /// attribution. Never reset; consumers take deltas.
    static TL_ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Enable or disable buffer reuse. Disabling does *not* clear existing
/// pools; it only makes every checkout allocate fresh (and count as an
/// allocation event), giving a fresh-alloc reference path with identical
/// numerics.
pub fn set_pooling(enabled: bool) {
    POOLING.store(enabled, Ordering::Relaxed);
}

/// Is buffer reuse enabled?
pub fn pooling_enabled() -> bool {
    POOLING.load(Ordering::Relaxed)
}

/// Snapshot of the global scratch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers checked out (hits + misses).
    pub checkouts: u64,
    /// Real heap allocations (pool misses, or every checkout while
    /// pooling is disabled).
    pub alloc_events: u64,
}

/// Read the global counters.
pub fn stats() -> ScratchStats {
    ScratchStats {
        checkouts: CHECKOUTS.load(Ordering::Relaxed),
        alloc_events: ALLOC_EVENTS.load(Ordering::Relaxed),
    }
}

/// Heap allocations (pool misses) so far; the profiler attributes deltas
/// of this counter to profiled regions.
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Buffer checkouts so far.
pub fn checkouts() -> u64 {
    CHECKOUTS.load(Ordering::Relaxed)
}

/// Heap allocations performed *by the calling thread*. Monotone and
/// never reset; take deltas around a region to attribute its misses
/// (this is what [`crate::profile::ProfileScope`] does).
pub fn thread_alloc_events() -> u64 {
    TL_ALLOC_EVENTS.with(Cell::get)
}

/// Zero both global counters (pools keep their warm buffers).
pub fn reset_stats() {
    CHECKOUTS.store(0, Ordering::Relaxed);
    ALLOC_EVENTS.store(0, Ordering::Relaxed);
}

/// Number of idle buffers retained by the *current thread's* pools (both
/// element types) — the "cache size" a benchmark can freeze.
pub fn retained_buffers() -> usize {
    POOL_F64.with(|p| p.borrow().retained()) + POOL_I64.with(|p| p.borrow().retained())
}

/// Drop every idle buffer retained by the current thread's pools.
pub fn clear_thread_pools() {
    POOL_F64.with(|p| p.borrow_mut().clear());
    POOL_I64.with(|p| p.borrow_mut().clear());
}

/// Per-thread pool: `bins[k]` holds idle buffers of capacity ≥ `2^k`.
struct Pool<T> {
    bins: Vec<Vec<Vec<T>>>,
}

impl<T> Pool<T> {
    const fn new() -> Self {
        Pool { bins: Vec::new() }
    }

    fn retained(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    fn clear(&mut self) {
        self.bins.clear();
    }

    /// Bin index for a request of `n` elements.
    fn class_of(n: usize) -> usize {
        n.next_power_of_two().trailing_zeros() as usize
    }

    /// Check out raw storage with capacity ≥ `n` (not yet sized/zeroed).
    fn take_raw(&mut self, n: usize) -> (Vec<T>, usize) {
        let class = Self::class_of(n);
        CHECKOUTS.fetch_add(1, Ordering::Relaxed);
        if pooling_enabled() {
            if let Some(bin) = self.bins.get_mut(class) {
                if let Some(buf) = bin.pop() {
                    return (buf, class);
                }
            }
        }
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        TL_ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        (Vec::with_capacity(1usize << class), class)
    }

    /// Return storage to its bin (keeps capacity, discards contents).
    fn put_back(&mut self, mut buf: Vec<T>, class: usize) {
        if !pooling_enabled() {
            return;
        }
        if self.bins.len() <= class {
            self.bins.resize_with(class + 1, Vec::new);
        }
        let bin = &mut self.bins[class];
        if bin.len() < MAX_PER_BIN {
            buf.clear();
            bin.push(buf);
        }
    }
}

macro_rules! scratch_type {
    ($elem:ty, $pool:ident, $take:ident, $guard:ident, $doc_take:expr, $doc_guard:expr) => {
        thread_local! {
            static $pool: RefCell<Pool<$elem>> = const { RefCell::new(Pool::new()) };
        }

        #[doc = $doc_guard]
        ///
        /// Derefs to `Vec` so the full slice/`push` API is available; the
        /// storage returns to the current thread's pool on drop.
        pub struct $guard {
            buf: Vec<$elem>,
            class: usize,
        }

        impl std::ops::Deref for $guard {
            type Target = Vec<$elem>;
            fn deref(&self) -> &Vec<$elem> {
                &self.buf
            }
        }

        impl std::ops::DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut Vec<$elem> {
                &mut self.buf
            }
        }

        impl AsRef<[$elem]> for $guard {
            fn as_ref(&self) -> &[$elem] {
                &self.buf
            }
        }

        impl AsMut<[$elem]> for $guard {
            fn as_mut(&mut self) -> &mut [$elem] {
                &mut self.buf
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                let buf = std::mem::take(&mut self.buf);
                $pool.with(|p| p.borrow_mut().put_back(buf, self.class));
            }
        }

        #[doc = $doc_take]
        ///
        /// The buffer has length `n` and every element is zero —
        /// bit-identical to a fresh `vec![0 as _; n]`.
        pub fn $take(n: usize) -> $guard {
            $pool.with(|p| {
                let (mut buf, class) = p.borrow_mut().take_raw(n);
                buf.clear();
                buf.resize(n, <$elem as Default>::default());
                $guard { buf, class }
            })
        }
    };
}

scratch_type!(
    f64,
    POOL_F64,
    take_f64,
    ScratchF64,
    "Check out a zeroed `f64` scratch buffer of length `n`.",
    "RAII guard over a pooled `Vec<f64>` scratch buffer."
);
scratch_type!(
    i64,
    POOL_I64,
    take_i64,
    ScratchI64,
    "Check out a zeroed `i64` scratch buffer of length `n`.",
    "RAII guard over a pooled `Vec<i64>` scratch buffer."
);

/// Serialize tests (across modules of this crate) that touch the global
/// counters or the pooling flag.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the global counters or pooling flag.
    fn with_counter_lock<R>(f: impl FnOnce() -> R) -> R {
        let _g = test_guard();
        set_pooling(true);
        f()
    }

    #[test]
    fn buffers_come_back_zeroed_and_sized() {
        with_counter_lock(|| {
            let mut a = take_f64(10);
            assert_eq!(a.len(), 10);
            assert!(a.iter().all(|&v| v == 0.0));
            a[3] = 7.0;
            drop(a);
            // The same storage comes back, but zeroed again.
            let b = take_f64(10);
            assert!(b.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn warm_pool_has_no_alloc_events() {
        with_counter_lock(|| {
            clear_thread_pools();
            // Warm up: one buffer per class used below.
            drop(take_f64(100));
            drop(take_i64(33));
            let before = stats();
            for _ in 0..50 {
                let a = take_f64(100);
                let b = take_i64(33);
                drop(a);
                drop(b);
            }
            let after = stats();
            assert_eq!(
                after.alloc_events, before.alloc_events,
                "warm pool must not allocate"
            );
            assert_eq!(after.checkouts, before.checkouts + 100);
        });
    }

    #[test]
    fn same_class_reuse_across_sizes() {
        with_counter_lock(|| {
            clear_thread_pools();
            drop(take_f64(120)); // class 128
            let before = alloc_events();
            drop(take_f64(70)); // also class 128: reuse
            assert_eq!(alloc_events(), before);
            let _ = take_f64(200); // class 256: miss
            assert_eq!(alloc_events(), before + 1);
        });
    }

    #[test]
    fn pooling_off_always_allocates_but_numerics_match() {
        with_counter_lock(|| {
            clear_thread_pools();
            set_pooling(false);
            let before = stats();
            let a = take_f64(16);
            let b = take_f64(16);
            assert_eq!(a.len(), 16);
            assert!(a.iter().chain(b.iter()).all(|&v| v == 0.0));
            drop(a);
            drop(b);
            let c = take_f64(16);
            assert!(c.iter().all(|&v| v == 0.0));
            let after = stats();
            // Every checkout is an allocation on the reference path.
            assert_eq!(after.alloc_events - before.alloc_events, 3);
            assert_eq!(after.checkouts - before.checkouts, 3);
            drop(c);
            set_pooling(true);
            assert_eq!(retained_buffers(), 0, "disabled pool must not retain");
        });
    }

    #[test]
    fn retained_buffers_counts_idle_storage() {
        with_counter_lock(|| {
            clear_thread_pools();
            let a = take_f64(8);
            let b = take_f64(8);
            assert_eq!(retained_buffers(), 0);
            drop(a);
            drop(b);
            assert_eq!(retained_buffers(), 2);
            clear_thread_pools();
            assert_eq!(retained_buffers(), 0);
        });
    }

    #[test]
    fn zero_length_checkout_is_fine() {
        with_counter_lock(|| {
            let mut v = take_i64(0);
            assert!(v.is_empty());
            v.push(3);
            assert_eq!(v[0], 3);
        });
    }

    #[test]
    fn vec_api_available_through_deref() {
        with_counter_lock(|| {
            let mut v = take_i64(0);
            v.extend([5, 1, 4]);
            v.sort_unstable();
            v.dedup();
            assert_eq!(&**v, &[1, 4, 5]);
        });
    }
}
