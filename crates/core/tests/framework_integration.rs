//! Framework-level integration tests: optional ports, profiler plumbing,
//! arena determinism, and script-driven assembly edge cases.

use cca_core::script::run_script;
use cca_core::{Component, Framework, GoPort, Services};
use std::cell::Cell;
use std::rc::Rc;

trait NumberPort {
    fn value(&self) -> f64;
}

struct Five;
impl NumberPort for Five {
    fn value(&self) -> f64 {
        5.0
    }
}

struct Provider;
impl Component for Provider {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn NumberPort>>("num", Rc::new(Five));
    }
}

/// A consumer whose uses-port is OPTIONAL: go() works both wired and
/// dangling (built-in default 1.0).
struct FlexGo {
    services: Services,
    result: Rc<Cell<f64>>,
}
impl GoPort for FlexGo {
    fn go(&self) -> Result<(), String> {
        let v = self
            .services
            .get_port::<Rc<dyn NumberPort>>("num-in")
            .map(|p| p.value())
            .unwrap_or(1.0);
        self.result.set(v);
        Ok(())
    }
}
struct Flexible {
    result: Rc<Cell<f64>>,
}
impl Component for Flexible {
    fn set_services(&mut self, s: Services) {
        s.register_optional_uses_port::<Rc<dyn NumberPort>>("num-in");
        s.add_provides_port::<Rc<dyn GoPort>>(
            "go",
            Rc::new(FlexGo {
                services: s.clone(),
                result: self.result.clone(),
            }),
        );
    }
}

fn palette(result: Rc<Cell<f64>>) -> Framework {
    let mut fw = Framework::new();
    fw.register_class("Provider", || Box::new(Provider));
    fw.register_class("Flexible", move || {
        Box::new(Flexible {
            result: result.clone(),
        })
    });
    fw
}

#[test]
fn optional_port_may_stay_dangling_at_go() {
    let result = Rc::new(Cell::new(0.0));
    let mut fw = palette(result.clone());
    run_script(&mut fw, "instantiate Flexible f\ngo f go\n").unwrap();
    assert_eq!(result.get(), 1.0, "built-in default used");
}

#[test]
fn optional_port_uses_connection_when_wired() {
    let result = Rc::new(Cell::new(0.0));
    let mut fw = palette(result.clone());
    run_script(
        &mut fw,
        "instantiate Provider p\ninstantiate Flexible f\nconnect f num-in p num\ngo f go\n",
    )
    .unwrap();
    assert_eq!(result.get(), 5.0, "wired provider used");
}

#[test]
fn profiler_times_script_driven_go() {
    let result = Rc::new(Cell::new(0.0));
    let mut fw = palette(result);
    fw.profiler().set_enabled(true);
    run_script(&mut fw, "instantiate Flexible f\ngo f go\ngo f go\n").unwrap();
    let stat = fw.profiler().stat("f.go").expect("go timed");
    assert_eq!(stat.calls, 2);
}

#[test]
fn arena_rendering_is_deterministic() {
    let result = Rc::new(Cell::new(0.0));
    let render = || {
        let mut fw = palette(result.clone());
        fw.instantiate("Provider", "p").unwrap();
        fw.instantiate("Flexible", "f").unwrap();
        fw.connect("f", "num-in", "p", "num").unwrap();
        fw.render_arena()
    };
    assert_eq!(render(), render());
}

#[test]
fn script_rejects_connect_after_typo_with_line_number() {
    let result = Rc::new(Cell::new(0.0));
    let mut fw = palette(result);
    let err = run_script(
        &mut fw,
        "instantiate Provider p\n\
         instantiate Flexible f\n\
         connect f num-in p wrong-port\n",
    )
    .err()
    .unwrap();
    // The framework error (unknown port) passes through untouched; a
    // script-level error would carry line 3.
    let msg = err.to_string();
    assert!(msg.contains("wrong-port"), "{msg}");
}

#[test]
fn disconnect_then_reconnect_swaps_provider() {
    // Two providers; rewiring mid-session changes what the consumer sees:
    // the dynamic-reconfiguration property behind the paper's EFM swap.
    struct Nine;
    impl NumberPort for Nine {
        fn value(&self) -> f64 {
            9.0
        }
    }
    struct Provider9;
    impl Component for Provider9 {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn NumberPort>>("num", Rc::new(Nine));
        }
    }
    let result = Rc::new(Cell::new(0.0));
    let mut fw = palette(result.clone());
    fw.register_class("Provider9", || Box::new(Provider9));
    fw.instantiate("Provider", "p5").unwrap();
    fw.instantiate("Provider9", "p9").unwrap();
    fw.instantiate("Flexible", "f").unwrap();
    fw.connect("f", "num-in", "p5", "num").unwrap();
    fw.go("f", "go").unwrap();
    assert_eq!(result.get(), 5.0);
    fw.disconnect("f", "num-in").unwrap();
    fw.connect("f", "num-in", "p9", "num").unwrap();
    fw.go("f", "go").unwrap();
    assert_eq!(result.get(), 9.0);
}
