//! `cca-transport` — mixture-averaged gas-phase transport properties: the
//! substitute for the DRFM Fortran 77 package (Paul, SAND98-8203) that the
//! paper wraps as `DRFMComponent`.
//!
//! What the reaction–diffusion assembly needs from DRFM is the pair
//! `(λ, ρD_i)` entering `K ∇·(B ∇Φ)` (paper Eq. 3): the mixture thermal
//! conductivity and the mixture-averaged diffusion coefficient of each
//! species, both functions of temperature, pressure and composition.
//!
//! We model each species with a kinetic-theory-shaped correlation anchored
//! at 300 K / 1 atm reference values from standard tables:
//!
//! * binary diffusivity into the bath: `D_i = D_i^ref (T/300)^1.7 (P_atm/P)`
//!   (Chapman–Enskog temperature exponent for moderate temperatures);
//! * species conductivity: `λ_i = λ_i^ref (T/300)^0.8`;
//! * mixture rules: Blanc's law for diffusion
//!   (`D_i,mix = (1−X_i)/Σ_{j≠i} X_j/D_ij`, with the symmetric pair
//!   combination `D_ij = D_i D_j / D_bath`, which reduces exactly to the
//!   tabulated binary coefficient when the partner is the N₂ bath), and
//!   the Mathur/Wassiljewa-style average for conductivity
//!   (`λ = ½(Σ X_j λ_j + 1/Σ(X_j/λ_j))`).
//!
//! Absolute agreement with DRFM is not required for the reproduction (the
//! paper's performance results do not depend on the third decimal of a
//! diffusivity); realistic magnitudes, orderings (H > H₂ ≫ heavy species)
//! and temperature scaling are, and those hold here.

/// Reference transport data for one species at 300 K and 1 atm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeciesTransport {
    /// Species name (matches the chemistry species table).
    pub name: &'static str,
    /// Binary diffusivity into N₂ at 300 K, 1 atm (m²/s).
    pub d_ref: f64,
    /// Thermal conductivity at 300 K (W/(m·K)).
    pub lambda_ref: f64,
}

/// Standard-pressure reference, Pa.
pub const P_ATM: f64 = 101_325.0;

/// Table for the H/O/N system used by both mechanisms in `cca-chem`.
pub fn h2_air_transport_table() -> Vec<SpeciesTransport> {
    vec![
        SpeciesTransport {
            name: "H2",
            d_ref: 7.8e-5,
            lambda_ref: 0.182,
        },
        SpeciesTransport {
            name: "O2",
            d_ref: 2.0e-5,
            lambda_ref: 0.026,
        },
        SpeciesTransport {
            name: "O",
            d_ref: 4.0e-5,
            lambda_ref: 0.042,
        },
        SpeciesTransport {
            name: "OH",
            d_ref: 4.0e-5,
            lambda_ref: 0.047,
        },
        SpeciesTransport {
            name: "H",
            d_ref: 1.5e-4,
            lambda_ref: 0.300,
        },
        SpeciesTransport {
            name: "H2O",
            d_ref: 2.4e-5,
            lambda_ref: 0.019,
        },
        SpeciesTransport {
            name: "HO2",
            d_ref: 2.0e-5,
            lambda_ref: 0.026,
        },
        SpeciesTransport {
            name: "H2O2",
            d_ref: 1.9e-5,
            lambda_ref: 0.025,
        },
        SpeciesTransport {
            name: "N2",
            d_ref: 2.0e-5,
            lambda_ref: 0.026,
        },
    ]
}

/// Mixture-averaged transport evaluator over a fixed species set.
#[derive(Clone, Debug)]
pub struct TransportModel {
    table: Vec<SpeciesTransport>,
    /// Reference diffusivity of the bath gas (N₂ self-diffusion), the
    /// normalizer of the pair-combination rule.
    d_bath: f64,
}

impl TransportModel {
    /// Build for an ordered list of species names; every name must exist in
    /// the reference table.
    ///
    /// # Panics
    /// Panics on an unknown species name — transport data is part of the
    /// problem specification, so a gap is a setup error.
    pub fn for_species(names: &[&str]) -> Self {
        let all = h2_air_transport_table();
        let table = names
            .iter()
            .map(|n| {
                *all.iter()
                    .find(|s| s.name == *n)
                    .unwrap_or_else(|| panic!("no transport data for species '{n}'"))
            })
            .collect();
        let d_bath = all
            .iter()
            .find(|s| s.name == "N2")
            .map(|s| s.d_ref)
            .expect("reference table always carries the N2 bath");
        TransportModel { table, d_bath }
    }

    /// Number of species.
    pub fn n_species(&self) -> usize {
        self.table.len()
    }

    /// Pure-species diffusivity into the bath at `(t, p)`, m²/s.
    pub fn species_diffusivity(&self, i: usize, t: f64, p: f64) -> f64 {
        self.table[i].d_ref * (t / 300.0).powf(1.7) * (P_ATM / p)
    }

    /// Pure-species thermal conductivity at `t`, W/(m·K).
    pub fn species_conductivity(&self, i: usize, t: f64) -> f64 {
        self.table[i].lambda_ref * (t / 300.0).powf(0.8)
    }

    /// Mixture-averaged diffusion coefficients (m²/s) from mole fractions
    /// `x`; writes one value per species into `out`.
    pub fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        let n = self.table.len();
        debug_assert_eq!(x.len(), n);
        debug_assert_eq!(out.len(), n);
        for (i, oi) in out.iter_mut().enumerate() {
            let di = self.species_diffusivity(i, t, p);
            let mut denom = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                if j == i {
                    continue;
                }
                let dj = self.species_diffusivity(j, t, p);
                let d_bath_tp = self.d_bath * (t / 300.0).powf(1.7) * (P_ATM / p);
                let dij = di * dj / d_bath_tp;
                denom += xj / dij;
            }
            *oi = if denom > 0.0 {
                (1.0 - x[i]).max(1e-12) / denom
            } else {
                // Pure species: Blanc's law degenerates; self-diffusion.
                di
            };
        }
    }

    /// Mixture thermal conductivity (W/(m·K)) from mole fractions.
    pub fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        let mut direct = 0.0;
        let mut recip = 0.0;
        for (xi, s) in x.iter().zip(&self.table) {
            let li = s.lambda_ref * (t / 300.0).powf(0.8);
            direct += xi * li;
            recip += xi / li;
        }
        0.5 * (direct + 1.0 / recip.max(1e-300))
    }

    /// Upper bound on any mixture diffusivity at `(t, p)` — the quantity
    /// the paper's `MaxDiffCoeffEvaluator` feeds to the RKC integrator for
    /// its stable-time-step (spectral radius) estimate.
    pub fn max_diffusivity(&self, t: f64, p: f64) -> f64 {
        (0..self.table.len())
            .map(|i| self.species_diffusivity(i, t, p))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransportModel {
        TransportModel::for_species(&["H2", "O2", "O", "OH", "H", "H2O", "HO2", "H2O2", "N2"])
    }

    fn air_x(n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        x[1] = 0.21; // O2
        x[n - 1] = 0.79; // N2
        x
    }

    #[test]
    fn hydrogen_outdiffuses_oxygen() {
        let m = model();
        let x = air_x(m.n_species());
        let mut d = vec![0.0; m.n_species()];
        m.mix_diffusivities(300.0, P_ATM, &x, &mut d);
        assert!(d[0] > 3.0 * d[1], "D_H2 = {}, D_O2 = {}", d[0], d[1]);
        // H atoms are the fastest diffusers of all.
        assert!(d[4] > d[0]);
    }

    #[test]
    fn diffusivity_scales_with_t_and_p() {
        let m = model();
        let d300 = m.species_diffusivity(0, 300.0, P_ATM);
        let d600 = m.species_diffusivity(0, 600.0, P_ATM);
        assert!(((d600 / d300) - 2.0f64.powf(1.7)).abs() < 1e-12);
        let d_2atm = m.species_diffusivity(0, 300.0, 2.0 * P_ATM);
        assert!(((d_2atm / d300) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mixture_conductivity_bounded_by_components() {
        let m = model();
        let x = air_x(m.n_species());
        let lam = m.mix_conductivity(300.0, &x);
        // Air conductivity at 300 K is ~0.026 W/m/K.
        assert!((lam - 0.026).abs() < 0.003, "lambda = {lam}");
        // Adding H2 raises it.
        let mut x2 = x.clone();
        x2[0] = 0.3;
        x2[8] = 0.49;
        assert!(m.mix_conductivity(300.0, &x2) > lam);
    }

    #[test]
    fn max_diffusivity_dominates_all_mixture_values() {
        let m = model();
        let x = air_x(m.n_species());
        let mut d = vec![0.0; m.n_species()];
        for t in [300.0, 1000.0, 2500.0] {
            m.mix_diffusivities(t, P_ATM, &x, &mut d);
            let dmax = m.max_diffusivity(t, P_ATM);
            for (i, di) in d.iter().enumerate() {
                assert!(dmax >= *di * 0.99, "i={i}: {di} > {dmax}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no transport data")]
    fn unknown_species_panics() {
        TransportModel::for_species(&["XENON"]);
    }

    #[test]
    fn realistic_magnitudes_at_flame_temperature() {
        // At 1500 K the mixture diffusivities should be O(1e-4..1e-3) m²/s
        // and conductivity O(0.1) W/m/K — the regime that makes the
        // paper's finest-grid timestep O(1e-7) s.
        let m = model();
        let x = air_x(m.n_species());
        let mut d = vec![0.0; m.n_species()];
        m.mix_diffusivities(1500.0, P_ATM, &x, &mut d);
        assert!(d[1] > 1e-5 && d[1] < 1e-3, "D_O2(1500K) = {}", d[1]);
        let lam = m.mix_conductivity(1500.0, &x);
        assert!(lam > 0.05 && lam < 0.3, "lambda(1500K) = {lam}");
    }
}
