//! The analyzer against the three real application assemblies of the
//! paper: all of them must come out clean — no errors, no warnings — and
//! deliberate corruptions of the same scripts must be rejected with the
//! right codes and line numbers.

use cca_analyze::{run_script_checked, Analyzer, CheckedRunError};
use cca_apps::ignition0d::{ignition_framework, ignition_script};
use cca_apps::reaction_diffusion::{rd_framework, rd_script, RdConfig};
use cca_apps::shock_interface::{shock_framework, shock_script, FluxChoice, ShockConfig};

#[test]
fn ignition0d_assembly_is_clean() {
    let analyzer = Analyzer::new(&ignition_framework());
    for reduced in [false, true] {
        let script = ignition_script(reduced, 1000.0, 101_325.0, 1e-3);
        let report = analyzer.analyze(&script);
        assert!(
            report.is_clean(),
            "ignition0d (reduced={reduced}):\n{}",
            report.render("ignition0d.rc")
        );
    }
}

#[test]
fn reaction_diffusion_assembly_is_clean() {
    let analyzer = Analyzer::new(&rd_framework());
    let script = rd_script(&RdConfig::default());
    let report = analyzer.analyze(&script);
    assert!(
        report.is_clean(),
        "reaction_diffusion:\n{}",
        report.render("reaction_diffusion.rc")
    );
}

#[test]
fn shock_interface_assemblies_are_clean_for_both_fluxes() {
    let analyzer = Analyzer::new(&shock_framework());
    for flux in [FluxChoice::Godunov, FluxChoice::Efm] {
        let script = shock_script(&ShockConfig {
            flux,
            ..ShockConfig::default()
        });
        let report = analyzer.analyze(&script);
        assert!(
            report.is_clean(),
            "shock_interface ({flux:?}):\n{}",
            report.render("shock_interface.rc")
        );
    }
}

/// A one-character typo in the flux class name — the paper's marquee
/// script-level swap gone wrong — is caught before anything runs, with a
/// did-you-mean pointing at the real class.
#[test]
fn corrupted_shock_assembly_is_rejected_with_codes_and_lines() {
    let analyzer = Analyzer::new(&shock_framework());
    let script = shock_script(&ShockConfig::default());
    let bad = script.replace(
        "instantiate GodunovFlux flux",
        "instantiate GodunovFlx flux",
    );
    let report = analyzer.analyze(&bad);
    assert!(report.has_errors());
    let e002 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "E002")
        .expect("typo'd class must be E002");
    // `instantiate GodunovFlx flux` is line 4 of the script (after the
    // header comment, grace, gas, states).
    assert_eq!(e002.line, 5);
    assert!(
        e002.note.as_deref().unwrap_or("").contains("GodunovFlux"),
        "{:?}",
        e002.note
    );
}

#[test]
fn dropped_connect_is_rejected_as_dangling_at_go() {
    let analyzer = Analyzer::new(&rd_framework());
    let script = rd_script(&RdConfig::default());
    let bad = script.replace("connect driver statistics statistics statistics\n", "");
    let report = analyzer.analyze(&bad);
    let e007: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "E007")
        .collect();
    assert_eq!(e007.len(), 1, "{}", report.render("rd.rc"));
    assert!(
        e007[0].message.contains("driver.statistics"),
        "{}",
        e007[0].message
    );
    // The go is the last non-empty line; the diagnostic must sit on it.
    assert_eq!(e007[0].line, bad.trim_end().lines().count());
    // `statistics` itself stays live (it still uses grace.mesh/data), so
    // the only finding beyond the dangling slot is nothing at all.
    assert_eq!(report.diagnostics.len(), 1, "{}", report.render("rd.rc"));
}

/// The checked runner refuses a bad assembly outright (nothing executes)
/// and runs a good small one to completion.
#[test]
fn run_script_checked_gates_real_assemblies() {
    let mut fw = ignition_framework();
    let script = ignition_script(true, 1000.0, 101_325.0, 1e-6);
    let bad = script.replace(
        "connect init rhs modeler rhs",
        "connect init rhs modeler rsh",
    );
    match run_script_checked(&mut fw, &bad) {
        Err(CheckedRunError::Rejected(report)) => {
            assert!(report.diagnostics.iter().any(|d| d.code == "E005"));
        }
        other => panic!("expected static rejection, got {other:?}"),
    }
    assert!(
        fw.instance_names().is_empty(),
        "rejection must happen before any command executes"
    );
    let t = run_script_checked(&mut fw, &script).expect("clean script runs");
    assert_eq!(t.go_count, 1);
}
