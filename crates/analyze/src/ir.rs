//! Parse rc-scripts into a checkable IR without touching a framework.
//!
//! The grammar is the interpreter's (`cca_core::script`): one command per
//! line, `#` starts a comment anywhere, blank lines ignored. The parser is
//! total — malformed lines become `E001` diagnostics and the well-formed
//! remainder still parses, so the semantic passes can report everything
//! wrong with a script in one shot instead of stopping at the first typo.

use crate::diag::Diagnostic;

/// One parsed script command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `instantiate <Class> <instance>`
    Instantiate {
        /// Palette class name.
        class: String,
        /// New instance name.
        instance: String,
    },
    /// `connect <user> <usesPort> <provider> <providesPort>`
    Connect {
        /// Using instance.
        user: String,
        /// Uses-port on the user.
        uses_port: String,
        /// Providing instance.
        provider: String,
        /// Provides-port on the provider.
        provides_port: String,
    },
    /// `disconnect <user> <usesPort>`
    Disconnect {
        /// Using instance.
        user: String,
        /// Uses-port to unwire.
        uses_port: String,
    },
    /// `parameter <instance> <key> <number>`
    Parameter {
        /// Target instance.
        instance: String,
        /// Parameter key.
        key: String,
        /// Numeric value.
        value: f64,
    },
    /// `arena`
    Arena,
    /// `go <instance> <goPort>`
    Go {
        /// Driven instance.
        instance: String,
        /// The `GoPort`-typed provides-port to invoke.
        port: String,
    },
}

/// A command plus the 1-based line it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: usize,
    /// The parsed command.
    pub cmd: Command,
}

/// Result of parsing a whole script: the well-formed statements and an
/// `E001` diagnostic per malformed line.
#[derive(Clone, Debug, Default)]
pub struct ParsedScript {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Syntax errors (code `E001`).
    pub syntax_errors: Vec<Diagnostic>,
}

const COMMANDS: &[&str] = &[
    "instantiate", "connect", "disconnect", "parameter", "arena", "go",
];

/// Parse `script` into the IR.
pub fn parse_script(script: &str) -> ParsedScript {
    let mut out = ParsedScript::default();
    for (idx, raw) in script.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let tok: Vec<&str> = text.split_whitespace().collect();
        let mut syntax = |message: String, note: Option<String>| {
            let mut d = Diagnostic::error("E001", line, message);
            d.note = note;
            out.syntax_errors.push(d);
        };
        let cmd = match tok[0] {
            "instantiate" => {
                if tok.len() != 3 {
                    syntax(
                        format!("'instantiate' takes 2 arguments, found {}", tok.len() - 1),
                        Some("usage: instantiate <Class> <instance>".into()),
                    );
                    continue;
                }
                Command::Instantiate {
                    class: tok[1].to_string(),
                    instance: tok[2].to_string(),
                }
            }
            "connect" => {
                if tok.len() != 5 {
                    syntax(
                        format!("'connect' takes 4 arguments, found {}", tok.len() - 1),
                        Some("usage: connect <user> <usesPort> <provider> <providesPort>".into()),
                    );
                    continue;
                }
                Command::Connect {
                    user: tok[1].to_string(),
                    uses_port: tok[2].to_string(),
                    provider: tok[3].to_string(),
                    provides_port: tok[4].to_string(),
                }
            }
            "disconnect" => {
                if tok.len() != 3 {
                    syntax(
                        format!("'disconnect' takes 2 arguments, found {}", tok.len() - 1),
                        Some("usage: disconnect <user> <usesPort>".into()),
                    );
                    continue;
                }
                Command::Disconnect {
                    user: tok[1].to_string(),
                    uses_port: tok[2].to_string(),
                }
            }
            "parameter" => {
                if tok.len() != 4 {
                    syntax(
                        format!("'parameter' takes 3 arguments, found {}", tok.len() - 1),
                        Some("usage: parameter <instance> <key> <number>".into()),
                    );
                    continue;
                }
                match tok[3].parse::<f64>() {
                    Ok(value) => Command::Parameter {
                        instance: tok[1].to_string(),
                        key: tok[2].to_string(),
                        value,
                    },
                    Err(_) => {
                        syntax(
                            format!("'{}' is not a number", tok[3]),
                            Some("usage: parameter <instance> <key> <number>".into()),
                        );
                        continue;
                    }
                }
            }
            "arena" => {
                if tok.len() != 1 {
                    syntax(
                        "'arena' takes no arguments".into(),
                        Some("usage: arena".into()),
                    );
                    continue;
                }
                Command::Arena
            }
            "go" => {
                if tok.len() != 3 {
                    syntax(
                        format!("'go' takes 2 arguments, found {}", tok.len() - 1),
                        Some("usage: go <instance> <goPort>".into()),
                    );
                    continue;
                }
                Command::Go {
                    instance: tok[1].to_string(),
                    port: tok[2].to_string(),
                }
            }
            other => {
                let note = crate::suggest(other, COMMANDS.iter().copied())
                    .map(|s| format!("did you mean '{s}'?"))
                    .unwrap_or_else(|| format!("commands: {}", COMMANDS.join(", ")));
                syntax(format!("unknown command '{other}'"), Some(note));
                continue;
            }
        };
        out.stmts.push(Stmt { line, cmd });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands_with_lines_and_comments() {
        let p = parse_script(
            "# header comment\n\
             instantiate Physics phys # inline\n\
             \n\
             connect drv rhs phys rhs\n\
             parameter phys k 3.5\n\
             disconnect drv rhs\n\
             arena\n\
             go drv go\n",
        );
        assert!(p.syntax_errors.is_empty());
        assert_eq!(p.stmts.len(), 6);
        assert_eq!(p.stmts[0].line, 2);
        assert_eq!(
            p.stmts[0].cmd,
            Command::Instantiate {
                class: "Physics".into(),
                instance: "phys".into()
            }
        );
        assert_eq!(p.stmts[2].line, 5);
        assert!(matches!(p.stmts[2].cmd, Command::Parameter { value, .. } if value == 3.5));
        assert_eq!(p.stmts[5].line, 8);
    }

    #[test]
    fn malformed_lines_become_e001_and_do_not_stop_parsing() {
        let p = parse_script(
            "instantiate OnlyOneArg\n\
             frobnicate x\n\
             parameter phys k notanumber\n\
             go drv go\n",
        );
        assert_eq!(p.syntax_errors.len(), 3);
        assert!(p.syntax_errors.iter().all(|d| d.code == "E001"));
        assert_eq!(
            p.syntax_errors.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // The valid trailing command still parsed.
        assert_eq!(p.stmts.len(), 1);
        assert!(matches!(p.stmts[0].cmd, Command::Go { .. }));
    }

    #[test]
    fn unknown_command_suggests_a_close_name() {
        let p = parse_script("conect a b c d\n");
        let note = p.syntax_errors[0].note.as_deref().unwrap();
        assert!(note.contains("connect"), "{note}");
    }
}
