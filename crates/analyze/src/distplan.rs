//! Comm-plan derivation for distributed-SAMR schedules.
//!
//! The distributed hierarchy (`cca-mesh::dist`) expresses every cross-rank
//! data movement as a manifest of `(src, dst, tag, bytes)` wire messages,
//! identical on every rank. [`PlanBuilder`] turns a sequence of such
//! exchange epochs — plus the reductions and barriers between them — into
//! the comm-plan IR of [`crate::commplan`], so the static verifier
//! (C001–C009) and the runtime audit (C010–C012) cover ghost fills,
//! donor ships, restriction windows, regrid copies, and patch migration
//! exactly as they cover the uniform-grid schedules of earlier PRs.
//!
//! The emission contract matches the executors in `cca-mesh::dist`: per
//! epoch each rank posts all its irecvs (message order), then all its
//! isends (message order), then completes everything with one waitall.

use crate::commplan::{CommPlan, OpKind, PlanOp};

/// Incrementally builds a per-rank [`CommPlan`] from exchange epochs.
#[derive(Clone, Debug)]
pub struct PlanBuilder {
    rows: Vec<Vec<PlanOp>>,
    epoch: u32,
}

impl PlanBuilder {
    /// A builder for `nranks` empty per-rank schedules, starting at epoch 0.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "a plan needs at least one rank");
        PlanBuilder {
            rows: vec![Vec::new(); nranks],
            epoch: 0,
        }
    }

    /// Number of ranks the plan spans.
    pub fn nranks(&self) -> usize {
        self.rows.len()
    }

    /// The epoch the *next* emitted phase will use.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Emit one nonblocking exchange epoch from `(src, dst, tag, bytes)`
    /// wire messages (manifest order). Per rank: irecvs for its inbound
    /// messages, isends for its outbound ones, then a waitall iff it
    /// received anything — mirroring the `cca-mesh::dist` executors.
    /// Returns the epoch number used.
    pub fn exchange(&mut self, msgs: &[(usize, usize, u64, u64)]) -> u32 {
        let epoch = self.epoch;
        for (rank, row) in self.rows.iter_mut().enumerate() {
            let mut recvs = 0usize;
            for &(src, dst, tag, bytes) in msgs {
                if dst == rank {
                    row.push(PlanOp::new(
                        epoch,
                        OpKind::Irecv {
                            peer: src,
                            tag,
                            bytes,
                        },
                    ));
                    recvs += 1;
                }
            }
            for &(src, dst, tag, bytes) in msgs {
                if src == rank {
                    row.push(PlanOp::new(
                        epoch,
                        OpKind::Isend {
                            peer: dst,
                            tag,
                            bytes,
                        },
                    ));
                }
            }
            if recvs > 0 {
                row.push(PlanOp::new(epoch, OpKind::Waitall));
            }
        }
        self.epoch += 1;
        epoch
    }

    /// Emit a reduction of `bytes` payload on every rank (the IR shape of
    /// `reduce`/`allreduce`). Returns the epoch number used.
    pub fn reduce(&mut self, bytes: u64) -> u32 {
        let epoch = self.epoch;
        for row in &mut self.rows {
            row.push(PlanOp::new(epoch, OpKind::Reduce { bytes }));
        }
        self.epoch += 1;
        epoch
    }

    /// Emit a barrier on every rank. Returns the epoch number used.
    pub fn barrier(&mut self) -> u32 {
        let epoch = self.epoch;
        for row in &mut self.rows {
            row.push(PlanOp::new(epoch, OpKind::Barrier));
        }
        self.epoch += 1;
        epoch
    }

    /// Finish: the accumulated per-rank schedules as a [`CommPlan`].
    pub fn build(self) -> CommPlan {
        CommPlan { ranks: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_emits_recvs_then_sends_then_waitall() {
        let mut b = PlanBuilder::new(3);
        // 0 -> 1 and 2 -> 1 and 1 -> 0.
        let e = b.exchange(&[(0, 1, 40, 64), (2, 1, 40, 32), (1, 0, 40, 16)]);
        assert_eq!(e, 0);
        assert_eq!(b.epoch(), 1);
        let plan = b.build();
        let kinds: Vec<&OpKind> = plan.ranks[1].iter().map(|op| &op.kind).collect();
        assert!(matches!(
            kinds[0],
            OpKind::Irecv {
                peer: 0,
                tag: 40,
                bytes: 64
            }
        ));
        assert!(matches!(
            kinds[1],
            OpKind::Irecv {
                peer: 2,
                tag: 40,
                bytes: 32
            }
        ));
        assert!(matches!(
            kinds[2],
            OpKind::Isend {
                peer: 0,
                tag: 40,
                bytes: 16
            }
        ));
        assert!(matches!(kinds[3], OpKind::Waitall));
        // Rank 2 only sends: no waitall.
        assert!(plan.ranks[2]
            .iter()
            .all(|op| !matches!(op.kind, OpKind::Waitall)));
        assert!(plan.verify().is_clean(), "{}", plan.verify().render("plan"));
    }

    #[test]
    fn empty_exchange_still_advances_the_epoch() {
        let mut b = PlanBuilder::new(2);
        assert_eq!(b.exchange(&[]), 0);
        assert_eq!(b.reduce(8), 1);
        assert_eq!(b.barrier(), 2);
        let plan = b.build();
        assert!(plan.verify().is_clean());
        assert_eq!(plan.ranks[0].len(), 2); // reduce + barrier only
    }

    #[test]
    fn built_plan_passes_verify_for_a_regrid_shaped_sequence() {
        let mut b = PlanBuilder::new(2);
        b.exchange(&[(0, 1, 45, 1024)]); // migration
        b.exchange(&[(1, 0, 43, 2048), (0, 1, 43, 512)]); // prolong ships
        b.exchange(&[(0, 1, 44, 256)]); // old copies
        b.reduce(8);
        b.barrier();
        let plan = b.build();
        let report = plan.verify();
        assert!(report.is_clean(), "{}", report.render("regrid plan"));
    }
}
