//! The multi-pass static checker: walk the IR against the palette's
//! [`ClassSignature`] manifest, simulating the wiring state the interpreter
//! *would* build, and report everything wrong without executing anything.

use crate::diag::{Diagnostic, Report};
use crate::ir::{parse_script, Command};
use crate::suggest;
use cca_core::signature::ClassSignature;
use cca_core::Framework;
use std::collections::{BTreeMap, BTreeSet};

/// Static analyzer for one palette.
///
/// Construction harvests the [`ClassSignature`] manifest from the
/// framework (each class is instantiated once into a scratch registry);
/// [`Analyzer::analyze`] is then pure — it can vet any number of scripts
/// in microseconds, which is the point: a bad assembly is rejected before
/// a 48-rank job ever launches.
pub struct Analyzer {
    signatures: BTreeMap<String, ClassSignature>,
}

/// Per-instance state tracked during the simulated walk.
struct InstInfo {
    /// `None` when the instantiate named an unknown class (already
    /// reported as E002) — port-level checks are then skipped for it.
    class: Option<String>,
    /// Line of the `instantiate`.
    line: usize,
}

impl Analyzer {
    /// Harvest signatures from `fw`'s palette and build an analyzer.
    pub fn new(fw: &Framework) -> Self {
        Self::from_signatures(fw.class_signatures())
    }

    /// Build from a pre-harvested manifest.
    pub fn from_signatures(signatures: BTreeMap<String, ClassSignature>) -> Self {
        Analyzer { signatures }
    }

    /// Run every pass over `script` and return all findings.
    pub fn analyze(&self, script: &str) -> Report {
        let parsed = parse_script(script);
        let mut diags = parsed.syntax_errors;

        let mut instances: BTreeMap<String, InstInfo> = BTreeMap::new();
        // Currently-connected uses slots: (user, uses_port) -> (provider, provides_port).
        let mut connections: BTreeMap<(String, String), (String, String)> = BTreeMap::new();
        // Instances that ever appeared in a connect (either side) or a go.
        let mut wired: BTreeSet<String> = BTreeSet::new();
        let mut driven: BTreeSet<String> = BTreeSet::new();
        let mut first_go: Option<usize> = None;

        for stmt in &parsed.stmts {
            let line = stmt.line;
            match &stmt.cmd {
                Command::Instantiate { class, instance } => {
                    if let Some(prev) = instances.get(instance) {
                        diags.push(
                            Diagnostic::error(
                                "E003",
                                line,
                                format!("instance name '{instance}' already in use"),
                            )
                            .with_note(format!("first instantiated at line {}", prev.line)),
                        );
                        continue;
                    }
                    let known = self.signatures.contains_key(class);
                    if !known {
                        let mut d = Diagnostic::error(
                            "E002",
                            line,
                            format!("unknown component class '{class}'"),
                        );
                        d.note = match suggest(class, self.signatures.keys().map(|s| s.as_str())) {
                            Some(s) => Some(format!("did you mean '{s}'?")),
                            None => Some(
                                "the class is not in the palette; see `palette_classes()`".into(),
                            ),
                        };
                        diags.push(d);
                    }
                    instances.insert(
                        instance.clone(),
                        InstInfo {
                            class: known.then(|| class.clone()),
                            line,
                        },
                    );
                }
                Command::Connect {
                    user,
                    uses_port,
                    provider,
                    provides_port,
                } => {
                    let user_ok = self.check_instance(&instances, user, line, &mut diags);
                    let prov_ok = self.check_instance(&instances, provider, line, &mut diags);
                    if !user_ok || !prov_ok {
                        continue;
                    }
                    wired.insert(user.clone());
                    wired.insert(provider.clone());
                    if let Some(go_line) = first_go {
                        diags.push(
                            Diagnostic::warning(
                                "W002",
                                line,
                                format!(
                                    "connect of '{user}.{uses_port}' after the assembly was already driven"
                                ),
                            )
                            .with_note(format!(
                                "first `go` at line {go_line}; rewiring a running assembly is \
                                 rarely intended"
                            )),
                        );
                    }
                    // Port-level checks need both signatures.
                    let u_sig = instances[user].class.as_ref().map(|c| &self.signatures[c]);
                    let p_sig = instances[provider]
                        .class
                        .as_ref()
                        .map(|c| &self.signatures[c]);
                    let u_slot = match u_sig {
                        None => None,
                        Some(sig) => match sig.uses.get(uses_port) {
                            Some(slot) => Some(slot),
                            None => {
                                diags.push(self.unknown_port(
                                    line,
                                    user,
                                    &sig.class,
                                    uses_port,
                                    "uses",
                                    sig.uses.keys(),
                                ));
                                None
                            }
                        },
                    };
                    let p_port = match p_sig {
                        None => None,
                        Some(sig) => match sig.provides.get(provides_port) {
                            Some(port) => Some(port),
                            None => {
                                diags.push(self.unknown_port(
                                    line,
                                    provider,
                                    &sig.class,
                                    provides_port,
                                    "provides",
                                    sig.provides.keys(),
                                ));
                                None
                            }
                        },
                    };
                    if let (Some(slot), Some(port)) = (u_slot, p_port) {
                        if slot.type_id != port.type_id {
                            diags.push(
                                Diagnostic::error(
                                    "E006",
                                    line,
                                    format!(
                                        "mismatched port types: '{user}.{uses_port}' cannot \
                                         accept '{provider}.{provides_port}'"
                                    ),
                                )
                                .with_note(format!(
                                    "uses side expects {}, provides side offers {}",
                                    slot.type_name, port.type_name
                                )),
                            );
                            continue;
                        }
                    }
                    let key = (user.clone(), uses_port.clone());
                    if let Some((p0, pp0)) = connections.get(&key) {
                        diags.push(
                            Diagnostic::warning(
                                "W004",
                                line,
                                format!(
                                    "uses-port '{user}.{uses_port}' reconnected while still \
                                     connected to '{p0}.{pp0}'"
                                ),
                            )
                            .with_note(format!("insert `disconnect {user} {uses_port}` first")),
                        );
                    }
                    connections.insert(key, (provider.clone(), provides_port.clone()));
                    if let Some(cycle) = find_cycle(&connections, user, provider) {
                        diags.push(
                            Diagnostic::error(
                                "E008",
                                line,
                                format!("this connect closes a wiring cycle through '{user}'"),
                            )
                            .with_note(format!("cycle: {}", cycle.join(" -> "))),
                        );
                    }
                }
                Command::Disconnect { user, uses_port } => {
                    if !self.check_instance(&instances, user, line, &mut diags) {
                        continue;
                    }
                    if let Some(class) = instances[user].class.as_ref() {
                        let sig = &self.signatures[class];
                        if !sig.uses.contains_key(uses_port) {
                            diags.push(self.unknown_port(
                                line,
                                user,
                                class,
                                uses_port,
                                "uses",
                                sig.uses.keys(),
                            ));
                            continue;
                        }
                    }
                    let key = (user.clone(), uses_port.clone());
                    if connections.remove(&key).is_none() {
                        diags.push(
                            Diagnostic::warning(
                                "W003",
                                line,
                                format!("uses-port '{user}.{uses_port}' is not connected here"),
                            )
                            .with_note(
                                "the disconnect is a no-op: the port was never connected or was \
                                 already disconnected",
                            ),
                        );
                    }
                }
                Command::Parameter { instance, .. } => {
                    if !self.check_instance(&instances, instance, line, &mut diags) {
                        continue;
                    }
                    if let Some(class) = instances[instance].class.as_ref() {
                        let sig = &self.signatures[class];
                        if !sig.has_parameter_port() {
                            diags.push(
                                Diagnostic::error(
                                    "E009",
                                    line,
                                    format!(
                                        "component '{instance}' (class '{class}') exposes no \
                                         ParameterPort"
                                    ),
                                )
                                .with_note(
                                    "`parameter` needs a provides-port of type \
                                     Rc<dyn ParameterPort> on the target",
                                ),
                            );
                        }
                    }
                }
                Command::Arena => {}
                Command::Go { instance, port } => {
                    if self.check_instance(&instances, instance, line, &mut diags) {
                        driven.insert(instance.clone());
                        if let Some(class) = instances[instance].class.as_ref() {
                            let sig = &self.signatures[class];
                            match sig.provides.get(port) {
                                None => diags.push(self.unknown_port(
                                    line,
                                    instance,
                                    class,
                                    port,
                                    "provides",
                                    sig.provides.keys(),
                                )),
                                Some(p) if !p.is_go_port => diags.push(
                                    Diagnostic::error(
                                        "E010",
                                        line,
                                        format!("'{instance}.{port}' is not a GoPort"),
                                    )
                                    .with_note(format!("the port's type is {}", p.type_name)),
                                ),
                                Some(_) => {}
                            }
                        }
                    }
                    // Dangling required uses-ports anywhere in the assembly
                    // refuse the go — one diagnostic per dangling slot, in
                    // sorted order.
                    for (name, info) in &instances {
                        let Some(class) = info.class.as_ref() else {
                            continue;
                        };
                        for (uport, usig) in self.signatures[class].required_uses() {
                            if !connections.contains_key(&(name.clone(), uport.clone())) {
                                diags.push(
                                    Diagnostic::error(
                                        "E007",
                                        line,
                                        format!(
                                            "cannot go: required uses-port '{name}.{uport}' is \
                                             dangling"
                                        ),
                                    )
                                    .with_note(format!("the slot expects {}", usig.type_name)),
                                );
                            }
                        }
                    }
                    first_go = first_go.or(Some(line));
                }
            }
        }

        // Dead components: instantiated but never wired into the assembly
        // and never driven.
        for (name, info) in &instances {
            if !wired.contains(name) && !driven.contains(name) {
                diags.push(
                    Diagnostic::warning("W001", info.line, format!("component '{name}' is dead"))
                        .with_note(
                            "instantiated here but never connected to anything and never the \
                         target of a go",
                        ),
                );
            }
        }

        Report::new(diags)
    }

    /// Gate form of [`Analyzer::analyze`]: `Ok` (possibly with warnings)
    /// when nothing blocks execution, `Err` with the full report otherwise.
    pub fn check(&self, script: &str) -> Result<Report, Report> {
        let report = self.analyze(script);
        if report.has_errors() {
            Err(report)
        } else {
            Ok(report)
        }
    }

    fn check_instance(
        &self,
        instances: &BTreeMap<String, InstInfo>,
        name: &str,
        line: usize,
        diags: &mut Vec<Diagnostic>,
    ) -> bool {
        if instances.contains_key(name) {
            return true;
        }
        let mut d = Diagnostic::error("E004", line, format!("unknown component instance '{name}'"));
        d.note = suggest(name, instances.keys().map(|s| s.as_str()))
            .map(|s| format!("did you mean '{s}'?"));
        diags.push(d);
        false
    }

    fn unknown_port<'a>(
        &self,
        line: usize,
        instance: &str,
        class: &str,
        port: &str,
        kind: &str,
        declared: impl Iterator<Item = &'a String>,
    ) -> Diagnostic {
        let declared: Vec<&str> = declared.map(|s| s.as_str()).collect();
        let mut d = Diagnostic::error(
            "E005",
            line,
            format!("component '{instance}' (class '{class}') has no {kind}-port '{port}'"),
        );
        d.note = match suggest(port, declared.iter().copied()) {
            Some(s) => Some(format!("did you mean '{s}'?")),
            None if declared.is_empty() => Some(format!("the class declares no {kind}-ports")),
            None => Some(format!("declared {kind}-ports: {}", declared.join(", "))),
        };
        d
    }
}

/// If adding edge `user -> provider` (already inserted into `connections`)
/// closed a dependency cycle, return the cycle as an instance path starting
/// and ending at `user`.
fn find_cycle(
    connections: &BTreeMap<(String, String), (String, String)>,
    user: &str,
    provider: &str,
) -> Option<Vec<String>> {
    // Adjacency: instance -> set of providers it uses.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for ((u, _), (p, _)) in connections {
        adj.entry(u.as_str()).or_default().insert(p.as_str());
    }
    // DFS from `provider` looking for `user`.
    let mut stack = vec![vec![provider]];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(path) = stack.pop() {
        let here = *path.last().expect("paths are non-empty");
        if here == user {
            let mut cycle: Vec<String> = vec![user.to_string()];
            cycle.extend(path.iter().map(|s| s.to_string()));
            return Some(cycle);
        }
        if !seen.insert(here) {
            continue;
        }
        if let Some(nexts) = adj.get(here) {
            for next in nexts {
                let mut p = path.clone();
                p.push(next);
                stack.push(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::ports::{GoPort, ParameterPort, ParameterStore};
    use cca_core::services::{Component, Services};
    use std::rc::Rc;

    // A tiny palette with two distinct port traits so type mismatches are
    // expressible: `Num` and `Txt`.
    trait Num {
        #[allow(dead_code)]
        fn num(&self) -> f64;
    }
    trait Txt {
        #[allow(dead_code)]
        fn txt(&self) -> String;
    }
    struct NumImpl;
    impl Num for NumImpl {
        fn num(&self) -> f64 {
            1.0
        }
    }
    struct TxtImpl;
    impl Txt for TxtImpl {
        fn txt(&self) -> String {
            "t".into()
        }
    }
    struct Run;
    impl GoPort for Run {
        fn go(&self) -> Result<(), String> {
            Ok(())
        }
    }

    /// Provides `num` (a Num) and `text` (a Txt); uses optional `aux`.
    struct Source;
    impl Component for Source {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn Num>>("num", Rc::new(NumImpl));
            s.add_provides_port::<Rc<dyn Txt>>("text", Rc::new(TxtImpl));
            s.register_optional_uses_port::<Rc<dyn Num>>("aux");
        }
    }
    /// Uses a required `num` (a Num); provides `go` and `params` and `out` (a Num).
    struct Sink;
    impl Component for Sink {
        fn set_services(&mut self, s: Services) {
            s.register_uses_port::<Rc<dyn Num>>("num");
            s.add_provides_port::<Rc<dyn GoPort>>("go", Rc::new(Run));
            s.add_provides_port::<Rc<dyn ParameterPort>>("params", Rc::new(ParameterStore::new()));
            s.add_provides_port::<Rc<dyn Num>>("out", Rc::new(NumImpl));
        }
    }
    /// No parameter port, uses nothing, provides nothing but a Num.
    struct Plain;
    impl Component for Plain {
        fn set_services(&mut self, s: Services) {
            s.add_provides_port::<Rc<dyn Num>>("num", Rc::new(NumImpl));
        }
    }

    fn analyzer() -> Analyzer {
        let mut fw = Framework::new();
        fw.register_class("Source", || Box::new(Source));
        fw.register_class("Sink", || Box::new(Sink));
        fw.register_class("Plain", || Box::new(Plain));
        Analyzer::new(&fw)
    }

    fn codes_at(report: &Report) -> Vec<(&'static str, usize)> {
        report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.line))
            .collect()
    }

    #[test]
    fn clean_script_is_clean() {
        let report = analyzer().analyze(
            "# a good assembly\n\
             instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk num src num\n\
             parameter snk k 2.0\n\
             arena\n\
             go snk go\n",
        );
        assert!(report.is_clean(), "{}", report.render("t.rc"));
    }

    #[test]
    fn unknown_class_is_e002_with_suggestion() {
        let report = analyzer().analyze("instantiate Sourze src\n");
        assert_eq!(codes_at(&report), vec![("E002", 1), ("W001", 1)]);
        let note = report.diagnostics[0].note.as_deref().unwrap();
        assert!(note.contains("Source"), "{note}");
    }

    #[test]
    fn duplicate_instance_is_e003_with_original_line() {
        let report = analyzer().analyze(
            "instantiate Source a\n\
             instantiate Sink a\n\
             connect a aux a num\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E003")
            .expect("E003 reported");
        assert_eq!(d.line, 2);
        assert!(d.note.as_deref().unwrap().contains("line 1"));
        // The first definition wins: `a` is a Source, so `aux` resolves.
        assert!(!report.diagnostics.iter().any(|d| d.code == "E005"));
    }

    #[test]
    fn unknown_instance_in_connect_is_e004_on_both_sides() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             connect ghost num src num\n\
             connect srk num phantom num\n",
        );
        let e004: Vec<usize> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "E004")
            .map(|d| d.line)
            .collect();
        assert_eq!(e004, vec![2, 3, 3]);
    }

    #[test]
    fn unknown_ports_are_e005_with_declared_list() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk nun src num\n\
             connect snk num src nums\n",
        );
        let e005: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "E005")
            .collect();
        assert_eq!(e005.len(), 2);
        assert_eq!(e005[0].line, 3);
        assert!(
            e005[0].message.contains("no uses-port 'nun'"),
            "{}",
            e005[0].message
        );
        assert!(e005[0].note.as_deref().unwrap().contains("num"));
        assert_eq!(e005[1].line, 4);
        assert!(e005[1].message.contains("no provides-port 'nums'"));
    }

    #[test]
    fn type_mismatch_is_e006_with_both_type_names() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk num src text\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E006")
            .expect("E006 reported");
        assert_eq!(d.line, 3);
        let note = d.note.as_deref().unwrap();
        assert!(note.contains("Num") && note.contains("Txt"), "{note}");
    }

    #[test]
    fn dangling_required_port_at_go_is_e007_with_type() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             go snk go\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E007")
            .expect("E007 reported");
        assert_eq!(d.line, 3);
        assert!(d.message.contains("'snk.num'"), "{}", d.message);
        assert!(d.note.as_deref().unwrap().contains("Num"));
        // The optional `src.aux` slot must NOT be flagged.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == "E007")
                .count(),
            1
        );
    }

    #[test]
    fn wiring_cycle_is_e008_with_path() {
        // snk uses src.num; src.aux (optional, but still an edge) uses
        // snk.out — a 2-cycle.
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk num src num\n\
             connect src aux snk out\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E008")
            .expect("E008 reported");
        assert_eq!(d.line, 4);
        let note = d.note.as_deref().unwrap();
        assert!(
            note.contains("src") && note.contains("snk") && note.contains("->"),
            "{note}"
        );
    }

    #[test]
    fn parameter_without_parameter_port_is_e009() {
        let report = analyzer().analyze(
            "instantiate Plain p\n\
             parameter p k 1.0\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E009" && d.line == 2));
    }

    #[test]
    fn go_on_non_go_port_is_e010() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk num src num\n\
             go snk out\n",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E010")
            .expect("E010 reported");
        assert_eq!(d.line, 4);
    }

    #[test]
    fn dead_component_is_w001_at_its_instantiate() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             instantiate Plain lonely\n\
             connect snk num src num\n\
             go snk go\n",
        );
        assert_eq!(codes_at(&report), vec![("W001", 3)]);
        assert!(!report.has_errors());
    }

    #[test]
    fn connect_after_go_is_w002() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Source late\n\
             instantiate Sink snk\n\
             connect snk num src num\n\
             go snk go\n\
             connect late aux snk out\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "W002" && d.line == 6));
        assert!(!report.has_errors(), "{}", report.render("t.rc"));
    }

    #[test]
    fn disconnect_of_unconnected_port_is_w003() {
        let report = analyzer().analyze(
            "instantiate Sink snk\n\
             disconnect snk num\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "W003" && d.line == 2));
    }

    #[test]
    fn reconnect_without_disconnect_is_w004_and_proper_rewire_is_not() {
        let a = analyzer();
        let report = a.analyze(
            "instantiate Source s1\n\
             instantiate Source s2\n\
             instantiate Sink snk\n\
             connect snk num s1 num\n\
             connect snk num s2 num\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "W004" && d.line == 5));
        let report = a.analyze(
            "instantiate Source s1\n\
             instantiate Source s2\n\
             instantiate Sink snk\n\
             connect snk num s1 num\n\
             disconnect snk num\n\
             connect snk num s2 num\n\
             go snk go\n",
        );
        assert!(report.is_clean(), "{}", report.render("t.rc"));
    }

    #[test]
    fn disconnect_reopens_the_dangling_check() {
        let report = analyzer().analyze(
            "instantiate Source src\n\
             instantiate Sink snk\n\
             connect snk num src num\n\
             disconnect snk num\n\
             go snk go\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E007" && d.line == 5));
    }

    #[test]
    fn check_gates_on_errors_only() {
        let a = analyzer();
        assert!(
            a.check("instantiate Plain lonely\n").is_ok(),
            "warnings pass"
        );
        assert!(a.check("instantiate Nope x\n").is_err(), "errors gate");
    }

    #[test]
    fn all_findings_reported_in_one_shot() {
        // One script, many problems: the analyzer must not stop early.
        let report = analyzer().analyze(
            "instantiate Nope x\n\
             instantiate Source src\n\
             instantiate Source src\n\
             connect ghost num src num\n\
             frobnicate\n\
             parameter src k oops\n",
        );
        let codes: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        for expect in ["E001", "E002", "E003", "E004"] {
            assert!(codes.contains(expect), "missing {expect} in {codes:?}");
        }
    }
}
