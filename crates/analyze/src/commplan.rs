//! Comm-plan IR and static verification of distributed communication
//! schedules — the analyzer's second domain, alongside rc-scripts.
//!
//! PR 5's nonblocking/coalesced halo exchange made message schedules a
//! contract surface that, until now, was validated only by running it.
//! This module makes the schedule *data*: a [`CommPlan`] is a per-rank
//! sequence of typed ops (`Isend`/`Irecv`/`Wait`/`Waitall`/`Send`/`Recv`/
//! `Reduce`/`Barrier`), each carrying `(peer, tag, bytes, epoch)`. The
//! schedule generator in `cca-apps` emits a plan, the execution loop
//! interprets it, and [`CommPlan::verify`] proves it safe *before* any
//! rank runs — the admission gate irregular SAMR schedules will need.
//!
//! # Checker passes
//!
//! Passes run in order and stop at the first layer that finds an error,
//! so one seeded fault yields one crisp diagnostic instead of a cascade:
//!
//! 1. **Validity** (`C009`): peers in range, no self-messaging.
//! 2. **Collective consistency** (`C006`): every rank issues the same
//!    reduce/barrier sequence, compared against rank 0.
//! 3. **Point-to-point matching** (`C001`–`C003`): for every
//!    `(src→dst, tag, epoch)` channel, send and receive counts balance,
//!    FIFO-paired payload sizes agree, and size-heterogeneous channels
//!    draw a fragile-FIFO warning.
//! 4. **Request discipline** (`C007`, `C008`): a request posted in epoch
//!    `e` completes before any later-epoch op; every wait has a request.
//! 5. **Deadlock freedom** (`C004`, `C005`): an abstract interpretation
//!    executes the plan (sends buffer, receives and collectives block);
//!    if it quiesces early, the wait-for graph is searched for a cycle.
//!
//! `line` in every diagnostic is the 1-based op index *within the named
//! rank's sequence* — plans have no source file, so the op index is the
//! location.
//!
//! # Conformance auditing
//!
//! [`CommPlan::audit`] checks that a recorded [`CommTrace`] refines the
//! plan (`C010`–`C012`): what was proved is what ran. `cca-comm` records
//! traces without touching virtual clocks, so the auditor is a free
//! sanitizer in distributed tests.

use crate::diag::{Diagnostic, Report};
use cca_comm::trace::{CommTrace, TraceOp};
use std::collections::BTreeMap;

/// Rank index within a plan.
pub type Rank = usize;

/// One typed communication operation of the comm-plan IR.
///
/// `peer`/`tag`/`bytes` mirror the [`cca_comm::Communicator`] call the op
/// models; `Waitall` completes every receive request the rank has
/// outstanding, in posting order, exactly like `Communicator::waitall`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Nonblocking send of `bytes` to `peer` under `tag`.
    Isend {
        /// Destination rank.
        peer: Rank,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Nonblocking receive posted for `bytes` from `peer` under `tag`.
    Irecv {
        /// Source rank.
        peer: Rank,
        /// Message tag.
        tag: u64,
        /// Expected payload bytes.
        bytes: u64,
    },
    /// Complete the oldest outstanding receive request from `peer`/`tag`.
    Wait {
        /// Source rank of the awaited request.
        peer: Rank,
        /// Tag of the awaited request.
        tag: u64,
    },
    /// Complete every outstanding receive request, in posting order.
    Waitall,
    /// Blocking (buffered) send of `bytes` to `peer` under `tag`.
    Send {
        /// Destination rank.
        peer: Rank,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive of `bytes` from `peer` under `tag`.
    Recv {
        /// Source rank.
        peer: Rank,
        /// Message tag.
        tag: u64,
        /// Expected payload bytes.
        bytes: u64,
    },
    /// A reduction collective (reduce / allreduce) contributing `bytes`.
    Reduce {
        /// Bytes contributed by this rank.
        bytes: u64,
    },
    /// A barrier collective.
    Barrier,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Isend { peer, tag, bytes } => {
                write!(f, "isend(peer {peer}, tag {tag}, {bytes} B)")
            }
            OpKind::Irecv { peer, tag, bytes } => {
                write!(f, "irecv(peer {peer}, tag {tag}, {bytes} B)")
            }
            OpKind::Wait { peer, tag } => write!(f, "wait(peer {peer}, tag {tag})"),
            OpKind::Waitall => write!(f, "waitall"),
            OpKind::Send { peer, tag, bytes } => {
                write!(f, "send(peer {peer}, tag {tag}, {bytes} B)")
            }
            OpKind::Recv { peer, tag, bytes } => {
                write!(f, "recv(peer {peer}, tag {tag}, {bytes} B)")
            }
            OpKind::Reduce { bytes } => write!(f, "reduce({bytes} B)"),
            OpKind::Barrier => write!(f, "barrier"),
        }
    }
}

/// One op of one rank's schedule, stamped with its epoch.
///
/// Epochs partition the schedule into phases every rank computes
/// identically (one per exchange stage, one per collective): matching is
/// per-epoch, and a request posted in epoch `e` must complete before any
/// op of a later epoch runs (`C007`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOp {
    /// Schedule phase this op belongs to.
    pub epoch: u32,
    /// The operation itself.
    pub kind: OpKind,
}

impl PlanOp {
    /// Convenience constructor.
    pub fn new(epoch: u32, kind: OpKind) -> Self {
        PlanOp { epoch, kind }
    }
}

/// A complete distributed communication schedule: one op sequence per
/// rank, in program order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommPlan {
    /// Per-rank schedules; `ranks[r]` is rank `r`'s program.
    pub ranks: Vec<Vec<PlanOp>>,
}

/// Collective signature used by the consistency pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CollSig {
    Reduce(u64),
    Barrier,
}

impl std::fmt::Display for CollSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollSig::Reduce(b) => write!(f, "reduce({b} B)"),
            CollSig::Barrier => write!(f, "barrier"),
        }
    }
}

impl CommPlan {
    /// Number of ranks in the plan.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total op count across all ranks.
    pub fn nops(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// Stable one-op-per-line text form, for hashing (job keys) and
    /// debugging. Identical plans render identically.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for (r, ops) in self.ranks.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                out.push_str(&format!(
                    "rank {r} op {}: e{} {}\n",
                    i + 1,
                    op.epoch,
                    op.kind
                ));
            }
        }
        out
    }

    /// Run the full static checker and return every finding.
    ///
    /// Passes are layered (see the module docs): a validity error
    /// suppresses the matching passes, a matching error suppresses the
    /// deadlock search, and so on — so a single schedule fault surfaces
    /// as a single diagnostic naming the rank, op index, peer, and tag.
    pub fn verify(&self) -> Report {
        let mut diags = self.check_validity();
        if diags.iter().any(|d| d.severity == crate::Severity::Error) {
            return Report::new(diags);
        }
        diags.extend(self.check_collectives());
        if diags.iter().any(|d| d.severity == crate::Severity::Error) {
            return Report::new(diags);
        }
        diags.extend(self.check_matching());
        if diags.iter().any(|d| d.severity == crate::Severity::Error) {
            return Report::new(diags);
        }
        diags.extend(self.check_requests());
        if diags.iter().any(|d| d.severity == crate::Severity::Error) {
            return Report::new(diags);
        }
        diags.extend(self.check_deadlock());
        Report::new(diags)
    }

    /// Pass 1 — `C009`: structural validity of every op.
    fn check_validity(&self) -> Vec<Diagnostic> {
        let n = self.nranks();
        let mut diags = Vec::new();
        for (r, ops) in self.ranks.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                let peer = match op.kind {
                    OpKind::Isend { peer, .. }
                    | OpKind::Irecv { peer, .. }
                    | OpKind::Wait { peer, .. }
                    | OpKind::Send { peer, .. }
                    | OpKind::Recv { peer, .. } => Some(peer),
                    OpKind::Waitall | OpKind::Reduce { .. } | OpKind::Barrier => None,
                };
                if let Some(p) = peer {
                    if p >= n {
                        diags.push(Diagnostic::error(
                            "C009",
                            i + 1,
                            format!(
                                "rank {r}: {} names peer {p}, but the plan has {n} rank{}",
                                op.kind,
                                if n == 1 { "" } else { "s" }
                            ),
                        ));
                    } else if p == r {
                        diags.push(Diagnostic::error(
                            "C009",
                            i + 1,
                            format!("rank {r}: {} is a self-message", op.kind),
                        ));
                    }
                }
            }
        }
        diags
    }

    /// Pass 2 — `C006`: every rank's collective subsequence must equal
    /// rank 0's, op for op.
    fn check_collectives(&self) -> Vec<Diagnostic> {
        let seqs: Vec<Vec<(usize, CollSig)>> = self
            .ranks
            .iter()
            .map(|ops| {
                ops.iter()
                    .enumerate()
                    .filter_map(|(i, op)| match op.kind {
                        OpKind::Reduce { bytes } => Some((i + 1, CollSig::Reduce(bytes))),
                        OpKind::Barrier => Some((i + 1, CollSig::Barrier)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let mut diags = Vec::new();
        let Some(reference) = seqs.first() else {
            return diags;
        };
        for (r, seq) in seqs.iter().enumerate().skip(1) {
            for (k, ((line, sig), (_, ref_sig))) in seq.iter().zip(reference).enumerate() {
                if sig != ref_sig {
                    diags.push(
                        Diagnostic::error(
                            "C006",
                            *line,
                            format!(
                                "rank {r}: collective #{} is {sig}, but rank 0 issues {ref_sig}",
                                k + 1
                            ),
                        )
                        .with_note(
                            "all ranks must issue reduces and barriers in the same order"
                                .to_string(),
                        ),
                    );
                    break; // one divergence per rank: the rest cascades
                }
            }
            if seq.len() != reference.len()
                && diags
                    .iter()
                    .all(|d| !d.message.contains(&format!("rank {r}:")))
            {
                let line = seq
                    .get(reference.len())
                    .map(|(l, _)| *l)
                    .unwrap_or_else(|| self.ranks[r].len().max(1));
                diags.push(Diagnostic::error(
                    "C006",
                    line,
                    format!(
                        "rank {r} issues {} collective{}, but rank 0 issues {}",
                        seq.len(),
                        if seq.len() == 1 { "" } else { "s" },
                        reference.len()
                    ),
                ));
            }
        }
        diags
    }

    /// Pass 3 — `C001`/`C002`/`C003`: per-channel send/receive matching.
    ///
    /// A channel is `(src → dst, tag, epoch)`. Counts must balance
    /// (`C001`), FIFO-paired payload sizes must agree (`C002`), and a
    /// channel carrying differently-sized messages draws a warning
    /// (`C003`) because correctness then leans on FIFO delivery alone.
    fn check_matching(&self) -> Vec<Diagnostic> {
        // channel -> (sends: (op line, bytes), recvs: (op line, bytes))
        type Channel = (Rank, Rank, u64, u32);
        type Endpoints = (Vec<(usize, u64)>, Vec<(usize, u64)>);
        let mut chans: BTreeMap<Channel, Endpoints> = BTreeMap::new();
        for (r, ops) in self.ranks.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                match op.kind {
                    OpKind::Isend { peer, tag, bytes } | OpKind::Send { peer, tag, bytes } => {
                        chans
                            .entry((r, peer, tag, op.epoch))
                            .or_default()
                            .0
                            .push((i + 1, bytes));
                    }
                    OpKind::Irecv { peer, tag, bytes } | OpKind::Recv { peer, tag, bytes } => {
                        chans
                            .entry((peer, r, tag, op.epoch))
                            .or_default()
                            .1
                            .push((i + 1, bytes));
                    }
                    _ => {}
                }
            }
        }
        let mut diags = Vec::new();
        for ((src, dst, tag, epoch), (sends, recvs)) in &chans {
            if sends.len() != recvs.len() {
                // Attribute to the first surplus op on the surplus side.
                let (line, msg) = if sends.len() > recvs.len() {
                    (
                        sends[recvs.len()].0,
                        format!(
                            "rank {src}: {} send{} to rank {dst} with tag {tag} in epoch \
                             {epoch}, but rank {dst} posts {} receive{}",
                            sends.len(),
                            if sends.len() == 1 { "" } else { "s" },
                            recvs.len(),
                            if recvs.len() == 1 { "" } else { "s" },
                        ),
                    )
                } else {
                    (
                        recvs[sends.len()].0,
                        format!(
                            "rank {dst}: {} receive{} from rank {src} with tag {tag} in epoch \
                             {epoch}, but rank {src} posts {} send{}",
                            recvs.len(),
                            if recvs.len() == 1 { "" } else { "s" },
                            sends.len(),
                            if sends.len() == 1 { "" } else { "s" },
                        ),
                    )
                };
                diags.push(Diagnostic::error("C001", line, msg).with_note(format!(
                    "every (src -> dst, tag, epoch) channel must balance; \
                     this one has {} send(s) and {} receive(s)",
                    sends.len(),
                    recvs.len()
                )));
                continue;
            }
            let mut paired_ok = true;
            for (k, ((s_line, s_bytes), (r_line, r_bytes))) in sends.iter().zip(recvs).enumerate() {
                if s_bytes != r_bytes {
                    paired_ok = false;
                    diags.push(
                        Diagnostic::error(
                            "C002",
                            *r_line,
                            format!(
                                "rank {dst}: receive #{} from rank {src} (tag {tag}, epoch \
                                 {epoch}) expects {r_bytes} B, but the matching send at rank \
                                 {src} op {s_line} carries {s_bytes} B",
                                k + 1
                            ),
                        )
                        .with_note(
                            "messages on one channel pair up FIFO: the k-th send \
                             completes the k-th receive"
                                .to_string(),
                        ),
                    );
                }
            }
            if paired_ok && sends.len() > 1 {
                let first = sends[0].1;
                if sends.iter().any(|(_, b)| *b != first) {
                    diags.push(
                        Diagnostic::warning(
                            "C003",
                            sends[0].0,
                            format!(
                                "rank {src}: channel to rank {dst} (tag {tag}, epoch {epoch}) \
                                 carries {} differently-sized messages",
                                sends.len()
                            ),
                        )
                        .with_note(
                            "size-heterogeneous same-tag traffic is correct only under \
                             FIFO delivery; give each size its own tag"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        diags
    }

    /// Pass 4 — `C007`/`C008`: receive-request discipline.
    ///
    /// Epoch rule: a request posted in epoch `e` must be completed (by a
    /// `Wait` or `Waitall`) before the rank executes any op of a later
    /// epoch, and before the plan ends. This catches a skipped `Waitall`
    /// even when a later one would silently absorb the leak at runtime.
    fn check_requests(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (r, ops) in self.ranks.iter().enumerate() {
            // Outstanding irecvs: (op line, epoch, peer, tag).
            let mut outstanding: Vec<(usize, u32, Rank, u64)> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                let stale: Vec<_> = outstanding
                    .iter()
                    .filter(|(_, e, _, _)| *e < op.epoch)
                    .copied()
                    .collect();
                for (line, e, peer, tag) in stale {
                    diags.push(
                        Diagnostic::error(
                            "C007",
                            line,
                            format!(
                                "rank {r}: receive request (peer {peer}, tag {tag}) posted in \
                                 epoch {e} is still pending when epoch {} begins at op {}",
                                op.epoch,
                                i + 1
                            ),
                        )
                        .with_note(
                            "requests must be completed by a wait or waitall before \
                             the schedule advances to a later epoch"
                                .to_string(),
                        ),
                    );
                }
                outstanding.retain(|(_, e, _, _)| *e >= op.epoch);
                match op.kind {
                    OpKind::Irecv { peer, tag, .. } => {
                        outstanding.push((i + 1, op.epoch, peer, tag));
                    }
                    OpKind::Wait { peer, tag } => {
                        if let Some(pos) = outstanding
                            .iter()
                            .position(|(_, _, p, t)| *p == peer && *t == tag)
                        {
                            outstanding.remove(pos);
                        } else {
                            diags.push(Diagnostic::error(
                                "C008",
                                i + 1,
                                format!(
                                    "rank {r}: wait(peer {peer}, tag {tag}) has no matching \
                                     outstanding receive request"
                                ),
                            ));
                        }
                    }
                    OpKind::Waitall => outstanding.clear(),
                    _ => {}
                }
            }
            for (line, e, peer, tag) in outstanding {
                diags.push(Diagnostic::error(
                    "C007",
                    line,
                    format!(
                        "rank {r}: receive request (peer {peer}, tag {tag}) posted in epoch \
                         {e} is never completed before the plan ends"
                    ),
                ));
            }
        }
        diags
    }

    /// Pass 5 — `C004`/`C005`: deadlock freedom by abstract execution.
    ///
    /// Sends buffer (the router's model: posting never blocks); receives,
    /// waits and collectives block. The interpreter advances ranks until
    /// quiescence; early quiescence means some rank is stuck, and the
    /// wait-for graph is searched for a cycle (`C004`). A stall with no
    /// cycle — only reachable if an earlier pass missed something — is
    /// reported defensively as `C005`.
    fn check_deadlock(&self) -> Vec<Diagnostic> {
        let n = self.nranks();
        let mut pc = vec![0usize; n];
        // Delivered-but-unconsumed messages per (src, dst, tag).
        let mut mail: BTreeMap<(Rank, Rank, u64), u64> = BTreeMap::new();
        // Outstanding irecvs per rank: (peer, tag), posting order.
        let mut outstanding: Vec<Vec<(Rank, u64)>> = vec![Vec::new(); n];

        let avail = |mail: &BTreeMap<(Rank, Rank, u64), u64>, key: &(Rank, Rank, u64)| {
            mail.get(key).copied().unwrap_or(0)
        };
        let waitall_ready =
            |mail: &BTreeMap<(Rank, Rank, u64), u64>, me: Rank, reqs: &[(Rank, u64)]| {
                let mut need: BTreeMap<(Rank, Rank, u64), u64> = BTreeMap::new();
                for (peer, tag) in reqs {
                    *need.entry((*peer, me, *tag)).or_default() += 1;
                }
                need.iter().all(|(k, cnt)| avail(mail, k) >= *cnt)
            };

        loop {
            let mut progressed = false;
            for r in 0..n {
                while pc[r] < self.ranks[r].len() {
                    let op = &self.ranks[r][pc[r]];
                    match op.kind {
                        OpKind::Isend { peer, tag, .. } | OpKind::Send { peer, tag, .. } => {
                            *mail.entry((r, peer, tag)).or_default() += 1;
                        }
                        OpKind::Irecv { peer, tag, .. } => outstanding[r].push((peer, tag)),
                        OpKind::Recv { peer, tag, .. } => {
                            if avail(&mail, &(peer, r, tag)) == 0 {
                                break;
                            }
                            *mail.get_mut(&(peer, r, tag)).expect("avail > 0") -= 1;
                        }
                        OpKind::Wait { peer, tag } => {
                            if avail(&mail, &(peer, r, tag)) == 0 {
                                break;
                            }
                            *mail.get_mut(&(peer, r, tag)).expect("avail > 0") -= 1;
                            let pos = outstanding[r]
                                .iter()
                                .position(|(p, t)| *p == peer && *t == tag)
                                .expect("pass 4 guarantees a matching request");
                            outstanding[r].remove(pos);
                        }
                        OpKind::Waitall => {
                            if !waitall_ready(&mail, r, &outstanding[r]) {
                                break;
                            }
                            for (peer, tag) in outstanding[r].drain(..) {
                                *mail.get_mut(&(peer, r, tag)).expect("waitall_ready") -= 1;
                            }
                        }
                        OpKind::Reduce { .. } | OpKind::Barrier => break,
                    }
                    pc[r] += 1;
                    progressed = true;
                }
            }
            // Collectives fire only when every rank has arrived at one
            // (pass 2 guarantees the sequences agree, so "arrived" means
            // the next op is any collective).
            let all_at_collective = (0..n).all(|r| {
                matches!(
                    self.ranks[r].get(pc[r]).map(|o| o.kind),
                    Some(OpKind::Reduce { .. }) | Some(OpKind::Barrier)
                )
            });
            if all_at_collective {
                for p in pc.iter_mut() {
                    *p += 1;
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }

        if (0..n).all(|r| pc[r] == self.ranks[r].len()) {
            return Vec::new();
        }

        // Early quiescence: build the wait-for graph over stuck ranks.
        let mut edges: Vec<Vec<Rank>> = vec![Vec::new(); n];
        for r in 0..n {
            let Some(op) = self.ranks[r].get(pc[r]) else {
                continue;
            };
            match op.kind {
                OpKind::Recv { peer, tag, .. } | OpKind::Wait { peer, tag }
                    if avail(&mail, &(peer, r, tag)) == 0 =>
                {
                    edges[r].push(peer);
                }
                OpKind::Waitall => {
                    let mut need: BTreeMap<(Rank, u64), u64> = BTreeMap::new();
                    for (peer, tag) in &outstanding[r] {
                        *need.entry((*peer, *tag)).or_default() += 1;
                    }
                    for ((peer, tag), cnt) in need {
                        if avail(&mail, &(peer, r, tag)) < cnt {
                            edges[r].push(peer);
                        }
                    }
                }
                OpKind::Reduce { .. } | OpKind::Barrier => {
                    for (p, &ppc) in pc.iter().enumerate() {
                        let arrived = matches!(
                            self.ranks[p].get(ppc).map(|o| o.kind),
                            Some(OpKind::Reduce { .. }) | Some(OpKind::Barrier)
                        );
                        if p != r && !arrived {
                            edges[r].push(p);
                        }
                    }
                }
                _ => {}
            }
        }

        let mut diags = Vec::new();
        if let Some(cycle) = find_cycle(&edges) {
            let path = cycle
                .iter()
                .map(|r| {
                    format!(
                        "rank {r} (op {}: {})",
                        pc[*r] + 1,
                        self.ranks[*r][pc[*r]].kind
                    )
                })
                .collect::<Vec<_>>()
                .join(" -> ");
            let head = cycle[0];
            diags.push(
                Diagnostic::error(
                    "C004",
                    pc[head] + 1,
                    format!(
                        "deadlock: rank {head} blocks at op {} ({}) inside a wait-for cycle",
                        pc[head] + 1,
                        self.ranks[head][pc[head]].kind
                    ),
                )
                .with_note(format!("cycle: {path} -> rank {head}")),
            );
        } else {
            for (r, &rpc) in pc.iter().enumerate() {
                if rpc < self.ranks[r].len() {
                    diags.push(Diagnostic::error(
                        "C005",
                        rpc + 1,
                        format!(
                            "rank {r} stalls at op {} ({}) with no cycle in the wait-for \
                             graph: a message it needs is never sent",
                            rpc + 1,
                            self.ranks[r][rpc].kind
                        ),
                    ));
                }
            }
        }
        diags
    }

    /// Conformance audit — `C010`/`C011`/`C012`: does a recorded
    /// execution trace refine this (already verified) plan?
    ///
    /// Per rank, the plan is replayed against the trace: every plan op
    /// must appear as the next trace event with identical peer, tag and
    /// bytes (`Waitall` expands to one `Wait` event per outstanding
    /// request, in posting order). Divergence is `C010`, trace events
    /// past the end of the plan are `C011`, and a trace that ends with
    /// plan ops unexecuted is `C012`.
    pub fn audit(&self, trace: &CommTrace) -> Report {
        let mut diags = Vec::new();
        if trace.len() != self.nranks() {
            return Report::new(vec![Diagnostic::error(
                "C010",
                1,
                format!(
                    "trace has {} rank{}, plan has {}",
                    trace.len(),
                    if trace.len() == 1 { "" } else { "s" },
                    self.nranks()
                ),
            )]);
        }
        for (r, (ops, events)) in self.ranks.iter().zip(trace).enumerate() {
            diags.extend(audit_rank(r, ops, events));
        }
        Report::new(diags)
    }
}

/// Replay one rank's plan against its trace (see [`CommPlan::audit`]).
fn audit_rank(r: Rank, ops: &[PlanOp], events: &[TraceOp]) -> Vec<Diagnostic> {
    // Outstanding planned irecvs, posting order: (peer, tag, bytes).
    let mut outstanding: Vec<(Rank, u64, u64)> = Vec::new();
    let mut next = 0usize; // trace cursor

    let mismatch = |line: usize, planned: &OpKind, observed: &TraceOp| {
        Diagnostic::error(
            "C010",
            line,
            format!("rank {r}: plan op {line} is {planned}, but the trace records {observed}"),
        )
        .with_note("the execution diverged from the verified schedule".to_string())
    };
    let truncated = |line: usize, planned: String| {
        Diagnostic::error(
            "C012",
            line,
            format!("rank {r}: trace ends before plan op {line} ({planned}) executed"),
        )
    };

    for (i, op) in ops.iter().enumerate() {
        let line = i + 1;
        match op.kind {
            OpKind::Irecv { peer, tag, bytes } => {
                match events.get(next) {
                    Some(TraceOp::Irecv { peer: p, tag: t }) if *p == peer && *t == tag => {
                        outstanding.push((peer, tag, bytes));
                        next += 1;
                    }
                    Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                    None => return vec![truncated(line, op.kind.to_string())],
                };
            }
            OpKind::Wait { peer, tag } => {
                let pos = outstanding
                    .iter()
                    .position(|(p, t, _)| *p == peer && *t == tag)
                    .expect("audited plans are verified: wait has a request");
                let (_, _, bytes) = outstanding.remove(pos);
                match events.get(next) {
                    Some(TraceOp::Wait {
                        peer: p,
                        tag: t,
                        bytes: b,
                    }) if *p == peer && *t == tag && *b == bytes => next += 1,
                    Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                    None => return vec![truncated(line, op.kind.to_string())],
                }
            }
            OpKind::Waitall => {
                for (peer, tag, bytes) in outstanding.drain(..) {
                    match events.get(next) {
                        Some(TraceOp::Wait {
                            peer: p,
                            tag: t,
                            bytes: b,
                        }) if *p == peer && *t == tag && *b == bytes => next += 1,
                        Some(ev) => {
                            return vec![Diagnostic::error(
                                "C010",
                                line,
                                format!(
                                    "rank {r}: plan op {line} (waitall) should complete the \
                                     request (peer {peer}, tag {tag}, {bytes} B), but the \
                                     trace records {ev}"
                                ),
                            )]
                        }
                        None => {
                            return vec![truncated(
                                line,
                                format!("waitall completing peer {peer}, tag {tag}"),
                            )]
                        }
                    }
                }
            }
            OpKind::Isend { peer, tag, bytes } => match events.get(next) {
                Some(TraceOp::Isend {
                    peer: p,
                    tag: t,
                    bytes: b,
                }) if *p == peer && *t == tag && *b == bytes => next += 1,
                Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                None => return vec![truncated(line, op.kind.to_string())],
            },
            OpKind::Send { peer, tag, bytes } => match events.get(next) {
                Some(TraceOp::Send {
                    peer: p,
                    tag: t,
                    bytes: b,
                }) if *p == peer && *t == tag && *b == bytes => next += 1,
                Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                None => return vec![truncated(line, op.kind.to_string())],
            },
            OpKind::Recv { peer, tag, bytes } => match events.get(next) {
                Some(TraceOp::Recv {
                    peer: p,
                    tag: t,
                    bytes: b,
                }) if *p == peer && *t == tag && *b == bytes => next += 1,
                Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                None => return vec![truncated(line, op.kind.to_string())],
            },
            OpKind::Reduce { bytes } => match events.get(next) {
                Some(TraceOp::Reduce { bytes: b }) if *b == bytes => next += 1,
                Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                None => return vec![truncated(line, op.kind.to_string())],
            },
            OpKind::Barrier => match events.get(next) {
                Some(TraceOp::Barrier) => next += 1,
                Some(ev) => return vec![mismatch(line, &op.kind, ev)],
                None => return vec![truncated(line, op.kind.to_string())],
            },
        }
    }
    if next < events.len() {
        return vec![Diagnostic::error(
            "C011",
            ops.len() + 1,
            format!(
                "rank {r}: trace records {} event{} beyond the end of the plan, starting \
                 with {}",
                events.len() - next,
                if events.len() - next == 1 { "" } else { "s" },
                events[next]
            ),
        )];
    }
    Vec::new()
}

/// Find any cycle in a small adjacency-list digraph, returned as the node
/// sequence of the cycle (deterministic: DFS from the smallest rank).
fn find_cycle(edges: &[Vec<Rank>]) -> Option<Vec<Rank>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = edges.len();
    let mut mark = vec![Mark::White; n];
    let mut stack: Vec<Rank> = Vec::new();

    fn dfs(
        v: Rank,
        edges: &[Vec<Rank>],
        mark: &mut [Mark],
        stack: &mut Vec<Rank>,
    ) -> Option<Vec<Rank>> {
        mark[v] = Mark::Grey;
        stack.push(v);
        for &w in &edges[v] {
            match mark[w] {
                Mark::Grey => {
                    let start = stack
                        .iter()
                        .position(|&x| x == w)
                        .expect("grey is on stack");
                    return Some(stack[start..].to_vec());
                }
                Mark::White => {
                    if let Some(c) = dfs(w, edges, mark, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        mark[v] = Mark::Black;
        None
    }

    for v in 0..n {
        if mark[v] == Mark::White {
            if let Some(c) = dfs(v, edges, &mut mark, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpKind::*;

    fn op(epoch: u32, kind: OpKind) -> PlanOp {
        PlanOp::new(epoch, kind)
    }

    /// A clean 2-rank overlapped exchange: both post irecvs, isend,
    /// waitall, then reduce.
    fn clean_pair() -> CommPlan {
        CommPlan {
            ranks: vec![
                vec![
                    op(
                        0,
                        Irecv {
                            peer: 1,
                            tag: 10,
                            bytes: 64,
                        },
                    ),
                    op(
                        0,
                        Isend {
                            peer: 1,
                            tag: 10,
                            bytes: 64,
                        },
                    ),
                    op(0, Waitall),
                    op(1, Reduce { bytes: 8 }),
                ],
                vec![
                    op(
                        0,
                        Irecv {
                            peer: 0,
                            tag: 10,
                            bytes: 64,
                        },
                    ),
                    op(
                        0,
                        Isend {
                            peer: 0,
                            tag: 10,
                            bytes: 64,
                        },
                    ),
                    op(0, Waitall),
                    op(1, Reduce { bytes: 8 }),
                ],
            ],
        }
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_plan_verifies_clean() {
        let report = clean_pair().verify();
        assert!(report.is_clean(), "{}", report.render("plan"));
    }

    #[test]
    fn c009_peer_out_of_range_and_self_send() {
        let plan = CommPlan {
            ranks: vec![vec![
                op(
                    0,
                    Send {
                        peer: 5,
                        tag: 1,
                        bytes: 8,
                    },
                ),
                op(
                    0,
                    Send {
                        peer: 0,
                        tag: 1,
                        bytes: 8,
                    },
                ),
            ]],
        };
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C009", "C009"]);
        assert!(report.diagnostics[0].message.contains("peer 5"));
        assert!(report.diagnostics[1].message.contains("self-message"));
    }

    #[test]
    fn c001_dropped_receive_names_channel() {
        let mut plan = clean_pair();
        plan.ranks[1].remove(0); // drop rank 1's irecv
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C001"]);
        let d = &report.diagnostics[0];
        assert!(d.message.contains("rank 0"), "{}", d.message);
        assert!(d.message.contains("rank 1"), "{}", d.message);
        assert!(d.message.contains("tag 10"), "{}", d.message);
    }

    #[test]
    fn c002_byte_mismatch_fifo_paired() {
        let mut plan = clean_pair();
        plan.ranks[0][1] = op(
            0,
            Isend {
                peer: 1,
                tag: 10,
                bytes: 32,
            },
        );
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C002"]);
        assert!(report.diagnostics[0].message.contains("64 B"));
        assert!(report.diagnostics[0].message.contains("32 B"));
    }

    #[test]
    fn c003_warns_on_size_heterogeneous_channel() {
        let plan = CommPlan {
            ranks: vec![
                vec![
                    op(
                        0,
                        Send {
                            peer: 1,
                            tag: 3,
                            bytes: 8,
                        },
                    ),
                    op(
                        0,
                        Send {
                            peer: 1,
                            tag: 3,
                            bytes: 16,
                        },
                    ),
                ],
                vec![
                    op(
                        0,
                        Recv {
                            peer: 0,
                            tag: 3,
                            bytes: 8,
                        },
                    ),
                    op(
                        0,
                        Recv {
                            peer: 0,
                            tag: 3,
                            bytes: 16,
                        },
                    ),
                ],
            ],
        };
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C003"]);
        assert!(!report.has_errors());
    }

    #[test]
    fn c004_head_to_head_blocking_recv_deadlocks() {
        let plan = CommPlan {
            ranks: vec![
                vec![
                    op(
                        0,
                        Recv {
                            peer: 1,
                            tag: 1,
                            bytes: 8,
                        },
                    ),
                    op(
                        0,
                        Send {
                            peer: 1,
                            tag: 1,
                            bytes: 8,
                        },
                    ),
                ],
                vec![
                    op(
                        0,
                        Recv {
                            peer: 0,
                            tag: 1,
                            bytes: 8,
                        },
                    ),
                    op(
                        0,
                        Send {
                            peer: 0,
                            tag: 1,
                            bytes: 8,
                        },
                    ),
                ],
            ],
        };
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C004"]);
        let note = report.diagnostics[0].note.as_deref().unwrap();
        assert!(note.contains("rank 0"), "{note}");
        assert!(note.contains("rank 1"), "{note}");
    }

    #[test]
    fn c006_reordered_collective_names_rank_and_op() {
        let mut plan = clean_pair();
        plan.ranks[1][3] = op(1, Barrier);
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C006"]);
        assert!(report.diagnostics[0].message.contains("rank 1"));
        assert_eq!(report.diagnostics[0].line, 4);
    }

    #[test]
    fn c007_skipped_waitall_caught_by_epoch_discipline() {
        let mut plan = clean_pair();
        plan.ranks[0].remove(2); // skip rank 0's waitall
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C007"]);
        assert!(report.diagnostics[0].message.contains("rank 0"));
        assert!(report.diagnostics[0].message.contains("tag 10"));
    }

    #[test]
    fn c008_wait_without_request() {
        let plan = CommPlan {
            ranks: vec![vec![op(0, Wait { peer: 1, tag: 9 })], vec![]],
        };
        let report = plan.verify();
        assert_eq!(codes(&report), vec!["C008"]);
    }

    #[test]
    fn canonical_is_stable_and_distinct() {
        let a = clean_pair().canonical();
        let b = clean_pair().canonical();
        assert_eq!(a, b);
        let mut m = clean_pair();
        m.ranks[0][0] = op(
            0,
            Irecv {
                peer: 1,
                tag: 11,
                bytes: 64,
            },
        );
        assert_ne!(a, m.canonical());
        assert!(a.contains("rank 0 op 1: e0 irecv(peer 1, tag 10, 64 B)"));
    }

    #[test]
    fn audit_accepts_faithful_trace_and_flags_divergence() {
        let plan = clean_pair();
        let faithful: CommTrace = vec![
            vec![
                TraceOp::Irecv { peer: 1, tag: 10 },
                TraceOp::Isend {
                    peer: 1,
                    tag: 10,
                    bytes: 64,
                },
                TraceOp::Wait {
                    peer: 1,
                    tag: 10,
                    bytes: 64,
                },
                TraceOp::Reduce { bytes: 8 },
            ],
            vec![
                TraceOp::Irecv { peer: 0, tag: 10 },
                TraceOp::Isend {
                    peer: 0,
                    tag: 10,
                    bytes: 64,
                },
                TraceOp::Wait {
                    peer: 0,
                    tag: 10,
                    bytes: 64,
                },
                TraceOp::Reduce { bytes: 8 },
            ],
        ];
        assert!(plan.audit(&faithful).is_clean());

        // Divergent: rank 1 sent the wrong tag.
        let mut wrong = faithful.clone();
        wrong[1][1] = TraceOp::Isend {
            peer: 0,
            tag: 11,
            bytes: 64,
        };
        let report = plan.audit(&wrong);
        assert_eq!(codes(&report), vec!["C010"]);
        assert!(report.diagnostics[0].message.contains("rank 1"));

        // Truncated: rank 0 never reduced.
        let mut short = faithful.clone();
        short[0].pop();
        assert_eq!(codes(&plan.audit(&short)), vec!["C012"]);

        // Chatty: rank 0 sent an extra message after the plan ended.
        let mut extra = faithful;
        extra[0].push(TraceOp::Barrier);
        assert_eq!(codes(&plan.audit(&extra)), vec!["C011"]);
    }
}
