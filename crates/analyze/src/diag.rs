//! Structured diagnostics and their rustc-style rendering.

use std::fmt;

/// How bad a finding is: errors gate execution, warnings do not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable (dead component, redundant disconnect, ...).
    Warning,
    /// The assembly is wrong and `go` would fail or misbehave.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from the static checker.
///
/// `code` is stable and machine-matchable (`E001`–`E011`, `W001`–`W004`;
/// see the crate docs for the full table); `line` is 1-based into the
/// script being analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code, e.g. `"E005"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// 1-based script line the finding is attributed to.
    pub line: usize,
    /// One-line description of what is wrong.
    pub message: String,
    /// Optional secondary text: expected types, the cycle path, a
    /// did-you-mean suggestion.
    pub note: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            line,
            message: message.into(),
            note: None,
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            line,
            message: message.into(),
            note: None,
        }
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Render rustc-style against a display name for the script source:
    ///
    /// ```text
    /// error[E005]: component 'drv' has no uses-port 'rsh'
    ///   --> app.rc:3
    ///   = note: declared uses-ports: rhs
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}:{}\n",
            self.severity, self.code, self.message, source, self.line
        );
        if let Some(note) = &self.note {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }
}

/// The full outcome of analyzing one script.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by line then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Build a report, sorting findings by `(line, code)` so output is
    /// deterministic regardless of pass order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
        Report { diagnostics }
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Does any finding gate execution?
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// No findings at all — the assembly is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render every diagnostic plus a closing summary line, rustc-style.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(source));
        }
        let (e, w) = (self.error_count(), self.warning_count());
        if e > 0 {
            out.push_str(&format!(
                "error: assembly rejected: {e} error{} ({w} warning{})\n",
                plural(e),
                plural(w)
            ));
        } else if w > 0 {
            out.push_str(&format!(
                "warning: assembly accepted with {w} warning{}\n",
                plural(w)
            ));
        }
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_matches_rustc_shape() {
        let d = Diagnostic::error("E002", 4, "unknown component class 'GodunovFlx'")
            .with_note("did you mean 'GodunovFlux'?");
        let r = d.render("shock.rc");
        assert!(r.contains("error[E002]: unknown component class 'GodunovFlx'"));
        assert!(r.contains("--> shock.rc:4"));
        assert!(r.contains("= note: did you mean 'GodunovFlux'?"));
    }

    #[test]
    fn report_sorts_and_counts() {
        let report = Report::new(vec![
            Diagnostic::warning("W001", 9, "dead"),
            Diagnostic::error("E006", 2, "mismatch"),
            Diagnostic::error("E002", 2, "unknown"),
        ]);
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["E002", "E006", "W001"]);
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert!(report
            .render("s.rc")
            .contains("error: assembly rejected: 2 errors (1 warning)"));
    }
}
