//! `cca-analyze` — static assembly verification for rc-scripts.
//!
//! The paper's framework catches a dangling uses-port only when `go` runs
//! (§2); everything else — a typo in a class name, a connect between
//! incompatible port types, a driver wired to nothing — surfaces one line
//! at a time, mid-execution. This crate moves all of that to *composition
//! time*: it parses a script into an IR ([`ir`]), harvests a machine-
//! checkable port-signature manifest from the palette
//! ([`cca_core::signature`]), and runs a multi-pass checker ([`check`])
//! that rejects a bad assembly in microseconds without executing anything.
//!
//! # Error codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | E001 | error    | syntax: unknown command, wrong arity, malformed number |
//! | E002 | error    | `instantiate` names a class absent from the palette |
//! | E003 | error    | instance name reused |
//! | E004 | error    | command names an instance that was never instantiated |
//! | E005 | error    | command names a port the class never declared |
//! | E006 | error    | `connect` joins ports of different interface types |
//! | E007 | error    | required uses-port still dangling at `go` |
//! | E008 | error    | `connect` closes a wiring cycle |
//! | E009 | error    | `parameter` targets a component without a ParameterPort |
//! | E010 | error    | `go` targets a provides-port that is not a GoPort |
//! | W001 | warning  | dead component: instantiated, never connected, never driven |
//! | W002 | warning  | `connect` after the assembly was already driven by `go` |
//! | W003 | warning  | `disconnect` of a port that is not connected |
//! | W004 | warning  | uses-port reconnected without an intervening `disconnect` |
//!
//! # Communication-schedule codes
//!
//! The second analysis domain ([`commplan`]) verifies distributed
//! communication schedules — per-rank op sequences emitted by the SCMD
//! schedule generators — before any rank runs, and audits execution
//! traces against the verified plan afterwards:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | C001 | error    | send/receive count mismatch on a `(src→dst, tag, epoch)` channel |
//! | C002 | error    | FIFO-paired send and receive disagree on payload bytes |
//! | C003 | warning  | one channel carries differently-sized messages (fragile FIFO reliance) |
//! | C004 | error    | deadlock: cycle in the blocking-dependency wait-for graph |
//! | C005 | error    | rank stalls with no cycle (a needed message is never sent) |
//! | C006 | error    | collective sequence differs between ranks |
//! | C007 | error    | receive request not completed before a later epoch / plan end |
//! | C008 | error    | `wait` with no matching outstanding receive request |
//! | C009 | error    | malformed op: peer out of range or self-message |
//! | C010 | error    | conformance: execution trace diverges from the verified plan |
//! | C011 | error    | conformance: rank executed ops beyond the end of its plan |
//! | C012 | error    | conformance: rank ended with plan ops unexecuted |
//!
//! # Usage
//!
//! ```
//! use cca_analyze::{Analyzer, run_script_checked};
//! use cca_core::{Component, Framework, Services};
//! use cca_core::ports::GoPort;
//! use std::rc::Rc;
//!
//! struct Run;
//! impl GoPort for Run { fn go(&self) -> Result<(), String> { Ok(()) } }
//! struct Driver;
//! impl Component for Driver {
//!     fn set_services(&mut self, s: Services) {
//!         s.add_provides_port::<Rc<dyn GoPort>>("go", Rc::new(Run));
//!     }
//! }
//!
//! let mut fw = Framework::new();
//! fw.register_class("Driver", || Box::new(Driver));
//!
//! // Static check only (`--check` mode): nothing executes.
//! let analyzer = Analyzer::new(&fw);
//! let report = analyzer.analyze("instantiate Driver drv\ngo drv og\n");
//! assert!(report.has_errors()); // E005: no provides-port 'og'
//!
//! // Lint-then-run: a clean script executes, a bad one is rejected whole.
//! let t = run_script_checked(&mut fw, "instantiate Driver drv\ngo drv go\n").unwrap();
//! assert_eq!(t.go_count, 1);
//! ```

pub mod check;
pub mod commplan;
pub mod diag;
pub mod distplan;
pub mod ir;

pub use check::Analyzer;
pub use commplan::{CommPlan, OpKind, PlanOp};
pub use diag::{Diagnostic, Report, Severity};
pub use ir::{parse_script, Command, ParsedScript, Stmt};

use cca_core::script::{run_script, Transcript};
use cca_core::{CcaError, Framework};

/// Why a checked run did not produce a transcript.
#[derive(Clone, Debug)]
pub enum CheckedRunError {
    /// The static checker found errors; nothing was executed.
    Rejected(Report),
    /// The script passed the static checks but failed while running.
    Runtime(CcaError),
}

impl std::fmt::Display for CheckedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckedRunError::Rejected(report) => write!(f, "{}", report.render("script")),
            CheckedRunError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckedRunError {}

/// Lint `script` against `fw`'s palette and execute it only if no
/// error-severity diagnostic was found (warnings do not gate).
///
/// This is the analyzer plugged into the
/// [`cca_core::script::run_script_checked`] seam, with the full structured
/// [`Report`] preserved on rejection.
pub fn run_script_checked(fw: &mut Framework, script: &str) -> Result<Transcript, CheckedRunError> {
    let report = Analyzer::new(fw).analyze(script);
    if report.has_errors() {
        return Err(CheckedRunError::Rejected(report));
    }
    run_script(fw, script).map_err(CheckedRunError::Runtime)
}

/// Adapter for the [`cca_core::script::run_script_checked`] hook: run the
/// analyzer and fold any rejection into a [`CcaError::Script`] carrying the
/// first error's line and rendered message.
pub fn lint(fw: &Framework, script: &str) -> Result<(), CcaError> {
    match Analyzer::new(fw).check(script) {
        Ok(_) => Ok(()),
        Err(report) => {
            let first = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
                .expect("check() errs only when an error exists");
            Err(CcaError::Script {
                line: first.line,
                message: format!("[{}] {}", first.code, first.message),
            })
        }
    }
}

/// Closest candidate to `name` within a small edit distance, for
/// did-you-mean notes. `None` when nothing is close enough to be helpful.
pub(crate) fn suggest<'a>(
    name: &str,
    candidates: impl Iterator<Item = &'a str>,
) -> Option<&'a str> {
    let max = (name.len() / 3).clamp(1, 3);
    candidates
        .filter_map(|c| {
            let d = edit_distance(name, c);
            (d <= max).then_some((d, c))
        })
        .min()
        .map(|(_, c)| c)
}

/// Plain Levenshtein distance, case-sensitive, O(len(a) * len(b)).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("connect", "connect"), 0);
        assert_eq!(edit_distance("conect", "connect"), 1);
        assert_eq!(edit_distance("go", "arena"), 5);
    }

    #[test]
    fn suggest_picks_closest_within_threshold() {
        let cands = ["GodunovFlux", "EFMFlux", "States"];
        assert_eq!(
            suggest("GodunovFlx", cands.iter().copied()),
            Some("GodunovFlux")
        );
        assert_eq!(suggest("Zebra", cands.iter().copied()), None);
    }
}
