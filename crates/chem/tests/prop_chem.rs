//! Property-based tests of the thermochemistry substrate.

use cca_chem::mechanisms::{h2_air_19, h2_air_reduced_5, h2_composition};
use cca_chem::thermo::Mixture;
use proptest::prelude::*;

/// Random physical concentration vectors (kmol/m³).
fn arb_conc(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..5e-2, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Element conservation: Σ_i ω̇_i × (atoms of e in i) = 0 for every
    /// element, any temperature, any composition — for both mechanisms.
    #[test]
    fn production_rates_conserve_elements(
        c in arb_conc(9),
        t in 500.0f64..3200.0,
    ) {
        for mech in [h2_air_19(), h2_air_reduced_5()] {
            let n = mech.n_species();
            let comp = h2_composition(&mech);
            let mut wdot = vec![0.0; n];
            mech.production_rates(t, &c[..n], &mut wdot);
            // `e` indexes the inner per-species element-count arrays, so
            // enumerate() over `comp` does not apply here.
            #[allow(clippy::needless_range_loop)]
            for e in 0..3 {
                let net: f64 = (0..n).map(|i| wdot[i] * comp[i][e]).sum();
                let scale: f64 = (0..n)
                    .map(|i| (wdot[i] * comp[i][e]).abs())
                    .sum::<f64>()
                    .max(1e-300);
                prop_assert!((net / scale).abs() < 1e-9,
                    "element {} violated at T={}: {}", e, t, net);
            }
        }
    }

    /// Mass conservation: Σ ω̇_i W_i = 0 (follows from elements, but
    /// tested directly as the quantity the energy equation relies on).
    #[test]
    fn production_rates_conserve_mass(c in arb_conc(9), t in 500.0f64..3200.0) {
        let mech = h2_air_19();
        let mut wdot = vec![0.0; 9];
        mech.production_rates(t, &c, &mut wdot);
        let rate: f64 = wdot.iter().zip(&mech.species).map(|(w, s)| w * s.molar_mass).sum();
        let scale: f64 = wdot
            .iter()
            .zip(&mech.species)
            .map(|(w, s)| (w * s.molar_mass).abs())
            .sum::<f64>()
            .max(1e-300);
        prop_assert!((rate / scale).abs() < 1e-9, "mass rate {}", rate);
    }

    /// Thermodynamic identities: h(T) is differentiable with dh/dT = cp
    /// (checked by finite differences), for every species over the fit
    /// range.
    #[test]
    fn enthalpy_derivative_is_cp(t in 350.0f64..2900.0, idx in 0usize..9) {
        let mech = h2_air_19();
        let s = &mech.species[idx];
        let dt = 0.01;
        // Keep the stencil on one side of the low/high junction.
        prop_assume!((t - s.t_mid).abs() > 2.0 * dt);
        let dh = (s.h_molar(t + dt) - s.h_molar(t - dt)) / (2.0 * dt);
        let cp = s.cp_molar(t);
        prop_assert!((dh - cp).abs() < 1e-4 * cp.abs(),
            "{}: dh/dT = {} vs cp = {}", s.name, dh, cp);
    }

    /// Mixture identities: W̄ is bounded by the lightest/heaviest species;
    /// cp > cv > 0; density scales linearly with pressure.
    #[test]
    fn mixture_identities(
        raw in proptest::collection::vec(1e-6f64..1.0, 9),
        t in 300.0f64..3000.0,
    ) {
        let mech = h2_air_19();
        let total: f64 = raw.iter().sum();
        let y: Vec<f64> = raw.iter().map(|v| v / total).collect();
        let mix = Mixture::new(&mech.species);
        let w = mix.mean_molar_mass(&y);
        prop_assert!(w > 2.015 && w < 34.02, "W = {}", w);
        let cp = mix.cp_mass(t, &y);
        let cv = mix.cv_mass(t, &y);
        prop_assert!(cp > cv && cv > 0.0, "cp {} cv {}", cp, cv);
        let rho1 = mix.density(t, 101_325.0, &y);
        let rho2 = mix.density(t, 202_650.0, &y);
        prop_assert!((rho2 / rho1 - 2.0).abs() < 1e-12);
    }

    /// Detailed balance: at any temperature, Kc(T) of a reaction equals
    /// the ratio of equilibrium concentration products — verified through
    /// the identity Kc = kf/kr and the sign structure: perturbing a state
    /// toward products makes the net rate negative (restoring).
    #[test]
    fn reverse_rates_restore_equilibrium_direction(t in 1500.0f64..3000.0) {
        let mech = h2_air_19();
        // Reaction 0: H + O2 = O + OH. Build a state exactly at its
        // equilibrium (c_O * c_OH / (c_H * c_O2) = Kc), then push the
        // products up 10%: the net progress must turn negative.
        let r = &mech.reactions[0];
        let kc = r.kc(t, &mech.species);
        prop_assume!(kc.is_finite() && kc > 1e-30);
        let c_h = 1e-4;
        let c_o2 = 1e-3;
        let c_o = (kc * c_h * c_o2).sqrt();
        let c_oh = c_o;
        let mut c = vec![1e-9; 9];
        c[cca_chem::mechanisms::idx::H] = c_h;
        c[cca_chem::mechanisms::idx::O2] = c_o2;
        c[cca_chem::mechanisms::idx::O] = c_o;
        c[cca_chem::mechanisms::idx::OH] = c_oh;
        // Isolate reaction 0: build a one-reaction mechanism.
        let mini = cca_chem::kinetics::Mechanism::new(mech.species.clone(), vec![r.clone()]);
        let mut wdot = vec![0.0; 9];
        mini.production_rates(t, &c, &mut wdot);
        // At equilibrium: net rate ~ 0 relative to the gross rate.
        let gross = r.kf(t) * c_h * c_o2;
        prop_assert!(wdot[cca_chem::mechanisms::idx::O].abs() < 1e-6 * gross,
            "not at equilibrium: {}", wdot[cca_chem::mechanisms::idx::O]);
        // Push products up: reverse must dominate.
        c[cca_chem::mechanisms::idx::O] *= 1.1;
        c[cca_chem::mechanisms::idx::OH] *= 1.1;
        mini.production_rates(t, &c, &mut wdot);
        prop_assert!(wdot[cca_chem::mechanisms::idx::O] < 0.0,
            "products should be consumed: {}", wdot[cca_chem::mechanisms::idx::O]);
    }
}
