//! Ready-made chemistry ODE systems.
//!
//! * [`ConstantVolumeIgnition`] — the paper's 0D problem (§4.1): rigid
//!   walls, constant mass and volume. The state vector is
//!   `Φ = {T, Y₁, …, Y_{N−1}, P}` exactly as in the paper; the last bulk
//!   species (N₂) closes ΣY = 1, and the pressure equation is the closure
//!   the `dPdt` component provides.
//! * [`ConstantPressureKinetics`] — the point-chemistry operator of the 2D
//!   reaction–diffusion flame (§4.2): open domain, pressure constant in
//!   time and space; state `{T, Y₁, …, Y_{N−1}}`.

use crate::kinetics::Mechanism;
use crate::thermo::{Mixture, RU};
use cca_solvers::ode::OdeSystem;
use std::cell::RefCell;

/// Scratch buffers shared by both systems, kept in a `RefCell` so the
/// `OdeSystem::rhs(&self, ...)` signature stays allocation-free.
struct Scratch {
    y_full: Vec<f64>,
    c: Vec<f64>,
    wdot: Vec<f64>,
}

impl Scratch {
    fn new(n: usize) -> RefCell<Self> {
        RefCell::new(Scratch {
            y_full: vec![0.0; n],
            c: vec![0.0; n],
            wdot: vec![0.0; n],
        })
    }
}

/// Constant-volume (rigid-wall) adiabatic ignition.
///
/// Energy equation: `ρ cv dT/dt = −Σ u_i ω̇_i W_i`; species:
/// `dY_i/dt = ω̇_i W_i / ρ`; pressure from differentiating the ideal-gas
/// law at constant `ρ`:
/// `dP/dt = ρ R (dT/dt / W̄ + T Σ (dY_i/dt)/W_i)`.
pub struct ConstantVolumeIgnition {
    mech: Mechanism,
    /// Fixed mixture density, kg/m³ (constant mass + volume).
    pub rho: f64,
    scratch: RefCell<Scratch>,
    /// Number of RHS calls, exposed for the Table 4 NFE column.
    pub nfe: std::cell::Cell<usize>,
}

impl ConstantVolumeIgnition {
    /// Set up from a mechanism and the initial `(T0, P0, Y0)`; density is
    /// frozen at its initial value.
    pub fn new(mech: Mechanism, t0: f64, p0: f64, y0: &[f64]) -> Self {
        let mix = Mixture::new(&mech.species);
        let rho = mix.density(t0, p0, y0);
        let n = mech.n_species();
        ConstantVolumeIgnition {
            mech,
            rho,
            scratch: Scratch::new(n),
            nfe: std::cell::Cell::new(0),
        }
    }

    /// The underlying mechanism.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// Pack `(T, Y, P)` into the paper's state layout
    /// `{T, Y₁.. Y_{N−1}, P}` (the bulk species Y_N is implied).
    pub fn pack_state(&self, t: f64, y: &[f64], p: f64) -> Vec<f64> {
        let n = self.mech.n_species();
        let mut state = Vec::with_capacity(n + 1);
        state.push(t);
        state.extend_from_slice(&y[..n - 1]);
        state.push(p);
        state
    }

    /// Unpack the state vector into `(T, Y_full, P)`.
    pub fn unpack_state(&self, state: &[f64]) -> (f64, Vec<f64>, f64) {
        let n = self.mech.n_species();
        let t = state[0];
        let p = state[n];
        let mut y = Vec::with_capacity(n);
        y.extend_from_slice(&state[1..n]);
        let bulk = 1.0 - y.iter().sum::<f64>();
        y.push(bulk);
        (t, y, p)
    }
}

impl OdeSystem for ConstantVolumeIgnition {
    fn dim(&self) -> usize {
        self.mech.n_species() + 1 // T, N-1 species, P
    }

    fn rhs(&self, _time: f64, state: &[f64], dstate: &mut [f64]) {
        self.nfe.set(self.nfe.get() + 1);
        let n = self.mech.n_species();
        let mut s = self.scratch.borrow_mut();
        let Scratch { y_full, c, wdot } = &mut *s;
        let temp = state[0].max(200.0);
        // Reconstruct full mass-fraction vector; bulk species closes to 1.
        let mut bulk = 1.0;
        for i in 0..n - 1 {
            y_full[i] = state[1 + i];
            bulk -= state[1 + i];
        }
        y_full[n - 1] = bulk;
        let mix = Mixture::new(&self.mech.species);
        mix.concentrations(self.rho, y_full, c);
        self.mech.production_rates(temp, c, wdot);

        // Species equations.
        let mut sum_u_wdot = 0.0;
        let mut sum_dyw = 0.0; // Σ (dY_i/dt)/W_i
        for i in 0..n {
            let w = self.mech.species[i].molar_mass;
            let dyi = wdot[i] * w / self.rho;
            if i < n - 1 {
                dstate[1 + i] = dyi;
            }
            sum_u_wdot += self.mech.species[i].u_molar(temp) * wdot[i];
            sum_dyw += dyi / w;
        }
        // Temperature equation (constant volume: internal energy).
        let cv = mix.cv_mass(temp, y_full);
        let dtdt = -sum_u_wdot / (self.rho * cv);
        dstate[0] = dtdt;
        // Pressure closure (the dPdt component's job).
        let w_mean = mix.mean_molar_mass(y_full);
        dstate[n] = self.rho * RU * (dtdt / w_mean + temp * sum_dyw);
    }
}

/// Constant-pressure point chemistry: `dT/dt = −Σ h_i ω̇_i W_i/(ρ cp)`,
/// `dY_i/dt = ω̇_i W_i/ρ`, with `ρ = P W̄/(R T)` re-evaluated from the
/// state. State layout `{T, Y₁, …, Y_{N−1}}`.
pub struct ConstantPressureKinetics {
    mech: Mechanism,
    /// The fixed ambient pressure, Pa.
    pub pressure: f64,
    scratch: RefCell<Scratch>,
    /// RHS call counter.
    pub nfe: std::cell::Cell<usize>,
}

impl ConstantPressureKinetics {
    /// New system at the given constant pressure.
    pub fn new(mech: Mechanism, pressure: f64) -> Self {
        let n = mech.n_species();
        ConstantPressureKinetics {
            mech,
            pressure,
            scratch: Scratch::new(n),
            nfe: std::cell::Cell::new(0),
        }
    }

    /// The underlying mechanism.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mech
    }

    /// `{T, Y₁..Y_{N−1}}` from `(T, Y_full)`.
    pub fn pack_state(&self, t: f64, y: &[f64]) -> Vec<f64> {
        let n = self.mech.n_species();
        let mut state = Vec::with_capacity(n);
        state.push(t);
        state.extend_from_slice(&y[..n - 1]);
        state
    }

    /// `(T, Y_full)` from the packed state.
    pub fn unpack_state(&self, state: &[f64]) -> (f64, Vec<f64>) {
        let n = self.mech.n_species();
        let t = state[0];
        let mut y = Vec::with_capacity(n);
        y.extend_from_slice(&state[1..n]);
        y.push(1.0 - y.iter().sum::<f64>());
        (t, y)
    }
}

impl OdeSystem for ConstantPressureKinetics {
    fn dim(&self) -> usize {
        self.mech.n_species() // T plus N-1 species
    }

    fn rhs(&self, _time: f64, state: &[f64], dstate: &mut [f64]) {
        self.nfe.set(self.nfe.get() + 1);
        let n = self.mech.n_species();
        let mut s = self.scratch.borrow_mut();
        let Scratch { y_full, c, wdot } = &mut *s;
        let temp = state[0].max(200.0);
        let mut bulk = 1.0;
        for i in 0..n - 1 {
            y_full[i] = state[1 + i];
            bulk -= state[1 + i];
        }
        y_full[n - 1] = bulk;
        let mix = Mixture::new(&self.mech.species);
        let rho = mix.density(temp, self.pressure, y_full);
        mix.concentrations(rho, y_full, c);
        self.mech.production_rates(temp, c, wdot);

        let mut sum_h_wdot = 0.0;
        for i in 0..n {
            let w = self.mech.species[i].molar_mass;
            if i < n - 1 {
                dstate[1 + i] = wdot[i] * w / rho;
            }
            sum_h_wdot += self.mech.species[i].h_molar(temp) * wdot[i];
        }
        let cp = mix.cp_mass(temp, y_full);
        dstate[0] = -sum_h_wdot / (rho * cp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{h2_air_19, stoichiometric_h2_air};
    use crate::thermo::P_ATM;
    use cca_solvers::{Bdf, BdfConfig};

    fn ignition_setup() -> (ConstantVolumeIgnition, Vec<f64>) {
        let mech = h2_air_19();
        let y0 = stoichiometric_h2_air();
        let sys = ConstantVolumeIgnition::new(mech, 1000.0, P_ATM, &y0);
        let state = sys.pack_state(1000.0, &y0, P_ATM);
        (sys, state)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (sys, state) = ignition_setup();
        let (t, y, p) = sys.unpack_state(&state);
        assert_eq!(t, 1000.0);
        assert_eq!(p, P_ATM);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn initial_rhs_is_finite_and_warming() {
        let (sys, state) = ignition_setup();
        let mut d = vec![0.0; sys.dim()];
        sys.rhs(0.0, &state, &mut d);
        assert!(d.iter().all(|v| v.is_finite()));
        // With zero initial radicals the only live channel is the
        // (endothermic) H2 + M dissociation: the very first dT/dt is tiny
        // and slightly negative; ignition develops only after the radical
        // pool builds. Assert the magnitude is in the induction regime.
        assert!(d[0].abs() < 10.0, "dT/dt = {}", d[0]);
        // Radical production has started: H atoms are being created.
        assert!(d[1 + crate::mechanisms::idx::H] > 0.0);
        assert_eq!(sys.nfe.get(), 1);
    }

    /// The headline 0D result (paper §4.1): stoichiometric H2-air at
    /// 1000 K, 1 atm, constant volume, integrated to 1 ms — the mixture
    /// ignites (T rises by thousands of kelvin, H2 is consumed, pressure
    /// roughly triples).
    #[test]
    fn zero_d_ignition_within_one_millisecond() {
        let (sys, mut state) = ignition_setup();
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-8,
            atol: 1e-14,
            ..BdfConfig::default()
        });
        bdf.integrate(&sys, 0.0, 1.0e-3, &mut state).unwrap();
        let (t_final, y, p_final) = sys.unpack_state(&state);
        assert!(
            t_final > 2500.0 && t_final < 3800.0,
            "final T = {t_final} K"
        );
        assert!(p_final > 2.0 * P_ATM, "final P = {p_final}");
        // H2 mostly consumed.
        assert!(y[crate::mechanisms::idx::H2] < 0.01);
        // Mass fractions remain physical.
        for (i, yi) in y.iter().enumerate() {
            assert!((-1e-9..=1.0 + 1e-9).contains(yi), "Y[{i}] = {yi}");
        }
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_pressure_ignition_matches_physics() {
        let mech = h2_air_19();
        let y0 = stoichiometric_h2_air();
        let sys = ConstantPressureKinetics::new(mech, P_ATM);
        let mut state = sys.pack_state(1100.0, &y0);
        let bdf = Bdf::new(BdfConfig {
            rtol: 1e-8,
            atol: 1e-14,
            ..BdfConfig::default()
        });
        bdf.integrate(&sys, 0.0, 1.0e-3, &mut state).unwrap();
        let (t_final, y) = sys.unpack_state(&state);
        // Adiabatic constant-pressure flame temperature of stoichiometric
        // H2-air from ~1100 K initial is ~2600-3000 K.
        assert!(t_final > 2300.0 && t_final < 3300.0, "T = {t_final}");
        assert!(y[crate::mechanisms::idx::H2O] > 0.15, "Y_H2O = {}", y[5]);
    }

    #[test]
    fn cold_mixture_is_inert() {
        let mech = h2_air_19();
        let y0 = stoichiometric_h2_air();
        let sys = ConstantVolumeIgnition::new(mech, 300.0, P_ATM, &y0);
        let state = sys.pack_state(300.0, &y0, P_ATM);
        let mut d = vec![0.0; sys.dim()];
        sys.rhs(0.0, &state, &mut d);
        // At room temperature nothing measurable happens on any timescale
        // we integrate: |dT/dt| far below 1 K/s.
        assert!(d[0].abs() < 1.0, "dT/dt = {}", d[0]);
    }
}
