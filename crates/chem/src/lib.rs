//! `cca-chem` — the thermochemistry substrate: the reproduction of the
//! CHEMKIN-style Fortran 77 libraries the paper wraps into its
//! `ThermoChemistry` component.
//!
//! Contents:
//!
//! * [`thermo`] — NASA-7 polynomial thermodynamics (cp, h, s per species,
//!   mixture properties, ideal-gas relations);
//! * [`kinetics`] — elementary-reaction kinetics: modified Arrhenius
//!   forward rates, reverse rates from equilibrium constants (detailed
//!   balance), third-body enhancements, and net molar production rates;
//! * [`mechanisms`] — the H₂–air mechanism with **9 species and 19
//!   reversible reactions** (Yetter/Mueller lineage, paper §4.1) and the
//!   reduced **8-species / 5-reaction** variant used for the Table 4
//!   serial-overhead study;
//! * [`systems`] — ready-made ODE systems: constant-volume ignition (the
//!   0D problem, rigid walls, with the pressure evolution the paper's
//!   `dPdt` component computes) and constant-pressure reaction (the point
//!   chemistry of the 2D reaction–diffusion flame).
//!
//! Units are SI-kmol throughout: kg, m, s, K, kmol; the universal gas
//! constant is `R = 8314.46 J/(kmol·K)`. Literature Arrhenius constants in
//! cm³-mol units are converted at mechanism-construction time.

pub mod kinetics;
pub mod mechanisms;
pub mod systems;
pub mod thermo;

pub use kinetics::{Mechanism, Reaction};
pub use mechanisms::{h2_air_19, h2_air_reduced_5};
pub use systems::{ConstantPressureKinetics, ConstantVolumeIgnition};
pub use thermo::{Species, RU};
