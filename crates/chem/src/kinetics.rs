//! Elementary-reaction kinetics: modified Arrhenius forward rates, reverse
//! rates from detailed balance, optional third bodies, net production
//! rates. The number-crunching core behind the `ThermoChemistry`
//! component's *RHS Evaluator* port.

use crate::thermo::{Species, P_ATM, RU};

/// 1 cal/mol in J/kmol — CHEMKIN activation energies are cal/mol.
const CAL_PER_MOL: f64 = 4.184e3;

/// An elementary (possibly reversible) reaction.
#[derive(Clone, Debug, PartialEq)]
pub struct Reaction {
    /// Human-readable equation, e.g. `"H+O2=O+OH"`.
    pub equation: &'static str,
    /// `(species index, stoichiometric coefficient)` of reactants.
    pub reactants: Vec<(usize, f64)>,
    /// `(species index, stoichiometric coefficient)` of products.
    pub products: Vec<(usize, f64)>,
    /// Pre-exponential factor in SI-kmol units (converted on construction).
    pub a: f64,
    /// Temperature exponent.
    pub n: f64,
    /// Activation energy, J/kmol.
    pub ea: f64,
    /// Reversible (reverse rate from the equilibrium constant)?
    pub reversible: bool,
    /// Third-body collision partners: `Some((default efficiency,
    /// overrides))`; `None` for a plain bimolecular reaction.
    pub third_body: Option<(f64, Vec<(usize, f64)>)>,
}

impl Reaction {
    /// Construct from CHEMKIN-style literature units: `a_cgs` in
    /// (cm³/mol)^(order−1)/s, `ea_cal` in cal/mol. `order` is the molecular
    /// order of the forward reaction *including* any third body.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cgs(
        equation: &'static str,
        reactants: Vec<(usize, f64)>,
        products: Vec<(usize, f64)>,
        a_cgs: f64,
        n: f64,
        ea_cal: f64,
        reversible: bool,
        third_body: Option<(f64, Vec<(usize, f64)>)>,
    ) -> Self {
        let mut order: f64 = reactants.iter().map(|(_, nu)| nu).sum();
        if third_body.is_some() {
            order += 1.0;
        }
        // cm³/mol -> m³/kmol is a factor 1e-3 per reaction-order above 1.
        let a = a_cgs * 1.0e-3f64.powf(order - 1.0);
        Reaction {
            equation,
            reactants,
            products,
            a,
            n,
            ea: ea_cal * CAL_PER_MOL,
            reversible,
            third_body,
        }
    }

    /// Forward rate constant at `t` (SI-kmol units).
    pub fn kf(&self, t: f64) -> f64 {
        self.a * t.powf(self.n) * (-self.ea / (RU * t)).exp()
    }

    /// Net stoichiometry change Δν (products − reactants), for the
    /// pressure factor of the equilibrium constant.
    pub fn delta_nu(&self) -> f64 {
        let p: f64 = self.products.iter().map(|(_, nu)| nu).sum();
        let r: f64 = self.reactants.iter().map(|(_, nu)| nu).sum();
        p - r
    }

    /// Concentration-based equilibrium constant `Kc` at `t` from the
    /// species thermodynamics (detailed balance).
    pub fn kc(&self, t: f64, species: &[Species]) -> f64 {
        let mut ds_over_r = 0.0;
        let mut dh_over_rt = 0.0;
        for &(i, nu) in &self.products {
            ds_over_r += nu * species[i].s_over_r(t);
            dh_over_rt += nu * species[i].h_over_rt(t);
        }
        for &(i, nu) in &self.reactants {
            ds_over_r -= nu * species[i].s_over_r(t);
            dh_over_rt -= nu * species[i].h_over_rt(t);
        }
        let kp = (ds_over_r - dh_over_rt).exp();
        kp * (P_ATM / (RU * t)).powf(self.delta_nu())
    }
}

/// A reaction mechanism: species table + reaction list.
#[derive(Clone, Debug)]
pub struct Mechanism {
    /// The species, in index order.
    pub species: Vec<Species>,
    /// The elementary reactions.
    pub reactions: Vec<Reaction>,
}

impl Mechanism {
    /// Number of species.
    pub fn n_species(&self) -> usize {
        self.species.len()
    }

    /// Index of a species by name.
    pub fn species_index(&self, name: &str) -> Option<usize> {
        self.species.iter().position(|s| s.name == name)
    }

    /// Net molar production rates `ω̇` (kmol/m³/s) from temperature and
    /// concentrations `c` (kmol/m³). `wdot` is fully overwritten.
    pub fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        debug_assert_eq!(c.len(), self.n_species());
        debug_assert_eq!(wdot.len(), self.n_species());
        wdot.fill(0.0);
        for r in &self.reactions {
            let kf = r.kf(t);
            // Forward progress.
            let mut qf = kf;
            for &(i, nu) in &r.reactants {
                qf *= pow_nu(c[i], nu);
            }
            // Reverse progress via detailed balance.
            let mut qr = 0.0;
            if r.reversible {
                let kc = r.kc(t, &self.species);
                if kc > 0.0 && kc.is_finite() {
                    let kr = kf / kc;
                    qr = kr;
                    for &(i, nu) in &r.products {
                        qr *= pow_nu(c[i], nu);
                    }
                }
            }
            let mut q = qf - qr;
            // Third-body enhancement.
            if let Some((default_eff, overrides)) = &r.third_body {
                let mut m = 0.0;
                'species: for (i, ci) in c.iter().enumerate() {
                    for &(j, eff) in overrides {
                        if j == i {
                            m += eff * ci;
                            continue 'species;
                        }
                    }
                    m += default_eff * ci;
                }
                q *= m;
            }
            for &(i, nu) in &r.reactants {
                wdot[i] -= nu * q;
            }
            for &(i, nu) in &r.products {
                wdot[i] += nu * q;
            }
        }
    }

    /// Verify element balance of every reaction against an element
    /// composition table `composition[species][element]`. Returns the
    /// offending equation on failure — used by tests and by mechanism
    /// constructors in debug builds.
    pub fn check_element_balance(&self, composition: &[Vec<f64>]) -> Result<(), String> {
        let n_elem = composition.first().map(|c| c.len()).unwrap_or(0);
        for r in &self.reactions {
            let mut net = vec![0.0; n_elem];
            for &(i, nu) in &r.products {
                for (ne, ci) in net.iter_mut().zip(&composition[i]) {
                    *ne += nu * ci;
                }
            }
            for &(i, nu) in &r.reactants {
                for (ne, ci) in net.iter_mut().zip(&composition[i]) {
                    *ne -= nu * ci;
                }
            }
            if let Some((e, bad)) = net.iter().enumerate().find(|(_, v)| v.abs() > 1e-10) {
                return Err(format!(
                    "reaction '{}' unbalanced in element {e}: net {bad}",
                    r.equation
                ));
            }
        }
        Ok(())
    }
}

/// `c^nu` specialised for the overwhelmingly common integer exponents.
#[inline]
fn pow_nu(c: f64, nu: f64) -> f64 {
    if nu == 1.0 {
        c
    } else if nu == 2.0 {
        c * c
    } else {
        c.max(0.0).powf(nu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{h2_air_19, h2_composition};

    #[test]
    fn arrhenius_increases_with_temperature_for_positive_ea() {
        let mech = h2_air_19();
        let r = &mech.reactions[0]; // H+O2=O+OH, Ea ~ 16.44 kcal
        assert!(r.kf(1500.0) > r.kf(1000.0));
        assert!(r.kf(1000.0) > 0.0);
    }

    #[test]
    fn all_19_reactions_balance_elements() {
        let mech = h2_air_19();
        mech.check_element_balance(&h2_composition(&mech)).unwrap();
    }

    #[test]
    fn chain_branching_equilibrium_shifts_with_temperature() {
        // H+O2=O+OH is endothermic (~16-17 kcal/mol): Kc grows with T.
        let mech = h2_air_19();
        let r = &mech.reactions[0];
        let kc_low = r.kc(1000.0, &mech.species);
        let kc_high = r.kc(2500.0, &mech.species);
        assert!(kc_high > kc_low, "Kc: {kc_low} -> {kc_high}");
    }

    #[test]
    fn recombination_kc_has_pressure_dimension() {
        // H2+M=2H+M has delta_nu = +1 (excluding M).
        let mech = h2_air_19();
        let r = mech
            .reactions
            .iter()
            .find(|r| r.equation.contains("H2+M"))
            .unwrap();
        assert_eq!(r.delta_nu(), 1.0);
        // Dissociation at 1000 K is vanishingly small.
        assert!(r.kc(1000.0, &mech.species) < 1e-10);
    }

    #[test]
    fn production_rates_conserve_mass() {
        // Σ ω̇_i W_i = 0 for any state (element conservation implies mass).
        let mech = h2_air_19();
        let n = mech.n_species();
        let mut c = vec![1e-3; n];
        c[0] = 5e-3;
        c[3] = 2e-4;
        let mut wdot = vec![0.0; n];
        for t in [800.0, 1200.0, 2000.0, 3000.0] {
            mech.production_rates(t, &c, &mut wdot);
            let mass_rate: f64 = wdot
                .iter()
                .zip(&mech.species)
                .map(|(w, s)| w * s.molar_mass)
                .sum();
            let scale: f64 = wdot
                .iter()
                .zip(&mech.species)
                .map(|(w, s)| (w * s.molar_mass).abs())
                .sum::<f64>()
                .max(1e-300);
            assert!(
                (mass_rate / scale).abs() < 1e-10,
                "T={t}: mass rate {mass_rate:e} vs scale {scale:e}"
            );
        }
    }

    #[test]
    fn inert_n2_never_produced() {
        let mech = h2_air_19();
        let i_n2 = mech.species_index("N2").unwrap();
        let n = mech.n_species();
        let c = vec![2e-3; n];
        let mut wdot = vec![0.0; n];
        mech.production_rates(1500.0, &c, &mut wdot);
        assert_eq!(wdot[i_n2], 0.0);
    }

    #[test]
    fn zero_concentrations_give_zero_rates() {
        let mech = h2_air_19();
        let n = mech.n_species();
        let c = vec![0.0; n];
        let mut wdot = vec![1.0; n];
        mech.production_rates(1500.0, &c, &mut wdot);
        assert!(wdot.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn unit_conversion_bimolecular() {
        // A bimolecular A of 1e14 cm³/mol/s must become 1e11 m³/kmol/s.
        let r = Reaction::from_cgs(
            "X+Y=Z+W",
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 1.0), (3, 1.0)],
            1.0e14,
            0.0,
            0.0,
            false,
            None,
        );
        assert!((r.a - 1.0e11).abs() < 1e-3 * 1.0e11);
        // Termolecular (2 reactants + M): 1e16 cm⁶/mol²/s -> 1e10 m⁶/kmol²/s.
        let r3 = Reaction::from_cgs(
            "X+Y+M=Z+M",
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 1.0)],
            1.0e16,
            0.0,
            0.0,
            false,
            Some((1.0, vec![])),
        );
        assert!((r3.a - 1.0e10).abs() < 1e-3 * 1.0e10);
    }
}
