//! Elementary-reaction kinetics: modified Arrhenius forward rates, reverse
//! rates from detailed balance, optional third bodies, net production
//! rates. The number-crunching core behind the `ThermoChemistry`
//! component's *RHS Evaluator* port.

use crate::thermo::{Species, P_ATM, RU};
use cca_core::scratch;
use std::sync::OnceLock;

/// 1 cal/mol in J/kmol — CHEMKIN activation energies are cal/mol.
const CAL_PER_MOL: f64 = 4.184e3;

/// An elementary (possibly reversible) reaction.
#[derive(Clone, Debug, PartialEq)]
pub struct Reaction {
    /// Human-readable equation, e.g. `"H+O2=O+OH"`.
    pub equation: &'static str,
    /// `(species index, stoichiometric coefficient)` of reactants.
    pub reactants: Vec<(usize, f64)>,
    /// `(species index, stoichiometric coefficient)` of products.
    pub products: Vec<(usize, f64)>,
    /// Pre-exponential factor in SI-kmol units (converted on construction).
    pub a: f64,
    /// Temperature exponent.
    pub n: f64,
    /// Activation energy, J/kmol.
    pub ea: f64,
    /// Reversible (reverse rate from the equilibrium constant)?
    pub reversible: bool,
    /// Third-body collision partners: `Some((default efficiency,
    /// overrides))`; `None` for a plain bimolecular reaction.
    pub third_body: Option<(f64, Vec<(usize, f64)>)>,
}

impl Reaction {
    /// Construct from CHEMKIN-style literature units: `a_cgs` in
    /// (cm³/mol)^(order−1)/s, `ea_cal` in cal/mol. `order` is the molecular
    /// order of the forward reaction *including* any third body.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cgs(
        equation: &'static str,
        reactants: Vec<(usize, f64)>,
        products: Vec<(usize, f64)>,
        a_cgs: f64,
        n: f64,
        ea_cal: f64,
        reversible: bool,
        third_body: Option<(f64, Vec<(usize, f64)>)>,
    ) -> Self {
        let mut order: f64 = reactants.iter().map(|(_, nu)| nu).sum();
        if third_body.is_some() {
            order += 1.0;
        }
        // cm³/mol -> m³/kmol is a factor 1e-3 per reaction-order above 1.
        let a = a_cgs * 1.0e-3f64.powf(order - 1.0);
        Reaction {
            equation,
            reactants,
            products,
            a,
            n,
            ea: ea_cal * CAL_PER_MOL,
            reversible,
            third_body,
        }
    }

    /// Forward rate constant at `t` (SI-kmol units).
    pub fn kf(&self, t: f64) -> f64 {
        self.a * t.powf(self.n) * (-self.ea / (RU * t)).exp()
    }

    /// Net stoichiometry change Δν (products − reactants), for the
    /// pressure factor of the equilibrium constant.
    pub fn delta_nu(&self) -> f64 {
        let p: f64 = self.products.iter().map(|(_, nu)| nu).sum();
        let r: f64 = self.reactants.iter().map(|(_, nu)| nu).sum();
        p - r
    }

    /// Concentration-based equilibrium constant `Kc` at `t` from the
    /// species thermodynamics (detailed balance).
    pub fn kc(&self, t: f64, species: &[Species]) -> f64 {
        let mut ds_over_r = 0.0;
        let mut dh_over_rt = 0.0;
        for &(i, nu) in &self.products {
            ds_over_r += nu * species[i].s_over_r(t);
            dh_over_rt += nu * species[i].h_over_rt(t);
        }
        for &(i, nu) in &self.reactants {
            ds_over_r -= nu * species[i].s_over_r(t);
            dh_over_rt -= nu * species[i].h_over_rt(t);
        }
        let kp = (ds_over_r - dh_over_rt).exp();
        kp * (P_ATM / (RU * t)).powf(self.delta_nu())
    }
}

/// A reaction mechanism: species table + reaction list.
///
/// Construct with [`Mechanism::new`]. The public `species`/`reactions`
/// fields are the mechanism *definition*; the first call to
/// [`Mechanism::production_rates`] (or [`Mechanism::rate_table`]) freezes
/// them into a SoA [`RateTable`], so they must not be mutated afterwards.
#[derive(Clone, Debug)]
pub struct Mechanism {
    /// The species, in index order.
    pub species: Vec<Species>,
    /// The elementary reactions.
    pub reactions: Vec<Reaction>,
    /// Lazily built SoA evaluation tables (shared by clone at clone time).
    table: OnceLock<RateTable>,
}

/// Precomputed structure-of-arrays view of a [`Mechanism`] for the hot
/// production-rate loop. Everything that is a pure function of the
/// mechanism (Arrhenius coefficients, CSR stoichiometry with integer-ν
/// class tags, per-reaction `Δν`, *full* third-body efficiency rows) is
/// computed once here; everything that is a pure function of temperature
/// (the per-species `s/R` and `h/RT` tables behind the equilibrium
/// constants) is hoisted to once per call rather than once per reaction.
///
/// The table stores `A`, `n`, `Ea` verbatim and evaluates the *same*
/// floating-point expression as [`Reaction::kf`]/[`Reaction::kc`] in the
/// same order — a `ln A + n·ln T` reformulation would round differently,
/// and bit-identity with the scalar path is a hard requirement (the
/// executor's determinism tests and the frozen NFE counters both pin it).
#[derive(Clone, Debug, Default)]
pub struct RateTable {
    /// Species count (row width of `eff`).
    n_species: usize,
    /// Arrhenius pre-exponential per reaction (SI-kmol units).
    a: Vec<f64>,
    /// Temperature exponent per reaction.
    n: Vec<f64>,
    /// Activation energy per reaction, J/kmol.
    ea: Vec<f64>,
    /// CSR row offsets into the reactant arrays (length `nr + 1`).
    react_off: Vec<usize>,
    /// Reactant species indices, all reactions concatenated.
    react_idx: Vec<usize>,
    /// Reactant stoichiometric coefficients.
    react_nu: Vec<f64>,
    /// Fast-path class of `react_nu`: 1, 2, or 0 (generic `powf`).
    react_nu_class: Vec<u8>,
    /// CSR row offsets into the product arrays (length `nr + 1`).
    prod_off: Vec<usize>,
    /// Product species indices.
    prod_idx: Vec<usize>,
    /// Product stoichiometric coefficients.
    prod_nu: Vec<f64>,
    /// Fast-path class of `prod_nu`.
    prod_nu_class: Vec<u8>,
    /// Δν (products − reactants) per reaction.
    delta_nu: Vec<f64>,
    /// Reversibility flag per reaction.
    reversible: Vec<bool>,
    /// Does any reaction need the per-temperature thermo tables?
    any_reversible: bool,
    /// Row index into `eff` per reaction, or `usize::MAX` for no third
    /// body.
    third_row: Vec<usize>,
    /// Dense third-body efficiency rows, `eff[row * n_species + i]`
    /// (default efficiency with overrides applied).
    eff: Vec<f64>,
}

impl RateTable {
    /// Build the tables from a mechanism definition.
    fn build(species: &[Species], reactions: &[Reaction]) -> Self {
        let ns = species.len();
        let nr = reactions.len();
        let mut t = RateTable {
            n_species: ns,
            react_off: vec![0],
            prod_off: vec![0],
            ..RateTable::default()
        };
        let class_of = |nu: f64| -> u8 {
            if nu == 1.0 {
                1
            } else if nu == 2.0 {
                2
            } else {
                0
            }
        };
        for r in reactions {
            t.a.push(r.a);
            t.n.push(r.n);
            t.ea.push(r.ea);
            for &(i, nu) in &r.reactants {
                t.react_idx.push(i);
                t.react_nu.push(nu);
                t.react_nu_class.push(class_of(nu));
            }
            t.react_off.push(t.react_idx.len());
            for &(i, nu) in &r.products {
                t.prod_idx.push(i);
                t.prod_nu.push(nu);
                t.prod_nu_class.push(class_of(nu));
            }
            t.prod_off.push(t.prod_idx.len());
            t.delta_nu.push(r.delta_nu());
            t.reversible.push(r.reversible);
            t.any_reversible |= r.reversible;
            match &r.third_body {
                Some((default_eff, overrides)) => {
                    let row = t.eff.len() / ns.max(1);
                    t.third_row.push(row);
                    let start = t.eff.len();
                    t.eff.resize(start + ns, *default_eff);
                    for &(j, e) in overrides {
                        t.eff[start + j] = e;
                    }
                }
                None => t.third_row.push(usize::MAX),
            }
        }
        debug_assert_eq!(t.a.len(), nr);
        t
    }

    /// Net molar production rates; the hot loop behind
    /// [`Mechanism::production_rates`]. One branch-light sweep over all
    /// reactions against the CSR stoichiometry, with the per-temperature
    /// `s/R` and `h/RT` species tables computed once up front (from
    /// thread-local scratch — zero steady-state allocations).
    pub fn production_rates(&self, species: &[Species], t: f64, c: &[f64], wdot: &mut [f64]) {
        let ns = self.n_species;
        debug_assert_eq!(c.len(), ns);
        debug_assert_eq!(wdot.len(), ns);
        wdot.fill(0.0);
        let rut = RU * t;
        // Equilibrium-constant ingredients hoisted per temperature: the
        // scalar path recomputed s/R and h/RT per (reaction, species)
        // mention; here each species is evaluated exactly once.
        let mut s_over_r = scratch::take_f64(if self.any_reversible { ns } else { 0 });
        let mut h_over_rt = scratch::take_f64(s_over_r.len());
        if self.any_reversible {
            for (i, sp) in species.iter().enumerate() {
                s_over_r[i] = sp.s_over_r(t);
                h_over_rt[i] = sp.h_over_rt(t);
            }
        }
        let pfac = P_ATM / rut;

        // One zipped sweep over the per-reaction arrays with the CSR rows
        // hoisted to sub-slices — bounds checks leave the inner loops, the
        // arithmetic (and thus the result bits) matches the scalar path.
        let rates = self.a.iter().zip(&self.n).zip(&self.ea);
        let shape = self
            .react_off
            .windows(2)
            .zip(self.prod_off.windows(2))
            .zip(&self.reversible)
            .zip(&self.delta_nu)
            .zip(&self.third_row);
        for (((&a, &n), &ea), ((((ro, po), &rev), &dnu), &row)) in rates.zip(shape) {
            let kf = a * t.powf(n) * (-ea / rut).exp();
            let (r0, r1) = (ro[0], ro[1]);
            let (p0, p1) = (po[0], po[1]);
            let ridx = &self.react_idx[r0..r1];
            let rnu = &self.react_nu[r0..r1];
            let rcl = &self.react_nu_class[r0..r1];
            let pidx = &self.prod_idx[p0..p1];
            let pnu = &self.prod_nu[p0..p1];
            let pcl = &self.prod_nu_class[p0..p1];
            // Forward progress.
            let mut qf = kf;
            for ((&i, &nu), &cl) in ridx.iter().zip(rnu).zip(rcl) {
                qf *= pow_nu_class(c[i], nu, cl);
            }
            // Reverse progress via detailed balance.
            let mut qr = 0.0;
            if rev {
                let mut ds_over_r = 0.0;
                let mut dh_over_rt = 0.0;
                for (&i, &nu) in pidx.iter().zip(pnu) {
                    ds_over_r += nu * s_over_r[i];
                    dh_over_rt += nu * h_over_rt[i];
                }
                for (&i, &nu) in ridx.iter().zip(rnu) {
                    ds_over_r -= nu * s_over_r[i];
                    dh_over_rt -= nu * h_over_rt[i];
                }
                let kp = (ds_over_r - dh_over_rt).exp();
                let kc = kp * pfac.powf(dnu);
                if kc > 0.0 && kc.is_finite() {
                    let kr = kf / kc;
                    qr = kr;
                    for ((&i, &nu), &cl) in pidx.iter().zip(pnu).zip(pcl) {
                        qr *= pow_nu_class(c[i], nu, cl);
                    }
                }
            }
            let mut q = qf - qr;
            // Third-body enhancement: one dense dot product against the
            // precomputed efficiency row (same summation order as the
            // scalar override scan).
            if row != usize::MAX {
                let effs = &self.eff[row * ns..(row + 1) * ns];
                let mut m = 0.0;
                for (e, ci) in effs.iter().zip(c) {
                    m += e * ci;
                }
                q *= m;
            }
            for (&i, &nu) in ridx.iter().zip(rnu) {
                wdot[i] -= nu * q;
            }
            for (&i, &nu) in pidx.iter().zip(pnu) {
                wdot[i] += nu * q;
            }
        }
    }
}

impl Mechanism {
    /// New mechanism from a species table and reaction list.
    pub fn new(species: Vec<Species>, reactions: Vec<Reaction>) -> Self {
        Mechanism {
            species,
            reactions,
            table: OnceLock::new(),
        }
    }

    /// Number of species.
    pub fn n_species(&self) -> usize {
        self.species.len()
    }

    /// Index of a species by name.
    pub fn species_index(&self, name: &str) -> Option<usize> {
        self.species.iter().position(|s| s.name == name)
    }

    /// The SoA evaluation tables, built on first use.
    pub fn rate_table(&self) -> &RateTable {
        self.table
            .get_or_init(|| RateTable::build(&self.species, &self.reactions))
    }

    /// Net molar production rates `ω̇` (kmol/m³/s) from temperature and
    /// concentrations `c` (kmol/m³). `wdot` is fully overwritten.
    ///
    /// Evaluates through the precomputed [`RateTable`] — bit-identical to
    /// the per-[`Reaction`] scalar formulation (pinned by tests), with the
    /// equilibrium-constant thermo tables hoisted per temperature.
    pub fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        self.rate_table()
            .production_rates(&self.species, t, c, wdot);
    }

    /// Verify element balance of every reaction against an element
    /// composition table `composition[species][element]`. Returns the
    /// offending equation on failure — used by tests and by mechanism
    /// constructors in debug builds.
    pub fn check_element_balance(&self, composition: &[Vec<f64>]) -> Result<(), String> {
        let n_elem = composition.first().map(|c| c.len()).unwrap_or(0);
        for r in &self.reactions {
            let mut net = vec![0.0; n_elem];
            for &(i, nu) in &r.products {
                for (ne, ci) in net.iter_mut().zip(&composition[i]) {
                    *ne += nu * ci;
                }
            }
            for &(i, nu) in &r.reactants {
                for (ne, ci) in net.iter_mut().zip(&composition[i]) {
                    *ne -= nu * ci;
                }
            }
            if let Some((e, bad)) = net.iter().enumerate().find(|(_, v)| v.abs() > 1e-10) {
                return Err(format!(
                    "reaction '{}' unbalanced in element {e}: net {bad}",
                    r.equation
                ));
            }
        }
        Ok(())
    }
}

/// `c^nu` specialised for the overwhelmingly common integer exponents.
/// Production code goes through [`pow_nu_class`]; this form survives as
/// the reference the bit-identity test re-derives rates with.
#[cfg(test)]
#[inline]
fn pow_nu(c: f64, nu: f64) -> f64 {
    if nu == 1.0 {
        c
    } else if nu == 2.0 {
        c * c
    } else {
        c.max(0.0).powf(nu)
    }
}

/// [`pow_nu`] with the exponent class pre-resolved at table-build time:
/// the float comparisons leave the hot loop, the arithmetic (and thus the
/// result bits) stay identical.
#[inline]
fn pow_nu_class(c: f64, nu: f64, class: u8) -> f64 {
    match class {
        1 => c,
        2 => c * c,
        _ => c.max(0.0).powf(nu),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{h2_air_19, h2_air_reduced_5, h2_composition};

    /// The scalar per-[`Reaction`] formulation the [`RateTable`] replaced,
    /// kept verbatim as the bit-identity reference.
    fn production_rates_reference(mech: &Mechanism, t: f64, c: &[f64], wdot: &mut [f64]) {
        wdot.fill(0.0);
        for r in &mech.reactions {
            let kf = r.kf(t);
            let mut qf = kf;
            for &(i, nu) in &r.reactants {
                qf *= pow_nu(c[i], nu);
            }
            let mut qr = 0.0;
            if r.reversible {
                let kc = r.kc(t, &mech.species);
                if kc > 0.0 && kc.is_finite() {
                    let kr = kf / kc;
                    qr = kr;
                    for &(i, nu) in &r.products {
                        qr *= pow_nu(c[i], nu);
                    }
                }
            }
            let mut q = qf - qr;
            if let Some((default_eff, overrides)) = &r.third_body {
                let mut m = 0.0;
                'species: for (i, ci) in c.iter().enumerate() {
                    for &(j, eff) in overrides {
                        if j == i {
                            m += eff * ci;
                            continue 'species;
                        }
                    }
                    m += default_eff * ci;
                }
                q *= m;
            }
            for &(i, nu) in &r.reactants {
                wdot[i] -= nu * q;
            }
            for &(i, nu) in &r.products {
                wdot[i] += nu * q;
            }
        }
    }

    #[test]
    fn rate_table_is_bit_identical_to_scalar_path() {
        for mech in [h2_air_19(), h2_air_reduced_5()] {
            let n = mech.n_species();
            let mut wdot_table = vec![0.0; n];
            let mut wdot_ref = vec![0.0; n];
            for (case, t) in [600.0, 1000.0, 1500.0, 2200.0, 3000.0]
                .into_iter()
                .enumerate()
            {
                // A deterministic, uneven composition (some species tiny,
                // one negative to exercise the powf clamp).
                let mut c: Vec<f64> = (0..n)
                    .map(|i| 1e-4 * ((i + 2 * case + 1) as f64).sqrt())
                    .collect();
                c[case % n] = -1e-9;
                c[(case + 1) % n] = 7.7e-2;
                mech.production_rates(t, &c, &mut wdot_table);
                production_rates_reference(&mech, t, &c, &mut wdot_ref);
                for (i, (a, b)) in wdot_table.iter().zip(&wdot_ref).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "species {i} at T={t}: table {a:e} vs scalar {b:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_rate_table_does_not_allocate() {
        let mech = h2_air_19();
        let n = mech.n_species();
        let c = vec![1e-3; n];
        let mut wdot = vec![0.0; n];
        mech.production_rates(1500.0, &c, &mut wdot); // build table, warm pool
        let before = cca_core::scratch::thread_alloc_events();
        for _ in 0..100 {
            mech.production_rates(1500.0, &c, &mut wdot);
        }
        let after = cca_core::scratch::thread_alloc_events();
        assert_eq!(after, before, "steady-state kinetics must not allocate");
    }

    #[test]
    fn arrhenius_increases_with_temperature_for_positive_ea() {
        let mech = h2_air_19();
        let r = &mech.reactions[0]; // H+O2=O+OH, Ea ~ 16.44 kcal
        assert!(r.kf(1500.0) > r.kf(1000.0));
        assert!(r.kf(1000.0) > 0.0);
    }

    #[test]
    fn all_19_reactions_balance_elements() {
        let mech = h2_air_19();
        mech.check_element_balance(&h2_composition(&mech)).unwrap();
    }

    #[test]
    fn chain_branching_equilibrium_shifts_with_temperature() {
        // H+O2=O+OH is endothermic (~16-17 kcal/mol): Kc grows with T.
        let mech = h2_air_19();
        let r = &mech.reactions[0];
        let kc_low = r.kc(1000.0, &mech.species);
        let kc_high = r.kc(2500.0, &mech.species);
        assert!(kc_high > kc_low, "Kc: {kc_low} -> {kc_high}");
    }

    #[test]
    fn recombination_kc_has_pressure_dimension() {
        // H2+M=2H+M has delta_nu = +1 (excluding M).
        let mech = h2_air_19();
        let r = mech
            .reactions
            .iter()
            .find(|r| r.equation.contains("H2+M"))
            .unwrap();
        assert_eq!(r.delta_nu(), 1.0);
        // Dissociation at 1000 K is vanishingly small.
        assert!(r.kc(1000.0, &mech.species) < 1e-10);
    }

    #[test]
    fn production_rates_conserve_mass() {
        // Σ ω̇_i W_i = 0 for any state (element conservation implies mass).
        let mech = h2_air_19();
        let n = mech.n_species();
        let mut c = vec![1e-3; n];
        c[0] = 5e-3;
        c[3] = 2e-4;
        let mut wdot = vec![0.0; n];
        for t in [800.0, 1200.0, 2000.0, 3000.0] {
            mech.production_rates(t, &c, &mut wdot);
            let mass_rate: f64 = wdot
                .iter()
                .zip(&mech.species)
                .map(|(w, s)| w * s.molar_mass)
                .sum();
            let scale: f64 = wdot
                .iter()
                .zip(&mech.species)
                .map(|(w, s)| (w * s.molar_mass).abs())
                .sum::<f64>()
                .max(1e-300);
            assert!(
                (mass_rate / scale).abs() < 1e-10,
                "T={t}: mass rate {mass_rate:e} vs scale {scale:e}"
            );
        }
    }

    #[test]
    fn inert_n2_never_produced() {
        let mech = h2_air_19();
        let i_n2 = mech.species_index("N2").unwrap();
        let n = mech.n_species();
        let c = vec![2e-3; n];
        let mut wdot = vec![0.0; n];
        mech.production_rates(1500.0, &c, &mut wdot);
        assert_eq!(wdot[i_n2], 0.0);
    }

    #[test]
    fn zero_concentrations_give_zero_rates() {
        let mech = h2_air_19();
        let n = mech.n_species();
        let c = vec![0.0; n];
        let mut wdot = vec![1.0; n];
        mech.production_rates(1500.0, &c, &mut wdot);
        assert!(wdot.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn unit_conversion_bimolecular() {
        // A bimolecular A of 1e14 cm³/mol/s must become 1e11 m³/kmol/s.
        let r = Reaction::from_cgs(
            "X+Y=Z+W",
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 1.0), (3, 1.0)],
            1.0e14,
            0.0,
            0.0,
            false,
            None,
        );
        assert!((r.a - 1.0e11).abs() < 1e-3 * 1.0e11);
        // Termolecular (2 reactants + M): 1e16 cm⁶/mol²/s -> 1e10 m⁶/kmol²/s.
        let r3 = Reaction::from_cgs(
            "X+Y+M=Z+M",
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 1.0)],
            1.0e16,
            0.0,
            0.0,
            false,
            Some((1.0, vec![])),
        );
        assert!((r3.a - 1.0e10).abs() < 1e-3 * 1.0e10);
    }
}
