//! NASA-7 polynomial thermodynamics.
//!
//! Each species carries two 7-coefficient fits (low/high temperature,
//! joined at `t_mid`):
//!
//! ```text
//! cp/R   = a1 + a2 T + a3 T² + a4 T³ + a5 T⁴
//! h/(RT) = a1 + a2/2 T + a3/3 T² + a4/4 T³ + a5/5 T⁴ + a6/T
//! s/R    = a1 ln T + a2 T + a3/2 T² + a4/3 T³ + a5/4 T⁴ + a7
//! ```

/// Universal gas constant, J/(kmol·K).
pub const RU: f64 = 8314.462618;

/// Standard-state pressure for equilibrium constants, Pa.
pub const P_ATM: f64 = 101_325.0;

/// One chemical species with NASA-7 thermodynamic data.
#[derive(Clone, Debug, PartialEq)]
pub struct Species {
    /// CHEMKIN-style name, e.g. `"H2O"`.
    pub name: &'static str,
    /// Molar mass, kg/kmol.
    pub molar_mass: f64,
    /// Coefficients valid below [`Species::t_mid`].
    pub nasa_low: [f64; 7],
    /// Coefficients valid above [`Species::t_mid`].
    pub nasa_high: [f64; 7],
    /// Junction temperature of the two fits, K.
    pub t_mid: f64,
}

impl Species {
    fn coeffs(&self, t: f64) -> &[f64; 7] {
        if t < self.t_mid {
            &self.nasa_low
        } else {
            &self.nasa_high
        }
    }

    /// Dimensionless heat capacity `cp/R` at `t` (K).
    pub fn cp_over_r(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] + t * (a[1] + t * (a[2] + t * (a[3] + t * a[4])))
    }

    /// Dimensionless enthalpy `h/(R T)` at `t` (K), including the heat of
    /// formation.
    pub fn h_over_rt(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] + t * (a[1] / 2.0 + t * (a[2] / 3.0 + t * (a[3] / 4.0 + t * a[4] / 5.0))) + a[5] / t
    }

    /// Dimensionless standard-state entropy `s°/R` at `t` (K).
    pub fn s_over_r(&self, t: f64) -> f64 {
        let a = self.coeffs(t);
        a[0] * t.ln() + t * (a[1] + t * (a[2] / 2.0 + t * (a[3] / 3.0 + t * a[4] / 4.0))) + a[6]
    }

    /// Molar heat capacity, J/(kmol·K).
    pub fn cp_molar(&self, t: f64) -> f64 {
        self.cp_over_r(t) * RU
    }

    /// Molar enthalpy, J/kmol.
    pub fn h_molar(&self, t: f64) -> f64 {
        self.h_over_rt(t) * RU * t
    }

    /// Molar internal energy `u = h − R T`, J/kmol.
    pub fn u_molar(&self, t: f64) -> f64 {
        self.h_molar(t) - RU * t
    }

    /// Mass-specific heat capacity, J/(kg·K).
    pub fn cp_mass(&self, t: f64) -> f64 {
        self.cp_molar(t) / self.molar_mass
    }

    /// Mass-specific enthalpy, J/kg.
    pub fn h_mass(&self, t: f64) -> f64 {
        self.h_molar(t) / self.molar_mass
    }
}

/// Mixture-level helpers over a species table and a mass-fraction vector.
pub struct Mixture<'a> {
    /// The species table.
    pub species: &'a [Species],
}

impl<'a> Mixture<'a> {
    /// New mixture over the given species table.
    pub fn new(species: &'a [Species]) -> Self {
        Mixture { species }
    }

    /// Mean molar mass from mass fractions, kg/kmol.
    pub fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        let inv: f64 = y
            .iter()
            .zip(self.species)
            .map(|(yi, s)| yi / s.molar_mass)
            .sum();
        1.0 / inv
    }

    /// Mixture mass-specific heat capacity at constant pressure, J/(kg·K).
    pub fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        y.iter()
            .zip(self.species)
            .map(|(yi, s)| yi * s.cp_mass(t))
            .sum()
    }

    /// Mixture mass-specific heat capacity at constant volume, J/(kg·K):
    /// `cv = cp − R/W̄`.
    pub fn cv_mass(&self, t: f64, y: &[f64]) -> f64 {
        self.cp_mass(t, y) - RU / self.mean_molar_mass(y)
    }

    /// Ideal-gas density, kg/m³.
    pub fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        p * self.mean_molar_mass(y) / (RU * t)
    }

    /// Ideal-gas pressure, Pa.
    pub fn pressure(&self, t: f64, rho: f64, y: &[f64]) -> f64 {
        rho * RU * t / self.mean_molar_mass(y)
    }

    /// Molar concentrations (kmol/m³) from density and mass fractions.
    pub fn concentrations(&self, rho: f64, y: &[f64], c: &mut [f64]) {
        for ((ci, yi), s) in c.iter_mut().zip(y).zip(self.species) {
            *ci = rho * yi / s.molar_mass;
        }
    }

    /// Mole fractions from mass fractions.
    pub fn mole_fractions(&self, y: &[f64], x: &mut [f64]) {
        let w = self.mean_molar_mass(y);
        for ((xi, yi), s) in x.iter_mut().zip(y).zip(self.species) {
            *xi = yi * w / s.molar_mass;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::h2_air_19;

    fn find(name: &str) -> Species {
        h2_air_19()
            .species
            .iter()
            .find(|s| s.name == name)
            .unwrap()
            .clone()
    }

    #[test]
    fn n2_cp_room_temperature() {
        // N2 cp(300 K) ≈ 29.1 kJ/(kmol·K) -> cp/R ≈ 3.50.
        let n2 = find("N2");
        let cp = n2.cp_over_r(300.0);
        assert!((cp - 3.50).abs() < 0.03, "cp/R = {cp}");
    }

    #[test]
    fn water_heat_of_formation() {
        // h(298.15 K) of H2O = -241.83 MJ/kmol... (kJ/mol) within 1%.
        let h2o = find("H2O");
        let h = h2o.h_molar(298.15);
        assert!(
            (h - (-241.83e6)).abs() < 0.01 * 241.83e6,
            "h = {h:e} J/kmol"
        );
    }

    #[test]
    fn radical_heats_of_formation() {
        // OH: +37.3 kJ/mol (GRI-3.0 value ~ 37.0-39.0); H: +218.0 kJ/mol;
        // O: +249.2 kJ/mol.
        for (name, expect_mj) in [("H", 217.99e6), ("O", 249.17e6)] {
            let s = find(name);
            let h = s.h_molar(298.15);
            assert!(
                (h - expect_mj).abs() < 0.02 * expect_mj,
                "{name}: h = {h:e}"
            );
        }
    }

    #[test]
    fn low_high_fits_are_continuous() {
        for s in h2_air_19().species {
            let t = s.t_mid;
            let below = s.nasa_low;
            let above = s.nasa_high;
            let cp_lo = below[0] + t * (below[1] + t * (below[2] + t * (below[3] + t * below[4])));
            let cp_hi = above[0] + t * (above[1] + t * (above[2] + t * (above[3] + t * above[4])));
            assert!(
                (cp_lo - cp_hi).abs() < 2e-3 * cp_lo.abs(),
                "{}: cp jump {cp_lo} vs {cp_hi}",
                s.name
            );
        }
    }

    #[test]
    fn mixture_molar_mass_of_air() {
        let mech = h2_air_19();
        let mix = Mixture::new(&mech.species);
        let mut y = vec![0.0; mech.species.len()];
        let i_o2 = mech.species_index("O2").unwrap();
        let i_n2 = mech.species_index("N2").unwrap();
        y[i_o2] = 0.233;
        y[i_n2] = 0.767;
        let w = mix.mean_molar_mass(&y);
        assert!((w - 28.85).abs() < 0.1, "W_air = {w}");
        // Density of air at 300 K, 1 atm ≈ 1.177 kg/m³.
        let rho = mix.density(300.0, P_ATM, &y);
        assert!((rho - 1.177).abs() < 0.01, "rho = {rho}");
    }

    #[test]
    fn cp_cv_gamma_of_air() {
        let mech = h2_air_19();
        let mix = Mixture::new(&mech.species);
        let mut y = vec![0.0; mech.species.len()];
        y[mech.species_index("O2").unwrap()] = 0.233;
        y[mech.species_index("N2").unwrap()] = 0.767;
        let gamma = mix.cp_mass(300.0, &y) / mix.cv_mass(300.0, &y);
        assert!((gamma - 1.40).abs() < 0.01, "gamma = {gamma}");
    }

    #[test]
    fn mole_fractions_sum_to_one() {
        let mech = h2_air_19();
        let mix = Mixture::new(&mech.species);
        let n = mech.species.len();
        let y: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let total: f64 = y.iter().sum();
        let y: Vec<f64> = y.iter().map(|v| v / total).collect();
        let mut x = vec![0.0; n];
        mix.mole_fractions(&y, &mut x);
        let s: f64 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_increases_with_temperature() {
        let h2 = find("H2");
        assert!(h2.s_over_r(1500.0) > h2.s_over_r(300.0));
    }
}
