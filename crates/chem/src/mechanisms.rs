//! Concrete mechanisms.
//!
//! * [`h2_air_19`] — hydrogen–air with 9 species and 19 reversible
//!   reactions, the mechanism of the paper's 0D ignition and 2D
//!   reaction–diffusion studies (§4.1–4.2; Yetter/Mueller lineage rate
//!   constants, GRI-3.0 NASA-7 thermodynamic fits).
//! * [`h2_air_reduced_5`] — the deliberately light 8-species, 5-reaction
//!   variant the paper built for the Table 4 serial-overhead experiment
//!   ("we deliberately used a light-weight RHS, so that the virtual
//!   function call would be a larger fraction of the computational time").

use crate::kinetics::{Mechanism, Reaction};
use crate::thermo::Species;

/// Species indices of [`h2_air_19`], in order.
pub mod idx {
    /// H₂ molecular hydrogen.
    pub const H2: usize = 0;
    /// O₂ molecular oxygen.
    pub const O2: usize = 1;
    /// O atomic oxygen.
    pub const O: usize = 2;
    /// OH hydroxyl radical.
    pub const OH: usize = 3;
    /// H atomic hydrogen.
    pub const H: usize = 4;
    /// H₂O water.
    pub const H2O: usize = 5;
    /// HO₂ hydroperoxyl radical.
    pub const HO2: usize = 6;
    /// H₂O₂ hydrogen peroxide.
    pub const H2O2: usize = 7;
    /// N₂ nitrogen (inert bath gas).
    pub const N2: usize = 8;
}

fn species_table() -> Vec<Species> {
    // NASA-7 fits from the GRI-Mech 3.0 thermodynamic database
    // (300-1000 K low range, 1000-3500/5000 K high range).
    vec![
        Species {
            name: "H2",
            molar_mass: 2.016,
            nasa_low: [
                2.34433112e+00, 7.98052075e-03, -1.94781510e-05, 2.01572094e-08, -7.37611761e-12,
                -9.17935173e+02, 6.83010238e-01,
            ],
            nasa_high: [
                3.33727920e+00, -4.94024731e-05, 4.99456778e-07, -1.79566394e-10, 2.00255376e-14,
                -9.50158922e+02, -3.20502331e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "O2",
            molar_mass: 31.998,
            nasa_low: [
                3.78245636e+00, -2.99673416e-03, 9.84730201e-06, -9.68129509e-09, 3.24372837e-12,
                -1.06394356e+03, 3.65767573e+00,
            ],
            nasa_high: [
                3.28253784e+00, 1.48308754e-03, -7.57966669e-07, 2.09470555e-10, -2.16717794e-14,
                -1.08845772e+03, 5.45323129e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "O",
            molar_mass: 15.999,
            nasa_low: [
                3.16826710e+00, -3.27931884e-03, 6.64306396e-06, -6.12806624e-09, 2.11265971e-12,
                2.91222592e+04, 2.05193346e+00,
            ],
            nasa_high: [
                2.56942078e+00, -8.59741137e-05, 4.19484589e-08, -1.00177799e-11, 1.22833691e-15,
                2.92175791e+04, 4.78433864e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "OH",
            molar_mass: 17.007,
            nasa_low: [
                3.99201543e+00, -2.40131752e-03, 4.61793841e-06, -3.88113333e-09, 1.36411470e-12,
                3.61508056e+03, -1.03925458e-01,
            ],
            nasa_high: [
                3.09288767e+00, 5.48429716e-04, 1.26505228e-07, -8.79461556e-11, 1.17412376e-14,
                3.85865700e+03, 4.47669610e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "H",
            molar_mass: 1.008,
            nasa_low: [
                2.50000000e+00, 7.05332819e-13, -1.99591964e-15, 2.30081632e-18, -9.27732332e-22,
                2.54736599e+04, -4.46682853e-01,
            ],
            nasa_high: [
                2.50000001e+00, -2.30842973e-11, 1.61561948e-14, -4.73515235e-18, 4.98197357e-22,
                2.54736599e+04, -4.46682914e-01,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "H2O",
            molar_mass: 18.015,
            nasa_low: [
                4.19864056e+00, -2.03643410e-03, 6.52040211e-06, -5.48797062e-09, 1.77197817e-12,
                -3.02937267e+04, -8.49032208e-01,
            ],
            nasa_high: [
                3.03399249e+00, 2.17691804e-03, -1.64072518e-07, -9.70419870e-11, 1.68200992e-14,
                -3.00042971e+04, 4.96677010e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "HO2",
            molar_mass: 33.006,
            nasa_low: [
                4.30179801e+00, -4.74912051e-03, 2.11582891e-05, -2.42763894e-08, 9.29225124e-12,
                2.94808040e+02, 3.71666245e+00,
            ],
            nasa_high: [
                4.01721090e+00, 2.23982013e-03, -6.33658150e-07, 1.14246370e-10, -1.07908535e-14,
                1.11856713e+02, 3.78510215e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "H2O2",
            molar_mass: 34.014,
            nasa_low: [
                4.27611269e+00, -5.42822417e-04, 1.67335701e-05, -2.15770813e-08, 8.62454363e-12,
                -1.77025821e+04, 3.43505074e+00,
            ],
            nasa_high: [
                4.16500285e+00, 4.90831694e-03, -1.90139225e-06, 3.71185986e-10, -2.87908305e-14,
                -1.78617877e+04, 2.91615662e+00,
            ],
            t_mid: 1000.0,
        },
        Species {
            name: "N2",
            molar_mass: 28.014,
            nasa_low: [
                3.29867700e+00, 1.40824040e-03, -3.96322200e-06, 5.64151500e-09, -2.44485400e-12,
                -1.02089990e+03, 3.95037200e+00,
            ],
            nasa_high: [
                2.92664000e+00, 1.48797680e-03, -5.68476000e-07, 1.00970380e-10, -6.75335100e-15,
                -9.22797700e+02, 5.98052800e+00,
            ],
            t_mid: 1000.0,
        },
    ]
}

/// The 9-species, 19-reversible-reaction H₂–air mechanism (paper §4.1:
/// "We use a H₂–Air mechanism with 9 species and 19 reversible reactions").
/// Rate constants follow the Yetter/Mueller H₂/O₂ mechanism as tabulated in
/// the combustion literature (A in cm³-mol units, Ea in cal/mol, converted
/// internally to SI-kmol).
pub fn h2_air_19() -> Mechanism {
    use idx::*;
    let s = species_table();
    // Enhanced third-body efficiencies shared by the recombination steps.
    let tb = |over: Vec<(usize, f64)>| Some((1.0, over));
    let reactions = vec![
        // --- H2/O2 chain reactions ---
        Reaction::from_cgs(
            "H+O2=O+OH",
            vec![(H, 1.0), (O2, 1.0)],
            vec![(O, 1.0), (OH, 1.0)],
            1.915e14,
            0.0,
            16_440.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "O+H2=H+OH",
            vec![(O, 1.0), (H2, 1.0)],
            vec![(H, 1.0), (OH, 1.0)],
            5.080e04,
            2.67,
            6_290.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "OH+H2=H+H2O",
            vec![(OH, 1.0), (H2, 1.0)],
            vec![(H, 1.0), (H2O, 1.0)],
            2.160e08,
            1.51,
            3_430.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "O+H2O=OH+OH",
            vec![(O, 1.0), (H2O, 1.0)],
            vec![(OH, 2.0)],
            2.970e06,
            2.02,
            13_400.0,
            true,
            None,
        ),
        // --- dissociation / recombination ---
        Reaction::from_cgs(
            "H2+M=H+H+M",
            vec![(H2, 1.0)],
            vec![(H, 2.0)],
            4.577e19,
            -1.40,
            104_380.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        Reaction::from_cgs(
            "O+O+M=O2+M",
            vec![(O, 2.0)],
            vec![(O2, 1.0)],
            6.165e15,
            -0.50,
            0.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        Reaction::from_cgs(
            "O+H+M=OH+M",
            vec![(O, 1.0), (H, 1.0)],
            vec![(OH, 1.0)],
            4.714e18,
            -1.00,
            0.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        Reaction::from_cgs(
            "H+OH+M=H2O+M",
            vec![(H, 1.0), (OH, 1.0)],
            vec![(H2O, 1.0)],
            3.800e22,
            -2.00,
            0.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        // --- HO2 formation and consumption ---
        Reaction::from_cgs(
            "H+O2+M=HO2+M",
            vec![(H, 1.0), (O2, 1.0)],
            vec![(HO2, 1.0)],
            6.170e19,
            -1.42,
            0.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        Reaction::from_cgs(
            "HO2+H=H2+O2",
            vec![(HO2, 1.0), (H, 1.0)],
            vec![(H2, 1.0), (O2, 1.0)],
            1.660e13,
            0.0,
            823.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "HO2+H=OH+OH",
            vec![(HO2, 1.0), (H, 1.0)],
            vec![(OH, 2.0)],
            7.079e13,
            0.0,
            295.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "HO2+O=OH+O2",
            vec![(HO2, 1.0), (O, 1.0)],
            vec![(OH, 1.0), (O2, 1.0)],
            3.250e13,
            0.0,
            0.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "HO2+OH=H2O+O2",
            vec![(HO2, 1.0), (OH, 1.0)],
            vec![(H2O, 1.0), (O2, 1.0)],
            2.890e13,
            0.0,
            -497.0,
            true,
            None,
        ),
        // --- H2O2 chemistry ---
        Reaction::from_cgs(
            "HO2+HO2=H2O2+O2",
            vec![(HO2, 2.0)],
            vec![(H2O2, 1.0), (O2, 1.0)],
            4.200e14,
            0.0,
            11_980.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "H2O2+M=OH+OH+M",
            vec![(H2O2, 1.0)],
            vec![(OH, 2.0)],
            1.202e17,
            0.0,
            45_500.0,
            true,
            tb(vec![(H2, 2.5), (H2O, 12.0)]),
        ),
        Reaction::from_cgs(
            "H2O2+H=H2O+OH",
            vec![(H2O2, 1.0), (H, 1.0)],
            vec![(H2O, 1.0), (OH, 1.0)],
            2.410e13,
            0.0,
            3_970.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "H2O2+H=H2+HO2",
            vec![(H2O2, 1.0), (H, 1.0)],
            vec![(H2, 1.0), (HO2, 1.0)],
            4.820e13,
            0.0,
            7_950.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "H2O2+O=OH+HO2",
            vec![(H2O2, 1.0), (O, 1.0)],
            vec![(OH, 1.0), (HO2, 1.0)],
            9.550e06,
            2.0,
            3_970.0,
            true,
            None,
        ),
        Reaction::from_cgs(
            "H2O2+OH=H2O+HO2",
            vec![(H2O2, 1.0), (OH, 1.0)],
            vec![(H2O, 1.0), (HO2, 1.0)],
            1.000e12,
            0.0,
            0.0,
            true,
            None,
        ),
    ];
    let mech = Mechanism::new(s, reactions);
    debug_assert!(mech.check_element_balance(&h2_composition(&mech)).is_ok());
    mech
}

/// The reduced 8-species / 5-reaction mechanism of the Table 4 overhead
/// study ("the utilized mechanism had 8 species and 5 reactions"): H₂O₂ is
/// dropped and only the shuffle/chain + HO₂ steps are kept.
pub fn h2_air_reduced_5() -> Mechanism {
    let full = h2_air_19();
    let keep = [
        "H+O2=O+OH", "O+H2=H+OH", "OH+H2=H+H2O", "HO2+H=OH+OH", "HO2+OH=H2O+O2",
    ];
    // Drop H2O2 (index 7): species become H2,O2,O,OH,H,H2O,HO2,N2.
    let mut species = full.species.clone();
    species.remove(idx::H2O2);
    let remap = |i: usize| -> usize {
        assert_ne!(i, idx::H2O2, "reduced mechanism must not use H2O2");
        if i > idx::H2O2 {
            i - 1
        } else {
            i
        }
    };
    let reactions = full
        .reactions
        .iter()
        .filter(|r| keep.contains(&r.equation))
        .map(|r| {
            let mut r = r.clone();
            r.reactants = r.reactants.iter().map(|&(i, nu)| (remap(i), nu)).collect();
            r.products = r.products.iter().map(|&(i, nu)| (remap(i), nu)).collect();
            r.third_body = r
                .third_body
                .as_ref()
                .map(|(d, over)| (*d, over.iter().map(|&(i, e)| (remap(i), e)).collect()));
            r
        })
        .collect::<Vec<_>>();
    assert_eq!(reactions.len(), 5, "expected exactly 5 kept reactions");
    Mechanism::new(species, reactions)
}

/// Element composition table `[species][H, O, N]` for a mechanism whose
/// species are drawn from the H/O/N system (both mechanisms here).
pub fn h2_composition(mech: &Mechanism) -> Vec<Vec<f64>> {
    mech.species
        .iter()
        .map(|s| match s.name {
            "H2" => vec![2.0, 0.0, 0.0],
            "O2" => vec![0.0, 2.0, 0.0],
            "O" => vec![0.0, 1.0, 0.0],
            "OH" => vec![1.0, 1.0, 0.0],
            "H" => vec![1.0, 0.0, 0.0],
            "H2O" => vec![2.0, 1.0, 0.0],
            "HO2" => vec![1.0, 2.0, 0.0],
            "H2O2" => vec![2.0, 2.0, 0.0],
            "N2" => vec![0.0, 0.0, 2.0],
            other => panic!("unknown species {other}"),
        })
        .collect()
}

/// Stoichiometric H₂–air mass fractions (φ = 1): 2 H₂ + O₂ + 3.76 N₂.
/// Returns a vector indexed like [`h2_air_19`]'s species table.
pub fn stoichiometric_h2_air() -> Vec<f64> {
    let w_h2 = 2.0 * 2.016;
    let w_o2 = 31.998;
    let w_n2 = 3.76 * 28.014;
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; 9];
    y[idx::H2] = w_h2 / total;
    y[idx::O2] = w_o2 / total;
    y[idx::N2] = w_n2 / total;
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mechanism_has_paper_dimensions() {
        let m = h2_air_19();
        assert_eq!(m.n_species(), 9);
        assert_eq!(m.reactions.len(), 19);
        assert!(m.reactions.iter().all(|r| r.reversible));
    }

    #[test]
    fn reduced_mechanism_has_paper_dimensions() {
        let m = h2_air_reduced_5();
        assert_eq!(m.n_species(), 8);
        assert_eq!(m.reactions.len(), 5);
        assert!(m.species_index("H2O2").is_none());
        m.check_element_balance(&h2_composition(&m)).unwrap();
    }

    #[test]
    fn stoichiometric_mixture_sums_to_one() {
        let y = stoichiometric_h2_air();
        let s: f64 = y.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // H2 mass fraction of a phi=1 H2-air mixture is ~2.85%.
        assert!((y[idx::H2] - 0.0285).abs() < 0.001, "Y_H2 = {}", y[idx::H2]);
    }

    #[test]
    fn reduced_species_indices_remap_correctly() {
        let m = h2_air_reduced_5();
        // N2 shifted from 8 to 7.
        assert_eq!(m.species_index("N2"), Some(7));
        assert_eq!(m.species_index("HO2"), Some(6));
        // All reaction indices in range.
        for r in &m.reactions {
            for &(i, _) in r.reactants.iter().chain(&r.products) {
                assert!(i < m.n_species());
            }
        }
    }
}
