//! Quick RHS-cost profile: times direct vs port-routed chemistry RHS
//! evaluations for the reduced H2-air mechanism.

use cca_chem::h2_air_reduced_5;
use cca_chem::systems::ConstantVolumeIgnition;
use cca_components::ports::OdeRhsPort;
use cca_core::ParameterPort;
use cca_solvers::ode::OdeSystem;
use std::rc::Rc;
use std::time::Instant;

fn main() {
    let t0 = 1500.0;
    let p0 = 101325.0;
    let mech = h2_air_reduced_5();
    let n = mech.n_species();
    let (wh, wo, wn) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let tot = wh + wo + wn;
    let mut y0 = vec![0.0; n];
    y0[0] = wh / tot;
    y0[1] = wo / tot;
    y0[n - 1] = wn / tot;
    let sys = ConstantVolumeIgnition::new(mech.clone(), t0, p0, &y0);
    let state = sys.pack_state(t0, &y0, p0);
    let mut d = vec![0.0; n + 1];
    const N: usize = 300_000;
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..N {
            sys.rhs(0.0, &state, &mut d);
        }
        println!(
            "direct:    {:.1} ns/eval",
            t.elapsed().as_nanos() as f64 / N as f64
        );
    }
    let mut fw = cca_apps::palette::standard_palette();
    cca_core::script::run_script(&mut fw,
        "instantiate ThermoChemistryReduced chem\ninstantiate dPdt dpdt\ninstantiate problemModeler modeler\nconnect dpdt chemistry chem chemistry\nconnect modeler chemistry chem chemistry\nconnect modeler dpdt dpdt dpdt\n").unwrap();
    let rhs: Rc<dyn OdeRhsPort> = fw.get_provides_port("modeler", "rhs").unwrap();
    let cfg: Rc<dyn ParameterPort> = fw.get_provides_port("modeler", "config").unwrap();
    let mix = cca_chem::thermo::Mixture::new(&mech.species);
    cfg.set_parameter("density", mix.density(t0, p0, &y0));
    for _ in 0..2 {
        let t = Instant::now();
        for _ in 0..N {
            rhs.eval(0.0, &state, &mut d);
        }
        println!(
            "component: {:.1} ns/eval",
            t.elapsed().as_nanos() as f64 / N as f64
        );
    }
}
