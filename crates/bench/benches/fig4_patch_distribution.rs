//! **Fig. 4** — the AMR patch distribution over the flame, with the H₂O₂
//! mass fraction (the ignition-front precursor) carried on the finest
//! mesh. Prints the patch boxes per level and the per-level H₂O₂ maxima —
//! the data the paper's figure renders.

use cca_apps::reaction_diffusion::{run_reaction_diffusion, RdConfig};
use cca_bench::banner;

fn main() {
    banner("Fig. 4", "AMR patch distribution + H2O2 field, paper §4.2");
    let cfg = RdConfig {
        nx: 24,
        length: 0.01,
        ratio: 2,
        max_levels: 3,
        dt: 5.0e-7,
        n_steps: 3,
        regrid_interval: 1,
        threshold: 40.0,
        with_chemistry: true,
        t_hot: 1400.0,
    };
    let (report, _) = run_reaction_diffusion(&cfg).expect("flame run");
    println!("levels in use: {}", report.cells_per_level.len());
    println!("cells per level: {:?}", report.cells_per_level);
    println!("\npatch map (level, lo, hi in level index space):");
    for (level, lo, hi) in &report.final_patches {
        println!(
            "  level {level}: [{:4},{:4}] .. [{:4},{:4}]  ({} cells)",
            lo[0],
            lo[1],
            hi[0],
            hi[1],
            (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
        );
    }
    let (_, h2o2_max) = report.h2o2_max_series.last().copied().unwrap_or((0.0, 0.0));
    println!("\nmax Y_H2O2 at the end of the run: {h2o2_max:.3e}");
    println!("(the precursor peaks on the flame fronts, which is where the");
    println!("fine patches must sit — compare the patch map above)");
    // Adaptivity pays: fine levels must cover a minority of the domain.
    if report.cells_per_level.len() > 1 {
        let coarse = report.cells_per_level[0] as f64;
        let fine_equiv = report.cells_per_level[1] as f64 / 4.0;
        println!(
            "fine-level coverage: {:.1}% of the domain",
            100.0 * fine_equiv / coarse
        );
    }
}
