//! **Ablation: Godunov vs EFM** — the §4.3 claim behind the component
//! swap: "The Godunov method with RK2 becomes unstable for strong shocks.
//! The flexibility of CCA allows one to successfully reuse the code
//! assembly... by simply replacing the GodunovFlux component with
//! EFMFlux." Sweeps Mach number with both fluxes and reports which
//! combinations finish.

use cca_apps::shock_interface::{run_shock_interface, FluxChoice, ShockConfig};
use cca_bench::banner;

fn main() {
    banner(
        "Ablation: flux swap",
        "Godunov vs EFM across shock strengths, paper §4.3",
    );
    println!("Mach   flux      outcome                      knee Gamma   rho range");
    for mach in [1.5f64, 2.5, 3.5] {
        for flux in [FluxChoice::Godunov, FluxChoice::Efm] {
            let cfg = ShockConfig {
                nx: 40,
                ny: 20,
                max_levels: 1,
                t_end_over_tau: 0.8,
                mach,
                flux,
                // The stress configuration: a compressive limiter makes
                // the Godunov/RK2 combination fragile at high Mach, as in
                // the paper.
                ..ShockConfig::default()
            };
            let label = match flux {
                FluxChoice::Godunov => "godunov",
                FluxChoice::Efm => "efm    ",
            };
            match run_shock_interface(&cfg) {
                Ok((report, _)) => {
                    let knee = report
                        .circulation_series
                        .iter()
                        .map(|(_, g)| *g)
                        .fold(0.0f64, f64::min);
                    println!(
                        "{mach:4.1}   {label}   completed ({:4} steps)      {knee:9.4}   [{:.2}, {:.2}]",
                        report.steps, report.rho_min, report.rho_max
                    );
                }
                Err(e) => {
                    println!("{mach:4.1}   {label}   FAILED: {e}");
                }
            }
        }
    }
    println!("\npaper: Godunov+RK2 unstable for strong shocks (Mach ≈ 3.5);");
    println!("EFM (more diffusive, gas-kinetic) completes them. Both agree");
    println!("at Mach 1.5. The swap is a one-line script change (see the");
    println!("flux_swap_is_the_only_script_difference integration test).");
    println!();
    println!("note: this reproduction adds positivity floors to the state");
    println!("reconstruction (see cca-hydro-solver::muscl), which keep the");
    println!("Godunov path alive at high Mach too; the measured distinction");
    println!("is EFM's extra dissipation — consistently lower peak");
    println!("compression at every Mach above. Without the floors the");
    println!("Godunov+RK2 combination loses positivity mid-interaction,");
    println!("exactly the paper's failure mode.");
}
