//! **Fig. 7** — convergence of the interfacial circulation
//! `Γ = ∫_{0.001≤ζ≤0.999} ω·dA` as the mesh hierarchy is allowed 1, 2 and
//! 3 levels. The paper: "we achieve convergence of the interfacial
//! circulation deposition since there is no appreciable difference
//! between the 2-level and 3-level runs. Further, the maximum deposition,
//! corresponding to the 'knee' in the plot, is closest to the analytical
//! estimate of −0.592 for the 3-level run."
//!
//! Scale note: our shock tube is nondimensional and coarser than the
//! paper's, so the converged Γ differs in magnitude from −0.592; the
//! reproduced *shape* is (a) Γ < 0, (b) |Γ| grows with refinement toward
//! a converged value, (c) 2-level ≈ 3-level.

use cca_apps::shock_interface::{run_shock_interface, ShockConfig};
use cca_bench::banner;

fn main() {
    banner(
        "Fig. 7",
        "circulation convergence with refinement, paper §4.3",
    );
    let mut knees = Vec::new();
    let mut all_series = Vec::new();
    for levels in [1usize, 2, 3] {
        let cfg = ShockConfig {
            nx: 32,
            ny: 16,
            max_levels: levels,
            t_end_over_tau: 1.0,
            regrid_interval: 4,
            ..ShockConfig::default()
        };
        let (report, _) = run_shock_interface(&cfg).expect("shock run");
        // The "knee": the extreme (most negative) deposition over the run.
        let knee = report
            .circulation_series
            .iter()
            .map(|(_, g)| *g)
            .fold(0.0f64, f64::min);
        println!(
            "\n{levels}-level run: {} steps, knee Gamma = {knee:.4}",
            report.steps
        );
        knees.push(knee);
        all_series.push(report.circulation_series.clone());
    }
    println!("\nknee (max |deposition|) per hierarchy depth:");
    for (levels, knee) in [1usize, 2, 3].iter().zip(&knees) {
        println!("  {levels} level(s): Gamma_knee = {knee:.4}");
    }
    let d12 = (knees[1] - knees[0]).abs();
    let d23 = (knees[2] - knees[1]).abs();
    println!("\n|knee(2) - knee(1)| = {d12:.4}   |knee(3) - knee(2)| = {d23:.4}");
    println!("convergence: the 2->3 difference should be the smaller one");
    println!("(paper: no appreciable difference between 2- and 3-level runs;");
    println!(" analytic knee for the paper's dimensional setup: -0.592)");

    println!("\n# Gamma(t/tau) series per depth (CSV: levels, t_over_tau, gamma):");
    for (levels, series) in [1usize, 2, 3].iter().zip(&all_series) {
        for (t, g) in series.iter().filter(|(t, _)| *t > -0.2) {
            println!("{levels},{t:.4},{g:.5}");
        }
    }
}
