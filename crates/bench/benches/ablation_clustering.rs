//! **Ablation: Berger–Rigoutsos efficiency threshold** — the regridding
//! trade-off: a high fill-efficiency target makes many small patches
//! (less wasted fine-grid work, more patch-management and ghost overhead);
//! a low target makes few large patches that over-refine.

use cca_bench::banner;
use cca_mesh::berger_rigoutsos;

/// An annular flag pattern (a flame-front-like feature).
fn annulus_flags(n: i64, r0: f64, r1: f64) -> Vec<(i64, i64)> {
    let c = n as f64 / 2.0;
    let mut flags = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let dx = i as f64 + 0.5 - c;
            let dy = j as f64 + 0.5 - c;
            let r = (dx * dx + dy * dy).sqrt();
            if r >= r0 && r <= r1 {
                flags.push((i, j));
            }
        }
    }
    flags
}

fn main() {
    banner(
        "Ablation: clustering efficiency",
        "Berger-Rigoutsos threshold sweep (GrACE regrid tuning)",
    );
    let n = 96i64;
    let flags = annulus_flags(n, 28.0, 34.0);
    println!("flagged cells: {} of {}", flags.len(), n * n);
    println!("\nefficiency  patches  covered-cells  wasted-fraction  min-box  max-box");
    for eff in [0.5f64, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let boxes = berger_rigoutsos(&flags, eff, 4);
        let covered: i64 = boxes.iter().map(|b| b.count()).sum();
        let wasted = (covered - flags.len() as i64) as f64 / covered as f64;
        let min_box = boxes.iter().map(|b| b.count()).min().unwrap_or(0);
        let max_box = boxes.iter().map(|b| b.count()).max().unwrap_or(0);
        println!(
            "{eff:9.2}  {:7}  {covered:13}  {wasted:15.3}  {min_box:7}  {max_box:7}",
            boxes.len()
        );
    }
    println!("\nexpected: raising the threshold monotonically increases the");
    println!("patch count and decreases the wasted (refined-but-unflagged)");
    println!("fraction — the knob trades refinement waste for patch overhead.");
}
