//! **Fig. 9** — constant-global-problem scalability: measured runtime vs
//! the ideal `t₁/P` line for global meshes 200×200 and 350×350, up to 48
//! ranks. The paper's worst parallel efficiency is 73% (200² on 48
//! processors, a 29×29 tile per processor).

use cca_apps::scaling::{run_scaling, ScalingConfig};
use cca_bench::banner;
use cca_comm::ClusterModel;

fn main() {
    banner("Fig. 9", "strong scaling vs ideal, paper §5.2");
    let model = ClusterModel::cplant();
    let rank_counts = [1usize, 2, 4, 8, 12, 16, 24, 32, 48];
    for n in [200i64, 350] {
        println!("\nglobal mesh {n} x {n}:");
        println!("P      t[s] (modeled)   ideal t1/P   efficiency");
        let mut t1 = 0.0;
        let mut worst = 1.0f64;
        for &p in &rank_counts {
            let t = run_scaling(
                &ScalingConfig {
                    n,
                    per_rank: false,
                    ranks: p,
                    steps: 5,
                    stages_per_step: 2,
                    work_per_cell_var: 0.5,
                    ..ScalingConfig::default()
                },
                model,
            )
            .modeled_time;
            if p == 1 {
                t1 = t;
            }
            let ideal = t1 / p as f64;
            let eff = ideal / t;
            worst = worst.min(eff);
            println!("{p:3}    {t:14.2}   {ideal:10.2}   {:9.1}%", eff * 100.0);
        }
        println!("worst efficiency for {n}x{n}: {:.1}%", worst * 100.0);
    }
    println!("\npaper: 350x350 follows the ideal closely; 200x200 droops,");
    println!("worst efficiency 73% at P = 48 (29x29 per-processor tile).");
}
