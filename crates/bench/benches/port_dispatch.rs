//! Criterion micro-benchmark of the invocation mechanisms behind Table 4
//! and the paper's reference [11] ("CCA method invocations are
//! consistently ≈3 times more expensive than simple Fortran subroutine
//! invocations; however since the invocation overhead itself is
//! O(10-100 ns), [it] is still insignificant compared to the time spent
//! in the method execution").

use cca_chem::h2_air_reduced_5;
use cca_chem::kinetics::Mechanism;
use cca_components::ports::ChemistrySourcePort;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::cell::Cell;
use std::rc::Rc;

struct DirectWrap {
    mech: Mechanism,
    calls: Cell<usize>,
}

impl ChemistrySourcePort for DirectWrap {
    fn n_species(&self) -> usize {
        self.mech.n_species()
    }
    fn molar_mass(&self, i: usize) -> f64 {
        self.mech.species[i].molar_mass
    }
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        self.calls.set(self.calls.get() + 1);
        self.mech.production_rates(t, c, wdot);
    }
    fn h_molar(&self, i: usize, t: f64) -> f64 {
        self.mech.species[i].h_molar(t)
    }
    fn u_molar(&self, i: usize, t: f64) -> f64 {
        self.mech.species[i].u_molar(t)
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        cca_chem::thermo::Mixture::new(&self.mech.species).cp_mass(t, y)
    }
    fn cv_mass(&self, t: f64, y: &[f64]) -> f64 {
        cca_chem::thermo::Mixture::new(&self.mech.species).cv_mass(t, y)
    }
    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        cca_chem::thermo::Mixture::new(&self.mech.species).mean_molar_mass(y)
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        cca_chem::thermo::Mixture::new(&self.mech.species).density(t, p, y)
    }
    fn calls(&self) -> usize {
        self.calls.get()
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mech = h2_air_reduced_5();
    let n = mech.n_species();
    let conc = vec![1.0e-3; n];
    let mut wdot = vec![0.0; n];

    let mut group = c.benchmark_group("production_rates_dispatch");

    // 1. Direct static call into the library.
    let direct = mech.clone();
    group.bench_function("direct_call", |b| {
        b.iter(|| direct.production_rates(black_box(1200.0), black_box(&conc), &mut wdot))
    });

    // 2. One virtual call through an Rc<dyn Port> — the CCA uses-port path.
    let port: Rc<dyn ChemistrySourcePort> = Rc::new(DirectWrap {
        mech: mech.clone(),
        calls: Cell::new(0),
    });
    group.bench_function("cca_port_call", |b| {
        b.iter(|| port.production_rates(black_box(1200.0), black_box(&conc), &mut wdot))
    });

    // 3. The same port fetched through a full framework assembly — proves
    // framework plumbing adds nothing per call.
    let mut fw = cca_apps::palette::standard_palette();
    fw.instantiate("ThermoChemistryReduced", "chem").unwrap();
    let fw_port: Rc<dyn ChemistrySourcePort> = fw.get_provides_port("chem", "chemistry").unwrap();
    group.bench_function("framework_port_call", |b| {
        b.iter(|| fw_port.production_rates(black_box(1200.0), black_box(&conc), &mut wdot))
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
