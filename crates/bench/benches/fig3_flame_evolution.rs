//! **Fig. 3** — evolution of the temperature field of the 2D
//! reaction–diffusion flame (paper: t = 0, 0.265, 0.395 ms on a 10 mm
//! square, three igniting hot spots).
//!
//! Scale substitution: the paper's production run took 58 hours on
//! 28 CPUs; this regenerator runs a laptop-scale configuration (coarser
//! mesh, shorter horizon) that exhibits the same qualitative sequence —
//! hot spots ignite, fronts expand and begin to merge. Three snapshots of
//! the T field are written as CSV (x, y, T) to stdout along with summary
//! rows.

use cca_apps::reaction_diffusion::{run_reaction_diffusion, RdConfig};
use cca_bench::banner;

fn main() {
    banner(
        "Fig. 3",
        "temperature-field evolution of the flame, paper §4.2",
    );
    let base = RdConfig {
        nx: 20,
        length: 0.01,
        ratio: 2,
        max_levels: 2,
        dt: 2.0e-6,
        regrid_interval: 4,
        threshold: 50.0,
        with_chemistry: true,
        t_hot: 1600.0,
        n_steps: 0,
    };
    // Three snapshot times (macro steps) standing in for the paper's
    // t = 0, 0.265, 0.395 ms: initial kernels, mid-ignition, burned
    // kernels with spreading fronts.
    println!("snapshot  t[us]    minT[K]  maxT[K]   hot-area-fraction(T>800K)");
    for (snap, steps) in [(0usize, 0usize), (1, 6), (2, 12)] {
        let cfg = RdConfig {
            n_steps: steps.max(1),
            ..base
        };
        // steps = 0 means "initial condition": run zero diffusion steps by
        // using with_chemistry off and 1 tiny step.
        let cfg = if steps == 0 {
            RdConfig {
                n_steps: 1,
                dt: 1e-12,
                with_chemistry: false,
                ..base
            }
        } else {
            cfg
        };
        let (report, _) = run_reaction_diffusion(&cfg).expect("flame run");
        let ts: Vec<f64> = report.final_t_field.iter().map(|(_, _, t)| *t).collect();
        let tmin = ts.iter().cloned().fold(f64::INFINITY, f64::min);
        let tmax = ts.iter().cloned().fold(0.0, f64::max);
        let hot = ts.iter().filter(|t| **t > 800.0).count() as f64 / ts.len() as f64;
        let t_phys = if steps == 0 {
            0.0
        } else {
            steps as f64 * base.dt * 1e6
        };
        println!("{snap:8}  {t_phys:7.2}  {tmin:7.1}  {tmax:7.1}  {hot:10.4}");
        if snap == 2 {
            println!("\n# final T field (x[mm], y[mm], T[K]) — plotdata for fig. 3's last frame:");
            for (x, y, t) in report.final_t_field.iter() {
                println!("{:.4},{:.4},{:.1}", x * 1e3, y * 1e3, t);
            }
        }
    }
    println!("\npaper: three hot spots ignite; fronts expand and merge;");
    println!("finest structures ~0.1 mm resolved by SAMR (refinement ratio 2).");
}
