//! **Fig. 8** — constant-processor-workload timings vs machine size for
//! per-rank meshes 50², 100², 175²: the three flat lines showing that
//! "increasing the number of processors (and the problem size) does not
//! make an appreciable difference".

use cca_apps::scaling::{run_scaling, ScalingConfig};
use cca_bench::banner;
use cca_comm::ClusterModel;

fn main() {
    banner(
        "Fig. 8",
        "weak scaling of the reaction-diffusion code, paper §5.2",
    );
    let model = ClusterModel::cplant();
    let rank_counts = [1usize, 2, 4, 8, 12, 16, 24, 32, 48];
    println!("P      t(50x50)[s]  t(100x100)[s]  t(175x175)[s]   (modeled)");
    let mut first: Vec<f64> = Vec::new();
    let mut last: Vec<f64> = Vec::new();
    for &p in &rank_counts {
        let mut row = Vec::new();
        for n in [50i64, 100, 175] {
            let t = run_scaling(
                &ScalingConfig {
                    n,
                    per_rank: true,
                    ranks: p,
                    steps: 5,
                    stages_per_step: 2,
                    work_per_cell_var: 0.5,
                    ..ScalingConfig::default()
                },
                model,
            )
            .modeled_time;
            row.push(t);
        }
        println!("{p:3}    {:11.2}  {:13.2}  {:13.2}", row[0], row[1], row[2]);
        if p == rank_counts[0] {
            first = row.clone();
        }
        last = row;
    }
    println!(
        "\nflatness (t_48 / t_1): {:.3}, {:.3}, {:.3}",
        last[0] / first[0],
        last[1] / first[1],
        last[2] / first[2]
    );
    println!("paper: visually flat lines; run times ordered by per-rank size.");
}
