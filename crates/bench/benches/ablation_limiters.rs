//! **Ablation: slope limiters** — the `States` component's design choice.
//! L1 density error on the Sod shock tube against the exact Riemann
//! solution for each limiter, plus overshoot (a TVD violation detector).

use cca_bench::banner;
use cca_hydro_solver::muscl::{compute_rhs, fill_uniform, max_wave_speed};
use cca_hydro_solver::riemann::{sample, GodunovFlux};
use cca_hydro_solver::{cons_to_prim, prim_to_cons, Limiter, Prim, NVARS};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;

fn sod_run(limiter: Limiter, n: i64) -> (f64, f64) {
    let gamma = 1.4;
    let dx = 1.0 / n as f64;
    let left = Prim {
        rho: 1.0,
        u: 0.0,
        v: 0.0,
        p: 1.0,
        zeta: 1.0,
    };
    let right = Prim {
        rho: 0.125,
        u: 0.0,
        v: 0.0,
        p: 0.1,
        zeta: 0.0,
    };
    let mut pd = PatchData::new(IntBox::sized(n, 1), NVARS, 2);
    fill_uniform(&mut pd, &left, gamma);
    for (i, j) in IntBox::sized(n, 1).cells() {
        let w = if (i as f64 + 0.5) * dx < 0.5 {
            left
        } else {
            right
        };
        let u = prim_to_cons(&w, gamma);
        for (var, uv) in u.iter().enumerate().take(NVARS) {
            pd.set(var, i, j, *uv);
        }
    }
    let fill_ghosts = |pd: &mut PatchData| {
        let interior = pd.interior;
        let total = pd.total_box();
        for var in 0..NVARS {
            for (i, j) in total.cells() {
                if !interior.contains(i, j) {
                    let ii = i.clamp(interior.lo[0], interior.hi[0]);
                    let jj = j.clamp(interior.lo[1], interior.hi[1]);
                    let v = pd.get(var, ii, jj);
                    pd.set(var, i, j, v);
                }
            }
        }
    };
    let t_end = 0.2;
    let mut t = 0.0;
    let mut rhs = PatchData::new(pd.interior, NVARS, 0);
    let mut rhs2 = PatchData::new(pd.interior, NVARS, 0);
    let mut stage = pd.clone();
    while t < t_end {
        let smax = max_wave_speed(&pd, gamma, dx, 1e30);
        let dt = (0.4 / smax).min(t_end - t);
        fill_ghosts(&mut pd);
        compute_rhs(&pd, &mut rhs, dx, 1e30, gamma, &GodunovFlux, limiter);
        let interior = pd.interior;
        for (i, j) in interior.cells() {
            for var in 0..NVARS {
                stage.set(var, i, j, pd.get(var, i, j) + dt * rhs.get(var, i, j));
            }
        }
        fill_ghosts(&mut stage);
        compute_rhs(&stage, &mut rhs2, dx, 1e30, gamma, &GodunovFlux, limiter);
        for (i, j) in interior.cells() {
            for var in 0..NVARS {
                let v = pd.get(var, i, j) + 0.5 * dt * (rhs.get(var, i, j) + rhs2.get(var, i, j));
                pd.set(var, i, j, v);
            }
        }
        t += dt;
    }
    let mut l1 = 0.0;
    let mut overshoot = 0.0f64;
    for i in 0..n {
        let x = (i as f64 + 0.5) * dx;
        let exact = sample(&left, &right, gamma, (x - 0.5) / t_end);
        let got = cons_to_prim(
            &[
                pd.get(0, i, 0),
                pd.get(1, i, 0),
                pd.get(2, i, 0),
                pd.get(3, i, 0),
                pd.get(4, i, 0),
            ],
            gamma,
        );
        l1 += (got.rho - exact.rho).abs() * dx;
        overshoot = overshoot.max(got.rho - 1.0).max(0.125 - got.rho - 1.0);
    }
    (l1, overshoot.max(0.0))
}

fn main() {
    banner(
        "Ablation: limiters",
        "States-component reconstruction choice",
    );
    println!("limiter        L1(rho) @200   overshoot @200   L1(rho) @400");
    for (name, lim) in [
        ("first-order", Limiter::FirstOrder),
        ("minmod", Limiter::MinMod),
        ("van-leer", Limiter::VanLeer),
        ("mc", Limiter::MonotonizedCentral),
        ("superbee", Limiter::Superbee),
        ("unlimited", Limiter::None),
    ] {
        let (l1_200, over) = sod_run(lim, 200);
        let (l1_400, _) = sod_run(lim, 400);
        println!("{name:12}   {l1_200:12.5}   {over:14.5}   {l1_400:12.5}");
    }
    println!("\nexpected: second-order limiters beat first-order; the");
    println!("unlimited slope overshoots (oscillates) at the shock; errors");
    println!("shrink with resolution for all stable choices.");
}
