//! **Table 5** — run-time statistics of the constant-per-processor-
//! workload reaction–diffusion runs (adaptivity off, 5 steps of 1e-7 s,
//! 9 variables per mesh point), for single-processor problem sizes
//! 50×50, 100×100 and 175×175.
//!
//! The paper reports (mean, median, σ) over machine sizes on CPlant:
//! 50²: (43.94, 44.4, 2.72); 100²: (161.7, 159.6, 5.81);
//! 175²: (507.1, 506.05, 20.57) seconds. Here the runtimes are *modeled*
//! on the calibrated CPlant ClusterModel (433 MHz Alpha + Myrinet/PCI32)
//! driven by the real messages and workloads of the SCMD run — see
//! DESIGN.md's substitution table.

use cca_apps::scaling::{run_scaling, stats, ScalingConfig};
use cca_bench::banner;
use cca_comm::ClusterModel;

fn main() {
    banner("Table 5", "weak-scaling run-time statistics, paper §5.2");
    let model = ClusterModel::cplant();
    let rank_counts = [1usize, 2, 4, 8, 16, 32, 48];
    println!("Problem Size   mean T    median T   sigma    (modeled s, over P = {rank_counts:?})");
    for n in [50i64, 100, 175] {
        let samples: Vec<f64> = rank_counts
            .iter()
            .map(|&p| {
                run_scaling(
                    &ScalingConfig {
                        n,
                        per_rank: true,
                        ranks: p,
                        steps: 5,
                        stages_per_step: 2,
                        work_per_cell_var: 0.5,
                        ..ScalingConfig::default()
                    },
                    model,
                )
                .modeled_time
            })
            .collect();
        let (mean, median, sigma) = stats(&samples);
        println!("{n:3} x {n:<3}      {mean:8.2}  {median:8.2}  {sigma:7.2}");
    }
    println!("\npaper:  50x50 (43.94, 44.4, 2.72)   100x100 (161.7, 159.6, 5.81)");
    println!("        175x175 (507.1, 506.05, 20.57)");
    println!("expected shape: runtimes scale with the per-processor problem");
    println!("size and are flat in P (the machine behaves 'homogeneous').");
}
