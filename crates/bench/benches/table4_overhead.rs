//! **Table 4** — single-processor overhead of the component architecture.
//!
//! The paper: a 0D-ignition-like code with a deliberately light mechanism
//! (8 species, 5 reactions) "solved on multiple identical cells", run once
//! through the CCA component assembly and once as a plain library-call
//! code, at two integration lengths (two NFE levels) and three cell
//! counts. Expected result: |% difference| ≲ 1.5 with no clear trend.
//!
//! Scale substitution: wall-times here are on this build host, not a
//! 600 MHz Athlon, and the cell counts are scaled to keep `cargo bench`
//! short; the measured quantity — the relative overhead of calling the
//! same physics through `Rc<dyn Port>` — is identical in kind.

use cca_bench::{banner, best_of};
use cca_chem::h2_air_reduced_5;
use cca_chem::systems::ConstantVolumeIgnition;
use cca_components::ports::{OdeIntegratorPort, OdeRhsPort};
use cca_core::ParameterPort;
use cca_solvers::{Bdf, BdfConfig};
use std::rc::Rc;

// Hot enough that the chain chemistry is active: the error controller
// then works for its steps and NFE grows with the integration length
// (the paper's two NFE levels, 150 vs 424).
const T0: f64 = 1500.0;
const P0: f64 = 101_325.0;

fn stoich(n: usize) -> Vec<f64> {
    let (wh, wo, wn) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let total = wh + wo + wn;
    let mut y = vec![0.0; n];
    y[0] = wh / total;
    y[1] = wo / total;
    y[n - 1] = wn / total;
    y
}

/// Direct "C-code" path: library calls only.
fn run_direct(ncells: usize, t_end: f64) -> (f64, usize) {
    let mech = h2_air_reduced_5();
    let n = mech.n_species();
    let y0 = stoich(n);
    let sys = ConstantVolumeIgnition::new(mech, T0, P0, &y0);
    let state0 = sys.pack_state(T0, &y0, P0);
    let bdf = Bdf::new(BdfConfig {
        rtol: 1e-8,
        atol: 1e-14,
        h_init: Some(1e-8),
        ..BdfConfig::default()
    });
    let mut nfe_per_cell = 0usize;
    let ((), secs) = best_of(1, || {
        for _ in 0..ncells {
            let mut state = state0.clone();
            let stats = bdf.integrate(&sys, 0.0, t_end, &mut state).expect("direct");
            nfe_per_cell = stats.rhs_evals;
        }
    });
    (secs, nfe_per_cell)
}

/// Component path: the same physics behind CCA ports (Fig. 1's assembly,
/// reduced mechanism), invoked cell by cell.
fn run_component(ncells: usize, t_end: f64) -> (f64, usize) {
    let mut fw = cca_apps::palette::standard_palette();
    cca_core::script::run_script(
        &mut fw,
        "instantiate ThermoChemistryReduced chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate dPdt dpdt\n\
         instantiate problemModeler modeler\n\
         connect dpdt chemistry chem chemistry\n\
         connect modeler chemistry chem chemistry\n\
         connect modeler dpdt dpdt dpdt\n",
    )
    .expect("assembly");
    let rhs: Rc<dyn OdeRhsPort> = fw.get_provides_port("modeler", "rhs").expect("rhs port");
    let integ: Rc<dyn OdeIntegratorPort> = fw
        .get_provides_port("cvode", "integrator")
        .expect("integ port");
    let cfg: Rc<dyn ParameterPort> = fw.get_provides_port("modeler", "config").expect("config");
    // Freeze the rigid-vessel density exactly as the Initializer does.
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let mix = cca_chem::thermo::Mixture::new(&mech.species);
    cfg.set_parameter("density", mix.density(T0, P0, &y0));
    let mut state0 = vec![T0];
    state0.extend_from_slice(&y0[..y0.len() - 1]);
    state0.push(P0);
    integ.set_tolerances(1e-8, 1e-14);
    integ.set_initial_step(Some(1e-8));

    let mut nfe_per_cell = 0usize;
    let ((), secs) = best_of(1, || {
        for _ in 0..ncells {
            let mut state = state0.clone();
            let stats = integ
                .integrate(rhs.clone(), 0.0, t_end, &mut state)
                .expect("component");
            nfe_per_cell = stats.rhs_evals;
        }
    });
    (secs, nfe_per_cell)
}

fn main() {
    banner("Table 4", "single-processor component overhead, paper §5.1");
    println!("dt-tag  Ncells   NFE   Comp.[s]  C-code[s]  % diff.");
    // Two integration lengths play the paper's dt = 1 and dt = 10 roles
    // (they change NFE); three cell counts. Measurements of the two paths
    // are interleaved round by round and the per-path minimum is kept, to
    // cancel single-core scheduling noise (the paper used getrusage on a
    // quiet workstation for the same reason).
    let cases: [(&str, f64); 2] = [("1", 1.0e-6), ("10", 1.0e-5)];
    const ROUNDS: usize = 5;
    for (tag, t_end) in cases {
        for ncells in [500usize, 2500, 5000] {
            let mut t_direct = f64::INFINITY;
            let mut t_comp = f64::INFINITY;
            let mut nfe_d = 0;
            let mut nfe_c = 0;
            for _ in 0..ROUNDS {
                let (td, nd) = run_direct(ncells, t_end);
                let (tc, nc) = run_component(ncells, t_end);
                t_direct = t_direct.min(td);
                t_comp = t_comp.min(tc);
                nfe_d = nd;
                nfe_c = nc;
            }
            assert_eq!(nfe_d, nfe_c, "paths must do identical work");
            let pct = 100.0 * (t_comp - t_direct) / t_direct;
            println!("{tag:>6}  {ncells:6}  {nfe_d:4}  {t_comp:8.3}  {t_direct:9.3}  {pct:7.2}");
        }
    }
    println!("\npaper: % diff in [-1.54, +0.89] with no clear trend;");
    println!("the component path's only extra cost is virtual dispatch.");
}
