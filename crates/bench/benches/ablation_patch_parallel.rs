//! **Ablation: patch-parallel executor** — the PR-2 tentpole. Compares
//! the serial per-patch RHS loop against `cca_core::Executor` driving
//! the very same `DiffusionPhysics` kernel over a multi-patch
//! reaction–diffusion workload with skewed patch sizes (the paper §5:
//! chemistry and refinement make patch work uneven).
//!
//! Methodology: this repo's bench hosts are single-core, so — exactly
//! like the Fig. 8/9 regenerators — parallel runtimes are *modeled* from
//! measured per-patch kernel times ([`cca_core::RunReport::item_busy`]):
//! patches are placed on W workers with the same greedy LPT rule the
//! mesh load balancer uses, and the makespan (slowest worker) is the
//! modeled wall time. Real executor wall-clock at each worker count is
//! printed alongside for reference; on a single core it cannot beat
//! serial and is reported, not asserted. Correctness *is* asserted: the
//! executor's fields must be bit-identical to the serial loop's at every
//! worker count.

use cca_bench::{banner, best_of, timed};
use cca_components::ports::{ChemistrySourcePort, PatchRhsPort};
use cca_core::script::run_script;
use cca_mesh::balance::assign_greedy;
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use std::rc::Rc;

struct RhsItem {
    state: PatchData,
    rhs: PatchData,
}

/// Stoichiometric H2-air for an n-species table (H2, O2 first; N2 last).
fn stoich(n: usize) -> Vec<f64> {
    let (w_h2, w_o2, w_n2) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; n];
    y[0] = w_h2 / total;
    y[1] = w_o2 / total;
    y[n - 1] = w_n2 / total;
    y
}

/// Greedy-LPT makespan of the measured per-patch times on `workers`
/// workers (the executor's work-stealing approximates this schedule).
fn makespan(busy: &[f64], workers: usize) -> f64 {
    let owners = assign_greedy(busy, workers);
    let mut loads = vec![0.0; workers];
    for (o, b) in owners.iter().zip(busy) {
        loads[*o] += b;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

fn patches_equal(a: &PatchData, b: &PatchData) -> bool {
    (0..a.nvars).all(|v| {
        a.var_slice(v)
            .iter()
            .zip(b.var_slice(v))
            .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

fn main() {
    banner(
        "Ablation: patch-parallel executor",
        "serial patch loop vs work-stealing executor, modeled like Figs 8-9",
    );

    // The real DiffusionPhysics kernel behind real ports.
    let mut fw = cca_apps::palette::standard_palette();
    run_script(
        &mut fw,
        "instantiate ThermoChemistry chem\n\
         instantiate DRFMComponent drfm\n\
         instantiate DiffusionPhysics diffusion\n\
         connect diffusion chemistry chem chemistry\n\
         connect diffusion transport drfm transport\n",
    )
    .expect("assembly");
    let rhs_port: Rc<dyn PatchRhsPort> = fw
        .get_provides_port("diffusion", "patch-rhs")
        .expect("patch-rhs port");
    let chem: Rc<dyn ChemistrySourcePort> = fw
        .get_provides_port("chem", "chemistry")
        .expect("chemistry port");
    let kernel = rhs_port
        .patch_kernel()
        .expect("DiffusionPhysics offers a patch kernel");

    // Multi-patch workload with skewed sizes: what a regridded flame
    // hierarchy hands the integrator.
    // State layout {T, Y1..Y_{N-1}}: nvars equals the species count, the
    // last mass fraction being implied by closure.
    let n = chem.n_species();
    let nvars = n;
    let y = stoich(n);
    let sizes: [i64; 12] = [24, 40, 28, 56, 24, 32, 48, 24, 36, 64, 28, 32];
    let (dx, dy) = (1.0e-4, 1.0e-4);
    let states: Vec<PatchData> = sizes
        .iter()
        .enumerate()
        .map(|(p, &s)| {
            let mut pd = PatchData::new(IntBox::sized(s, s), nvars, 2);
            let (cx, cy) = (s as f64 / 2.0, s as f64 / 3.0 + p as f64);
            for (i, j) in pd.total_box().cells() {
                let r2 =
                    ((i as f64 - cx).powi(2) + (j as f64 - cy).powi(2)) / (s as f64 / 4.0).powi(2);
                pd.set(0, i, j, 300.0 + 1100.0 * (-r2).exp());
                for v in 1..nvars {
                    pd.set(v, i, j, y[v - 1]);
                }
            }
            pd
        })
        .collect();
    let zeros: Vec<PatchData> = states
        .iter()
        .map(|pd| PatchData::new(pd.interior, nvars, 2))
        .collect();
    let cells: i64 = sizes.iter().map(|s| s * s).sum();
    println!(
        "{} patches, {} interior cells, {} vars/cell\n",
        sizes.len(),
        cells,
        nvars
    );

    // Serial baseline: the pre-executor per-patch port loop.
    let (serial_rhs, t_serial) = best_of(3, || {
        let mut out = zeros.clone();
        for (s, r) in states.iter().zip(out.iter_mut()) {
            rhs_port.eval_patch(s, r, dx, dy, 0.0);
        }
        out
    });

    // Executor runs. Per-item busy times from the 1-worker (inline) runs
    // drive the modeled schedules; keep the per-item minimum over rounds
    // to cancel scheduling noise.
    let executor = fw.executor();
    let mut item_busy = vec![f64::INFINITY; states.len()];
    let run_at = |workers: usize| -> (Vec<PatchData>, Vec<f64>, f64) {
        executor.set_workers(workers);
        let items: Vec<RhsItem> = states
            .iter()
            .cloned()
            .zip(zeros.iter().cloned())
            .map(|(state, rhs)| RhsItem { state, rhs })
            .collect();
        let k = kernel.clone();
        let (report, wall) = timed(|| {
            executor.run("ablation.patch-rhs", items, move |_w, it| {
                k.eval(&it.state, &mut it.rhs, dx, dy, 0.0);
            })
        });
        assert!(!report.poisoned(), "kernel must not panic");
        let busy = report.item_busy.clone();
        let rhss = report
            .into_result()
            .expect("clean run")
            .into_iter()
            .map(|it| it.rhs)
            .collect();
        (rhss, busy, wall)
    };

    let mut wall_serial_exec = f64::INFINITY;
    for _ in 0..3 {
        let (rhss, busy, wall) = run_at(1);
        wall_serial_exec = wall_serial_exec.min(wall);
        for (b, slot) in busy.iter().zip(item_busy.iter_mut()) {
            *slot = slot.min(*b);
        }
        for (s, p) in serial_rhs.iter().zip(&rhss) {
            assert!(patches_equal(s, p), "1-worker executor != serial loop");
        }
    }

    println!("serial port loop (best of 3):     {t_serial:10.6} s");
    println!(
        "executor @ 1 worker (inline):     {wall_serial_exec:10.6} s  (ratio {:.3})",
        wall_serial_exec / t_serial
    );
    println!("\nworkers  modeled-makespan[s]  modeled-speedup  real-wall[s] (1 core)");
    let total: f64 = item_busy.iter().sum();
    let mut speedup_at_2 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let m = makespan(&item_busy, workers);
        let speedup = total / m;
        if workers == 2 {
            speedup_at_2 = speedup;
        }
        let (rhss, _, wall) = run_at(workers);
        for (s, p) in serial_rhs.iter().zip(&rhss) {
            assert!(patches_equal(s, p), "{workers}-worker executor != serial");
        }
        println!("{workers:7}  {m:20.6}  {speedup:15.2}  {wall:12.6}");
    }

    assert!(
        speedup_at_2 > 1.25,
        "2-worker modeled schedule must beat the serial loop (got {speedup_at_2:.2}x)"
    );
    println!("\nexpected: modeled speedup > 1.25x at 2 workers, approaching the");
    println!("patch-count/size-skew limit beyond; fields bit-identical to the");
    println!("serial loop at every worker count (asserted above).");
}
