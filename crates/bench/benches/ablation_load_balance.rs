//! **Ablation: load balancing** — the paper: "Patches are collated and
//! distributed among processors to maximize load-balance while keeping
//! parents and children on the same processors", and chemistry
//! "contributes tremendously to load-imbalance". Compares greedy
//! (work-aware LPT) placement against naive round-robin on skewed,
//! flame-like workloads.

use cca_bench::banner;
use cca_mesh::balance::{assign_greedy, imbalance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn loads_for(owners: &[usize], work: &[f64], nranks: usize) -> Vec<f64> {
    let mut loads = vec![0.0; nranks];
    for (o, w) in owners.iter().zip(work) {
        loads[*o] += w;
    }
    loads
}

fn main() {
    banner(
        "Ablation: load balance",
        "greedy LPT vs round-robin on chemistry-skewed patch work",
    );
    let mut rng = StdRng::seed_from_u64(42);
    println!("patches  ranks  skew     greedy-imbalance  round-robin-imbalance");
    for &npatch in &[16usize, 64, 256] {
        for &nranks in &[4usize, 16] {
            for &skew in &[1.0f64, 10.0, 100.0] {
                // Work model: base diffusion cost + chemistry spike on a
                // subset of "burning" patches (the paper's imbalance
                // source).
                let work: Vec<f64> = (0..npatch)
                    .map(|_| {
                        let burning = rng.gen_bool(0.25);
                        let base = rng.gen_range(0.8..1.2);
                        if burning {
                            base * skew
                        } else {
                            base
                        }
                    })
                    .collect();
                let greedy = assign_greedy(&work, nranks);
                let rr: Vec<usize> = (0..npatch).map(|i| i % nranks).collect();
                let gi = imbalance(&loads_for(&greedy, &work, nranks));
                let ri = imbalance(&loads_for(&rr, &work, nranks));
                println!("{npatch:7}  {nranks:5}  {skew:6.1}  {gi:16.3}  {ri:21.3}");
            }
        }
    }
    println!("\nexpected: greedy stays near 1.0 except when one patch");
    println!("dominates; round-robin degrades sharply as chemistry skew");
    println!("grows — the motivation for the work-aware balancer.");
}
