//! **Fig. 6** — the density field after the shock-interface interaction
//! at t/τ = 2.096 (τ = shock transit time of the oblique interface), with
//! the ζ = 0.5 contour marking the Air/heavy-gas interface and level-3
//! patches resolving shocks and interface.

use cca_apps::shock_interface::{run_shock_interface, ShockConfig};
use cca_bench::banner;

fn main() {
    banner("Fig. 6", "density field at t/tau = 2.096, paper §4.3");
    let cfg = ShockConfig {
        nx: 64,
        ny: 32,
        max_levels: 2,
        t_end_over_tau: 2.096,
        regrid_interval: 4,
        ..ShockConfig::default()
    };
    let (report, _) = run_shock_interface(&cfg).expect("shock run");
    println!(
        "steps: {}   density range: [{:.3}, {:.3}]",
        report.steps, report.rho_min, report.rho_max
    );
    println!("cells per level: {:?}", report.cells_per_level);

    // Interface line: finest-covering cells with zeta in [0.4, 0.6].
    let interface: Vec<_> = report
        .final_density
        .iter()
        .filter(|(_, _, _, z, _)| (*z - 0.5).abs() < 0.1)
        .collect();
    println!("interface (0.4 < zeta < 0.6) cells: {}", interface.len());

    // Reflected-shock check: after interaction there must be compressed
    // gas (> post-shock density) behind the interface region.
    let rho_max_heavy = report
        .final_density
        .iter()
        .filter(|(_, _, _, z, _)| *z > 0.5)
        .map(|(_, _, r, _, _)| *r)
        .fold(0.0f64, f64::max);
    println!("max density in heavy gas (transmitted shock compression): {rho_max_heavy:.3}");

    println!("\n# density field CSV (x, y, rho, zeta, level), finest covering:");
    for (x, y, rho, zeta, level) in report.final_density.iter() {
        println!("{x:.4},{y:.4},{rho:.4},{zeta:.3},{level}");
    }
}
