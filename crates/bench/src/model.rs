//! Deterministic machine model for the PR-9 kernel-throughput bench.
//!
//! Wall clocks are banned in `cca-bench` (the committed baselines are
//! byte-diffed in CI), so kernel speed is *modeled*: each kernel's loop
//! structure is replayed as a row-granular memory trace through an LRU
//! cache simulator, and the cycle count is the roofline maximum of the
//! compute cost (scalar + SIMD flops) and the memory cost (cache-line
//! misses times the miss latency). The model is a pure function of the
//! patch shape and the [`cca_mesh::KernelConfig`] knobs — same inputs,
//! same bytes, on every host.
//!
//! The traces below mirror the real loop nests in
//! `cca_components::diffusion::diffusion_rhs_cfg`,
//! `cca_hydro::muscl::compute_rhs_cfg`, and the SAMR Laplacian sweep —
//! band-sized property tables, halo-row recompute, the two-pass x/y flux
//! sweep — so what the model rewards (band tables staying resident,
//! padded rows not splitting cache lines) is exactly what the tiled
//! kernels do.

/// Modeled core clock, Hz. Only scales the derived cells/second.
pub const CLOCK_HZ: f64 = 2.0e9;
/// Doubles per SIMD lane group (AVX2-class, 4 × f64).
pub const SIMD_WIDTH: u64 = 4;
/// Doubles per cache line (64-byte lines).
pub const LINE_DOUBLES: usize = 8;
/// Cycles to fill one line from memory, latency-bound (~70 ns).
pub const MISS_CYCLES: u64 = 140;
/// Modeled last-level working cache: 512 KiB of doubles.
pub const CACHE_DOUBLES: usize = 64 * 1024;

/// Cost of one division in scalar-flop equivalents (throughput, not
/// latency: dividers pipeline across independent cells).
const DIV_FLOPS: u64 = 8;
/// Per-cell property evaluation (mean molar mass, density, cp): fixed
/// part plus a per-species part for the mixture rules.
const PROP_FLOPS_BASE: u64 = 20;
const PROP_FLOPS_PER_SPECIES: u64 = 30;
/// Vectorizable flops per cell per variable of the 5-point
/// face-averaged diffusion stencil.
const DIFF_STENCIL_VEC_FLOPS: u64 = 12;
/// One MUSCL reconstruction + approximate Riemann solve, per interface:
/// the limiter/flux arithmetic vectorizes, the wave-selection logic
/// does not.
const RIEMANN_VEC_FLOPS: u64 = 90;
const RIEMANN_SCALAR_FLOPS: u64 = 25;
/// 5-point constant-coefficient Laplacian, per cell per variable.
const LAP_VEC_FLOPS: u64 = 7;

/// Round `n` up to the pitch quantum, as `cca_mesh::layout` does.
fn pad(n: usize, quantum: usize) -> usize {
    let q = quantum.max(1);
    n.div_ceil(q) * q
}

/// Accumulated cost of one kernel invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelCost {
    /// Interior cells the kernel updated (all variables of a cell count
    /// as one cell — the figure the profiler reports too).
    pub cells: u64,
    pub scalar_flops: u64,
    pub vector_flops: u64,
    pub lines_missed: u64,
}

impl KernelCost {
    /// Roofline cycles: compute and memory overlap perfectly, so the
    /// kernel pays whichever side saturates.
    pub fn cycles(&self) -> u64 {
        let compute = self.scalar_flops + self.vector_flops.div_ceil(SIMD_WIDTH);
        let memory = self.lines_missed * MISS_CYCLES;
        compute.max(memory)
    }

    /// Modeled throughput at [`CLOCK_HZ`].
    pub fn cells_per_sec(&self) -> f64 {
        self.cells as f64 * CLOCK_HZ / self.cycles() as f64
    }
}

/// Row-granular LRU cache: entries are whole rows keyed by
/// `(plane, row)`, charged in cache lines. Row granularity matches the
/// kernels, which never revisit part of a row without sweeping it.
struct RowCache {
    cap_lines: usize,
    used_lines: usize,
    /// LRU order, most recent at the back. Linear scan is fine: the
    /// cache holds at most a few hundred rows.
    entries: Vec<(u64, usize)>,
    lines_missed: u64,
}

impl RowCache {
    fn new(cap_doubles: usize) -> Self {
        Self {
            cap_lines: cap_doubles / LINE_DOUBLES,
            used_lines: 0,
            entries: Vec::new(),
            lines_missed: 0,
        }
    }

    /// Touch (read or write) a row of `len` doubles starting `start`
    /// doubles past its plane's line-aligned base. Unaligned starts
    /// straddle one extra line — the cost dense (quantum-1) pitches pay.
    fn touch(&mut self, plane: u32, row: u32, start: usize, len: usize) {
        let key = (u64::from(plane) << 32) | u64::from(row);
        if let Some(pos) = self.entries.iter().position(|e| e.0 == key) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            return;
        }
        let lines = (start % LINE_DOUBLES + len).div_ceil(LINE_DOUBLES);
        self.lines_missed += lines as u64;
        self.used_lines += lines;
        self.entries.push((key, lines));
        while self.used_lines > self.cap_lines {
            let (_, l) = self.entries.remove(0);
            self.used_lines -= l;
        }
    }
}

/// Plane-id bases for the traces. Only uniqueness matters.
const STATE: u32 = 0;
const RHS: u32 = 64;
const TAB_LAMBDA: u32 = 128;
const TAB_IRCP: u32 = 129;
const TAB_IRHO: u32 = 130;
const TAB_RHOD: u32 = 140;

/// Replay of `diffusion_rhs_cfg`: banded property pass over the ring
/// rows, then the fused T + species stencil pass over the same band
/// while its tables are hot. `state` has one ghost ring, `rhs` none.
pub fn diffusion_cost(
    nxi: usize,
    nyi: usize,
    n_species: usize,
    quantum: usize,
    tile_rows: usize,
    fast_div: bool,
) -> KernelCost {
    let n = n_species;
    let nxr = nxi + 2;
    let pitch_s = pad(nxr, quantum);
    let pitch_r = pad(nxi, quantum);
    let band_h = if tile_rows == 0 { nyi } else { tile_rows };
    let mut cache = RowCache::new(CACHE_DOUBLES);
    let mut cost = KernelCost::default();

    let mut j0 = 0usize;
    while j0 < nyi {
        let j1 = (j0 + band_h - 1).min(nyi - 1);
        // Property pass: ring rows [j0-1, j1+1] in stored-row indices
        // [j0, j1+2]; the tables are scratch rows reused across bands.
        for (r, j) in (j0..=j1 + 2).enumerate() {
            for v in 0..n {
                cache.touch(STATE + v as u32, j as u32, j * pitch_s, nxr);
            }
            cache.touch(TAB_LAMBDA, r as u32, r * nxr, nxr);
            cache.touch(TAB_IRCP, r as u32, r * nxr, nxr);
            cache.touch(TAB_IRHO, r as u32, r * nxr, nxr);
            for v in 0..n {
                cache.touch(TAB_RHOD + v as u32, r as u32, r * nxr, nxr);
            }
            cost.scalar_flops +=
                (nxr as u64) * (PROP_FLOPS_BASE + PROP_FLOPS_PER_SPECIES * n as u64);
        }
        // Stencil pass: every variable's 5-point sweep over the band.
        for j in j0..=j1 {
            let tj = j - j0 + 1;
            for dt in 0..3usize {
                cache.touch(TAB_LAMBDA, (tj + dt - 1) as u32, (tj + dt - 1) * nxr, nxr);
            }
            cache.touch(TAB_IRCP, tj as u32, tj * nxr, nxr);
            cache.touch(TAB_IRHO, tj as u32, tj * nxr, nxr);
            for v in 0..n {
                for dj in 0..3usize {
                    let sj = j + dj; // stored rows j-1..j+1 are j..j+2
                    cache.touch(STATE + v as u32, sj as u32, sj * pitch_s, nxr);
                }
                if v > 0 {
                    for dt in 0..3usize {
                        let tr = tj + dt - 1;
                        cache.touch(TAB_RHOD + v as u32 - 1, tr as u32, tr * nxr, nxr);
                    }
                }
                cache.touch(RHS + v as u32, j as u32, j * pitch_r, nxi);
            }
            cost.vector_flops += (nxi * n) as u64 * DIFF_STENCIL_VEC_FLOPS;
            if fast_div {
                cost.vector_flops += (nxi * n) as u64 * 2;
            } else {
                cost.scalar_flops += (nxi * n) as u64 * 2 * DIV_FLOPS;
            }
            cost.cells += nxi as u64;
        }
        j0 = j1 + 1;
    }
    cost.lines_missed = cache.lines_missed;
    cost
}

/// Replay of `compute_rhs_cfg`: per band, the x-sweep reads each
/// variable row and accumulates into `rhs`, then the y-sweep re-reads
/// the four-row reconstruction window and both adjacent `rhs` rows.
/// The per-row flux staging buffers are band-resident scratch and are
/// charged nothing. `pd` has two ghost rings, `rhs` none.
pub fn flux_cost(
    nxi: usize,
    nyi: usize,
    nvars: usize,
    quantum: usize,
    tile_rows: usize,
    fast_div: bool,
) -> KernelCost {
    let nxt = nxi + 4;
    let pitch_s = pad(nxt, quantum);
    let pitch_r = pad(nxi, quantum);
    let band_h = if tile_rows == 0 { nyi } else { tile_rows };
    let mut cache = RowCache::new(CACHE_DOUBLES);
    let mut cost = KernelCost::default();
    // Per interface: reconstruction + Riemann solve; per cell and axis:
    // two flux-divergence updates (divisions unless `fast_div` hoists
    // the reciprocal into a multiply).
    let per_axis_vec = (nxi as u64) * RIEMANN_VEC_FLOPS;
    let per_axis_scalar = (nxi as u64) * RIEMANN_SCALAR_FLOPS;
    let div_cells = (nxi as u64) * 2;

    let mut j0 = 0usize;
    while j0 < nyi {
        let j1 = (j0 + band_h - 1).min(nyi - 1);
        // x-sweep: one stored row per variable (stored row j + 2).
        for j in j0..=j1 {
            for v in 0..nvars as u32 {
                cache.touch(STATE + v, (j + 2) as u32, (j + 2) * pitch_s, nxt);
                cache.touch(RHS + v, j as u32, j * pitch_r, nxi);
            }
            cost.vector_flops += per_axis_vec;
            cost.scalar_flops += per_axis_scalar;
            if fast_div {
                cost.vector_flops += div_cells;
            } else {
                cost.scalar_flops += div_cells * DIV_FLOPS;
            }
            cost.cells += nxi as u64;
        }
        // y-sweep: interfaces j0..=j1(+1 on the last band); window rows
        // j-2..j+1, scatter into rhs rows j-1 and j.
        let iface_hi = if j1 == nyi - 1 { j1 + 1 } else { j1 };
        for j in j0..=iface_hi {
            for v in 0..nvars as u32 {
                for w in 0..4usize {
                    let sj = j + w; // stored rows j-2..j+1 are j..j+3
                    cache.touch(STATE + v, sj as u32, sj * pitch_s, nxt);
                }
                if j > 0 {
                    cache.touch(RHS + v, (j - 1) as u32, (j - 1) * pitch_r, nxi);
                }
                if j < nyi {
                    cache.touch(RHS + v, j as u32, j * pitch_r, nxi);
                }
            }
            cost.vector_flops += per_axis_vec;
            cost.scalar_flops += per_axis_scalar;
            if fast_div {
                cost.vector_flops += div_cells;
            } else {
                cost.scalar_flops += div_cells * DIV_FLOPS;
            }
        }
        j0 = j1 + 1;
    }
    cost.lines_missed = cache.lines_missed;
    cost
}

/// Replay of the SAMR/scaling Laplacian sweep: one streaming pass, three
/// state rows in the window, one `rhs` row out. Never tiled — row `j+1`
/// is the only cold row per step — so only the pitch matters here.
pub fn laplacian_cost(nxi: usize, nyi: usize, nvars: usize, quantum: usize) -> KernelCost {
    let nxt = nxi + 2;
    let pitch_s = pad(nxt, quantum);
    let pitch_r = pad(nxi, quantum);
    let mut cache = RowCache::new(CACHE_DOUBLES);
    let mut cost = KernelCost::default();
    for v in 0..nvars as u32 {
        for j in 0..nyi {
            for dj in 0..3usize {
                let sj = j + dj;
                cache.touch(STATE + v, sj as u32, sj * pitch_s, nxt);
            }
            cache.touch(RHS + v, j as u32, j * pitch_r, nxi);
            cost.vector_flops += (nxi as u64) * LAP_VEC_FLOPS;
        }
    }
    cost.cells = (nxi * nyi) as u64;
    cost.lines_missed = cache.lines_missed;
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_diffusion_clears_the_speedup_floor() {
        let base = diffusion_cost(96, 96, 9, 1, 0, false);
        let tiled = diffusion_cost(96, 96, 9, 8, 16, false);
        let s = tiled.cells_per_sec() / base.cells_per_sec();
        assert!(s >= 1.5, "modeled diffusion speedup {s} below 1.5");
    }

    #[test]
    fn tiled_flux_clears_the_speedup_floor() {
        let base = flux_cost(96, 96, 5, 1, 0, false);
        let tiled = flux_cost(96, 96, 5, 8, 8, false);
        let s = tiled.cells_per_sec() / base.cells_per_sec();
        assert!(s >= 1.3, "modeled flux speedup {s} below 1.3");
    }

    #[test]
    fn padding_saves_the_laplacian_line_splits() {
        // 126-wide rows: dense (quantum-1) rhs rows drift off line
        // boundaries and straddle an extra line; padded rows never do.
        let dense = laplacian_cost(126, 126, 2, 1);
        let padded = laplacian_cost(126, 126, 2, 8);
        assert!(padded.lines_missed < dense.lines_missed);
        assert_eq!(dense.cells, padded.cells);
    }

    #[test]
    fn costs_are_deterministic() {
        let a = diffusion_cost(64, 64, 9, 8, 16, false);
        let b = diffusion_cost(64, 64, 9, 8, 16, false);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.lines_missed, b.lines_missed);
    }
}
