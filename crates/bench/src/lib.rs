//! `cca-bench` — shared helpers for the experiment regenerators. Each
//! table and figure of the paper's evaluation has its own bench target
//! (see this crate's `Cargo.toml` and `EXPERIMENTS.md` at the workspace
//! root); `cargo bench` runs them all and prints the paper-shaped rows.

use std::time::Instant;

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Best-of-`n` wall-clock of a closure (reduces single-core scheduling
/// noise the way the paper's `getrusage` measurements did).
pub fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..n.max(1) {
        let (r, t) = timed(&mut f);
        if t < best {
            best = t;
        }
        out = Some(r);
    }
    (out.expect("n >= 1"), best)
}

/// Print a markdown-style header for an experiment.
pub fn banner(id: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("== {id}  ({paper_ref})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, t) = timed(|| (0..10_000).map(|i| i as f64).sum::<f64>());
        assert!(v > 0.0);
        assert!(t >= 0.0);
    }

    #[test]
    fn best_of_returns_min() {
        let (_, t) = best_of(3, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(t >= 0.0005);
    }
}
