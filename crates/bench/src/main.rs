//! `cca-bench` — the CI bench-smoke binary.
//!
//! Runs a deterministic, *counter-based* slice of the paper experiments
//! (no wall-clock anywhere, so the output is byte-stable across hosts
//! and runs) and writes it as `BENCH_PR2.json`:
//!
//! - **Table 4 slice** — NFE (right-hand-side evaluation) counters of the
//!   0D ignition problem through the component assembly vs the direct
//!   library path. Equal counters are the paper's "componentization adds
//!   no work" claim reduced to an integer.
//! - **Table 5 / Fig. 8 slice** — modeled weak-scaling runtimes of the
//!   reaction–diffusion workload on the calibrated CPlant cluster model
//!   (virtual clocks driven by the real SCMD messages).
//!
//! Usage:
//!
//! ```text
//! cca-bench smoke [PATH]   # run the slice, write JSON (default BENCH_PR2.json)
//! cca-bench check [PATH]   # validate an existing file, exit non-zero if malformed
//! ```
//!
//! `./ci.sh` runs both when `CI_BENCH=1` and compares the fresh output
//! against the committed baseline.

use cca_apps::scaling::{run_scaling, ScalingConfig};
use cca_chem::h2_air_reduced_5;
use cca_chem::systems::ConstantVolumeIgnition;
use cca_comm::ClusterModel;
use cca_components::ports::{OdeIntegratorPort, OdeRhsPort};
use cca_core::ParameterPort;
use cca_solvers::{Bdf, BdfConfig};
use std::process::ExitCode;
use std::rc::Rc;

const DEFAULT_PATH: &str = "BENCH_PR2.json";
const SCHEMA: &str = "cca-bench-smoke-v2";

/// Stoichiometric H2-air for an n-species table (H2, O2 first; N2 last).
fn stoich(n: usize) -> Vec<f64> {
    let (w_h2, w_o2, w_n2) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; n];
    y[0] = w_h2 / total;
    y[1] = w_o2 / total;
    y[n - 1] = w_n2 / total;
    y
}

/// NFE of the direct library path (Table 4's "C-code" column).
fn nfe_direct(t_end: f64) -> usize {
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let sys = ConstantVolumeIgnition::new(mech, 1500.0, 101_325.0, &y0);
    let mut state = sys.pack_state(1500.0, &y0, 101_325.0);
    let bdf = Bdf::new(BdfConfig {
        rtol: 1e-8,
        atol: 1e-14,
        h_init: Some(1e-8),
        ..BdfConfig::default()
    });
    bdf.integrate(&sys, 0.0, t_end, &mut state)
        .expect("direct path")
        .rhs_evals
}

/// NFE of the same physics behind CCA ports (Table 4's component column).
fn nfe_component(t_end: f64) -> usize {
    let mut fw = cca_apps::palette::standard_palette();
    cca_core::script::run_script(
        &mut fw,
        "instantiate ThermoChemistryReduced chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate dPdt dpdt\n\
         instantiate problemModeler modeler\n\
         connect dpdt chemistry chem chemistry\n\
         connect modeler chemistry chem chemistry\n\
         connect modeler dpdt dpdt dpdt\n",
    )
    .expect("assembly");
    let rhs: Rc<dyn OdeRhsPort> = fw.get_provides_port("modeler", "rhs").expect("rhs port");
    let integ: Rc<dyn OdeIntegratorPort> = fw
        .get_provides_port("cvode", "integrator")
        .expect("integrator port");
    let cfg: Rc<dyn ParameterPort> = fw.get_provides_port("modeler", "config").expect("config");
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let mix = cca_chem::thermo::Mixture::new(&mech.species);
    cfg.set_parameter("density", mix.density(1500.0, 101_325.0, &y0));
    let mut state = vec![1500.0];
    state.extend_from_slice(&y0[..y0.len() - 1]);
    state.push(101_325.0);
    integ.set_tolerances(1e-8, 1e-14);
    integ.set_initial_step(Some(1e-8));
    integ
        .integrate(rhs, 0.0, t_end, &mut state)
        .expect("component path")
        .rhs_evals
}

fn smoke_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");

    // Table 4 slice: two integration lengths = the paper's two NFE levels.
    out.push_str("  \"table4_overhead\": [\n");
    let cases = [("dt1", 1.0e-6), ("dt10", 1.0e-5)];
    for (i, (tag, t_end)) in cases.iter().enumerate() {
        let nd = nfe_direct(*t_end);
        let nc = nfe_component(*t_end);
        let delta = nc as i64 - nd as i64;
        out.push_str(&format!(
            "    {{\"case\": \"{tag}\", \"nfe_direct\": {nd}, \
             \"nfe_component\": {nc}, \"nfe_delta\": {delta}}}{}\n",
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    // Weak-scaling slice: Table 5 problem sizes on a CPlant-like model.
    out.push_str("  \"weak_scaling_model\": [\n");
    let model = ClusterModel::cplant();
    let sizes = [50i64, 100, 175];
    let ranks = [1usize, 4, 16];
    for (si, &n) in sizes.iter().enumerate() {
        for (ri, &p) in ranks.iter().enumerate() {
            let r = run_scaling(
                &ScalingConfig {
                    n,
                    per_rank: true,
                    ranks: p,
                    steps: 5,
                    stages_per_step: 2,
                    work_per_cell_var: 0.5,
                },
                model,
            );
            let last = si + 1 == sizes.len() && ri + 1 == ranks.len();
            out.push_str(&format!(
                "    {{\"n\": {n}, \"ranks\": {p}, \"modeled_time_s\": {:e}, \
                 \"messages\": {}, \"bytes\": {}, \"checksum\": {:e}}}{}\n",
                r.modeled_time,
                r.messages,
                r.bytes,
                r.checksum,
                if last { "" } else { "," }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

/// Every number following a `"key":` in (our own, known-shape) JSON.
fn numbers_after(text: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Structural validation of a smoke file. Returns every problem found.
fn validate(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let nd = numbers_after(text, "nfe_direct");
    let nc = numbers_after(text, "nfe_component");
    if nd.len() != 2 || nc.len() != 2 {
        errs.push(format!(
            "want 2 table4 cases, found {} direct / {} component",
            nd.len(),
            nc.len()
        ));
    }
    for (d, c) in nd.iter().zip(&nc) {
        if d != c || *d <= 0.0 {
            errs.push(format!(
                "component path must do identical work: NFE {c} vs {d}"
            ));
        }
    }
    let times = numbers_after(text, "modeled_time_s");
    if times.len() != 9 {
        errs.push(format!("want 9 weak-scaling points, found {}", times.len()));
    }
    for t in &times {
        if !t.is_finite() || *t <= 0.0 {
            errs.push(format!("non-physical modeled time {t}"));
        }
    }
    errs
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str);
    let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
    match mode {
        Some("smoke") => {
            let json = smoke_json();
            let errs = validate(&json);
            if !errs.is_empty() {
                eprintln!("cca-bench: generated output failed self-check:");
                for e in &errs {
                    eprintln!("  - {e}");
                }
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cca-bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "cca-bench: wrote {path} ({} bytes, deterministic)",
                json.len()
            );
            ExitCode::SUCCESS
        }
        Some("check") => match std::fs::read_to_string(path) {
            Ok(text) => {
                let errs = validate(&text);
                if errs.is_empty() {
                    println!("cca-bench: {path} is well-formed");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("cca-bench: {path} is malformed:");
                    for e in &errs {
                        eprintln!("  - {e}");
                    }
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("cca-bench: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: cca-bench smoke [PATH] | cca-bench check [PATH]");
            ExitCode::FAILURE
        }
    }
}
