//! `cca-bench` — the CI bench-smoke binary.
//!
//! Runs a deterministic, *counter-based* slice of the paper experiments
//! (no wall-clock anywhere, so the output is byte-stable across hosts
//! and runs) and writes it as `BENCH_PR2.json`:
//!
//! - **Table 4 slice** — NFE (right-hand-side evaluation) counters of the
//!   0D ignition problem through the component assembly vs the direct
//!   library path. Equal counters are the paper's "componentization adds
//!   no work" claim reduced to an integer.
//! - **Table 5 / Fig. 8 slice** — modeled weak-scaling runtimes of the
//!   reaction–diffusion workload on the calibrated CPlant cluster model
//!   (virtual clocks driven by the real SCMD messages).
//!
//! Usage:
//!
//! ```text
//! cca-bench smoke [PATH]          # run the slice, write JSON (default BENCH_PR2.json)
//! cca-bench check [PATH]          # validate an existing file, exit non-zero if malformed
//! cca-bench serve [PATH]          # run the serving loadgen, write BENCH_PR3.json
//! cca-bench serve-check [PATH]    # validate an existing BENCH_PR3.json
//! cca-bench hotpath [PATH]        # run the allocation-discipline suite, write BENCH_PR4.json
//! cca-bench hotpath-check [PATH]  # validate an existing BENCH_PR4.json
//! cca-bench scaling [PATH]        # run the overlap/coalescing sweeps, write BENCH_PR5.json
//! cca-bench scaling-check [PATH]  # validate an existing BENCH_PR5.json
//! cca-bench samr [PATH]           # run the distributed-SAMR P sweep, write BENCH_PR7.json
//! cca-bench samr-check [PATH]     # validate an existing BENCH_PR7.json
//! cca-bench kernels [PATH]        # run the kernel layout/tiling sweep, write BENCH_PR9.json
//! cca-bench kernels-check [PATH]  # validate an existing BENCH_PR9.json
//! cca-bench fleet [PATH]          # run the serve-fleet shard sweep, write BENCH_PR10.json
//! cca-bench fleet-check [PATH]    # validate an existing BENCH_PR10.json
//! ```
//!
//! The `fleet` pair freezes the PR-10 sharded-serving contract: the
//! multi-tenant loadgen replayed at 1/2/4 shards (identical outcome
//! checksums — the schedule moves, the physics must not), a ≥ 3×
//! modeled-throughput scaling floor at 4 shards, a steal-vs-pinned
//! comparison whose p99 turnaround must improve by ≥ 15%, and the
//! deadline-admission scenario (provably-late jobs rejected or
//! downgraded, zero lost jobs everywhere).
//!
//! The `kernels` pair freezes the PR-9 layout/tiling contract: the
//! diffusion RHS and Godunov flux kernels run for real at every pitch ×
//! tile × fast-div configuration (zero checksum drift on bit-identity
//! configurations, tolerance-gated fast-div), and a deterministic machine
//! model (`model` module: row-LRU cache replay + roofline cycles) freezes
//! per-kernel cells/second and the tiled-vs-dense-untiled speedups.
//!
//! The `serve` pair freezes the PR-3 serving-subsystem loadgen (200 jobs,
//! 25% duplicates, fault and deadline injection) — the server schedules
//! on a virtual tick clock, so every counter *and every latency
//! percentile* in the file is deterministic.
//!
//! The `hotpath` pair freezes the PR-4 memory discipline: each SAMR hot
//! loop (RKC macro step, ghost exchange, kinetics rate evaluation) is
//! run once cold — every scratch checkout allocates — and then warm for
//! a fixed iteration count, recording the `cca_core::scratch` pool-miss
//! counter. The contract is **zero steady-state allocation events**;
//! checkout counts pin the amount of traffic the pool absorbs.
//!
//! The `samr` pair freezes the PR-7 distributed-SAMR contract: the
//! adaptive reaction–diffusion run at P ∈ {1, 2, 4, 6}, audited against
//! its emitted comm plan, with zero checksum drift from the P = 1 bits
//! and regrid-time rebalancing migrating at least one patch at P > 1.
//!
//! The `scaling` pair freezes the PR-5 nonblocking-halo contract: weak
//! and strong sweeps of the distributed diffusion workload, each point
//! run three ways (blocking two-pass exchange, overlapped single-pass
//! without coalescing, overlapped with per-neighbour coalescing). The
//! file pins bit-identical checksums across all three schedules, the
//! exact 9× message reduction from coalescing, and a ≥ 10% modeled
//! runtime improvement at the strong-scaling knee (64² global on 16
//! ranks of the CPlant model with communication-bound work).
//!
//! `./ci.sh` runs all of it when `CI_BENCH=1` and compares the fresh
//! output against the committed baselines.

mod model;

use cca_apps::recover::run_samr_recovering;
use cca_apps::samr::{run_samr, SamrConfig};
use cca_apps::scaling::{run_scaling, ScalingConfig};
use cca_chem::systems::ConstantVolumeIgnition;
use cca_chem::{h2_air_19, h2_air_reduced_5};
use cca_comm::ClusterModel;
use cca_components::diffusion::diffusion_rhs_with_kernels;
use cca_components::ports::{
    ChemistryKernel, ChemistrySourcePort, OdeIntegratorPort, OdeRhsPort, TransportKernel,
    TransportPort,
};
use cca_core::{scratch, ParameterPort};
use cca_hydro_solver::limiter::Limiter;
use cca_hydro_solver::muscl::compute_rhs_cfg;
use cca_hydro_solver::riemann::GodunovFlux;
use cca_hydro_solver::state::{prim_to_cons, Prim, NVARS};
use cca_mesh::ghost::{fill_coarse_fine_ghosts, fill_same_level_ghosts};
use cca_mesh::{DataObject, Hierarchy, IntBox, KernelConfig, PatchData};
use cca_solvers::{Bdf, BdfConfig, Rkc, RkcConfig};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

const DEFAULT_PATH: &str = "BENCH_PR2.json";
const SCHEMA: &str = "cca-bench-smoke-v2";
const SERVE_PATH: &str = "BENCH_PR3.json";
const SERVE_SCHEMA: &str = "cca-serve-loadgen-v1";
const HOTPATH_PATH: &str = "BENCH_PR4.json";
const HOTPATH_SCHEMA: &str = "cca-bench-hotpath-v1";
const SCALING_PATH: &str = "BENCH_PR5.json";
const SCALING_SCHEMA: &str = "cca-bench-scaling-v1";
const SAMR_PATH: &str = "BENCH_PR7.json";
const SAMR_SCHEMA: &str = "cca-bench-samr-v1";
const CKPT_PATH: &str = "BENCH_PR8.json";
const CKPT_SCHEMA: &str = "cca-bench-ckpt-v1";
const KERNELS_PATH: &str = "BENCH_PR9.json";
const KERNELS_SCHEMA: &str = "cca-bench-kernels-v1";
const FLEET_PATH: &str = "BENCH_PR10.json";
const FLEET_SCHEMA: &str = "cca-bench-fleet-v1";

/// Stoichiometric H2-air for an n-species table (H2, O2 first; N2 last).
fn stoich(n: usize) -> Vec<f64> {
    let (w_h2, w_o2, w_n2) = (2.0 * 2.016, 31.998, 3.76 * 28.014);
    let total = w_h2 + w_o2 + w_n2;
    let mut y = vec![0.0; n];
    y[0] = w_h2 / total;
    y[1] = w_o2 / total;
    y[n - 1] = w_n2 / total;
    y
}

/// NFE of the direct library path (Table 4's "C-code" column).
fn nfe_direct(t_end: f64) -> usize {
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let sys = ConstantVolumeIgnition::new(mech, 1500.0, 101_325.0, &y0);
    let mut state = sys.pack_state(1500.0, &y0, 101_325.0);
    let bdf = Bdf::new(BdfConfig {
        rtol: 1e-8,
        atol: 1e-14,
        h_init: Some(1e-8),
        ..BdfConfig::default()
    });
    bdf.integrate(&sys, 0.0, t_end, &mut state)
        .expect("direct path")
        .rhs_evals
}

/// NFE of the same physics behind CCA ports (Table 4's component column).
fn nfe_component(t_end: f64) -> usize {
    let mut fw = cca_apps::palette::standard_palette();
    cca_core::script::run_script(
        &mut fw,
        "instantiate ThermoChemistryReduced chem\n\
         instantiate CvodeComponent cvode\n\
         instantiate dPdt dpdt\n\
         instantiate problemModeler modeler\n\
         connect dpdt chemistry chem chemistry\n\
         connect modeler chemistry chem chemistry\n\
         connect modeler dpdt dpdt dpdt\n",
    )
    .expect("assembly");
    let rhs: Rc<dyn OdeRhsPort> = fw.get_provides_port("modeler", "rhs").expect("rhs port");
    let integ: Rc<dyn OdeIntegratorPort> = fw
        .get_provides_port("cvode", "integrator")
        .expect("integrator port");
    let cfg: Rc<dyn ParameterPort> = fw.get_provides_port("modeler", "config").expect("config");
    let mech = h2_air_reduced_5();
    let y0 = stoich(mech.n_species());
    let mix = cca_chem::thermo::Mixture::new(&mech.species);
    cfg.set_parameter("density", mix.density(1500.0, 101_325.0, &y0));
    let mut state = vec![1500.0];
    state.extend_from_slice(&y0[..y0.len() - 1]);
    state.push(101_325.0);
    integ.set_tolerances(1e-8, 1e-14);
    integ.set_initial_step(Some(1e-8));
    integ
        .integrate(rhs, 0.0, t_end, &mut state)
        .expect("component path")
        .rhs_evals
}

fn smoke_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");

    // Table 4 slice: two integration lengths = the paper's two NFE levels.
    out.push_str("  \"table4_overhead\": [\n");
    let cases = [("dt1", 1.0e-6), ("dt10", 1.0e-5)];
    for (i, (tag, t_end)) in cases.iter().enumerate() {
        let nd = nfe_direct(*t_end);
        let nc = nfe_component(*t_end);
        let delta = nc as i64 - nd as i64;
        out.push_str(&format!(
            "    {{\"case\": \"{tag}\", \"nfe_direct\": {nd}, \
             \"nfe_component\": {nc}, \"nfe_delta\": {delta}}}{}\n",
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    // Weak-scaling slice: Table 5 problem sizes on a CPlant-like model.
    out.push_str("  \"weak_scaling_model\": [\n");
    let model = ClusterModel::cplant();
    let sizes = [50i64, 100, 175];
    let ranks = [1usize, 4, 16];
    for (si, &n) in sizes.iter().enumerate() {
        for (ri, &p) in ranks.iter().enumerate() {
            let r = run_scaling(
                &ScalingConfig {
                    n,
                    per_rank: true,
                    ranks: p,
                    steps: 5,
                    stages_per_step: 2,
                    work_per_cell_var: 0.5,
                    audit: true,
                    ..ScalingConfig::default()
                },
                model,
            );
            let last = si + 1 == sizes.len() && ri + 1 == ranks.len();
            out.push_str(&format!(
                "    {{\"n\": {n}, \"ranks\": {p}, \"modeled_time_s\": {:e}, \
                 \"messages\": {}, \"bytes\": {}, \"checksum\": {:e}}}{}\n",
                r.modeled_time,
                r.messages,
                r.bytes,
                r.checksum,
                if last { "" } else { "," }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

/// One point of the overlap/coalescing sweep: the same physics run
/// under the three exchange schedules.
struct OverlapPoint {
    n: i64,
    per_rank: bool,
    ranks: usize,
    work_per_cell_var: f64,
}

impl OverlapPoint {
    fn json(&self) -> String {
        let base = ScalingConfig {
            n: self.n,
            per_rank: self.per_rank,
            ranks: self.ranks,
            steps: 5,
            stages_per_step: 2,
            work_per_cell_var: self.work_per_cell_var,
            // Every bench run is audited: the recorded comm trace must
            // refine the static plan (recording never touches the
            // virtual clocks, so timings are unchanged).
            audit: true,
            ..ScalingConfig::default()
        };
        let model = ClusterModel::cplant();
        let blocking = run_scaling(&base, model);
        let naive = run_scaling(
            &ScalingConfig {
                overlap: true,
                coalesce: false,
                ..base
            },
            model,
        );
        let overlap = run_scaling(
            &ScalingConfig {
                overlap: true,
                ..base
            },
            model,
        );
        // The contract, reduced to integers: all three schedules produce
        // the same bits, and coalescing folds NVARS messages into one.
        let checksum_drift = u64::from(
            blocking.checksum.to_bits() != overlap.checksum.to_bits()
                || blocking.checksum.to_bits() != naive.checksum.to_bits(),
        );
        let improvement = (blocking.modeled_time - overlap.modeled_time) / blocking.modeled_time;
        format!(
            "{{\"n\": {}, \"per_rank\": {}, \"ranks\": {}, \
             \"t_blocking_s\": {:e}, \"t_uncoalesced_s\": {:e}, \"t_overlap_s\": {:e}, \
             \"improvement\": {:e}, \"checksum\": {:e}, \"checksum_drift\": {}, \
             \"halo_messages_uncoalesced\": {}, \"halo_messages\": {}, \
             \"messages_coalesced\": {}, \"halo_bytes\": {}}}",
            self.n,
            self.per_rank,
            self.ranks,
            blocking.modeled_time,
            naive.modeled_time,
            overlap.modeled_time,
            improvement,
            blocking.checksum,
            checksum_drift,
            naive.halo_messages,
            overlap.halo_messages,
            overlap.messages_coalesced,
            overlap.halo_bytes,
        )
    }
}

/// PR-5 overlap/coalescing sweeps, frozen as JSON.
fn scaling_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCALING_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    // Weak sweep (per-rank tiles, compute-heavy as in Table 5) and
    // strong sweep (fixed global mesh, shrinking tiles as in Fig. 9).
    let sweeps: [(&str, Vec<OverlapPoint>); 2] = [
        (
            "weak_sweep",
            [4usize, 16]
                .iter()
                .map(|&p| OverlapPoint {
                    n: 50,
                    per_rank: true,
                    ranks: p,
                    work_per_cell_var: 0.5,
                })
                .collect(),
        ),
        (
            "strong_sweep",
            [4usize, 16]
                .iter()
                .map(|&p| OverlapPoint {
                    n: 96,
                    per_rank: false,
                    ranks: p,
                    work_per_cell_var: 0.5,
                })
                .collect(),
        ),
    ];
    for (name, points) in &sweeps {
        out.push_str(&format!("  \"{name}\": [\n"));
        for (i, pt) in points.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                pt.json(),
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
    }
    // The knee: the paper's worst strong-scaling point is a small tile
    // on many processors (29² per rank at P = 48). A 16² tile per rank
    // with communication-bound work is where overlap pays most — the
    // acceptance floor is a 10% modeled-runtime improvement.
    out.push_str("  \"knee\": ");
    out.push_str(
        &OverlapPoint {
            n: 64,
            per_rank: false,
            ranks: 16,
            work_per_cell_var: 2.0e-4,
        }
        .json(),
    );
    out.push_str(",\n  \"knee_improvement_floor\": 1e-1\n}\n");
    out
}

/// Structural + invariant validation of a scaling file. Load-bearing:
/// zero checksum drift everywhere (overlap changes the schedule, never
/// the bits), exact 9× coalescing, and the knee improvement floor.
fn validate_scaling(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCALING_SCHEMA}\"")) {
        errs.push(format!(
            "missing or wrong schema tag (want {SCALING_SCHEMA})"
        ));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let points = numbers_after(text, "checksum_drift").len();
    if points != 5 {
        errs.push(format!(
            "want 5 sweep points (2 weak + 2 strong + knee), found {points}"
        ));
    }
    for (i, v) in numbers_after(text, "checksum_drift").iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "point {i}: overlapped schedule drifted from the blocking bits"
            ));
        }
    }
    for key in ["t_blocking_s", "t_uncoalesced_s", "t_overlap_s"] {
        for (i, v) in numbers_after(text, key).iter().enumerate() {
            if !v.is_finite() || *v <= 0.0 {
                errs.push(format!("point {i}: non-physical \"{key}\" = {v}"));
            }
        }
    }
    let naive = numbers_after(text, "halo_messages_uncoalesced");
    let coalesced = numbers_after(text, "halo_messages");
    for (i, (u, c)) in naive.iter().zip(&coalesced).enumerate() {
        if *c < 1.0 || *u != c * 9.0 {
            errs.push(format!(
                "point {i}: coalescing must fold exactly 9 messages into 1 \
                 ({u} uncoalesced vs {c} coalesced)"
            ));
        }
    }
    let saved = numbers_after(text, "messages_coalesced");
    for (i, (s, c)) in saved.iter().zip(&coalesced).enumerate() {
        if *s != c * 8.0 {
            errs.push(format!(
                "point {i}: {s} messages saved does not match 8 per \
                 coalesced message ({c})"
            ));
        }
    }
    let improvements = numbers_after(text, "improvement");
    let floor = numbers_after(text, "knee_improvement_floor");
    match (improvements.last(), floor.first()) {
        (Some(knee), Some(floor)) if knee >= floor => {}
        (Some(knee), Some(floor)) => errs.push(format!(
            "knee improvement {knee} below the {floor} acceptance floor"
        )),
        _ => errs.push("missing knee improvement or its floor".into()),
    }
    errs
}

/// PR-7 distributed-SAMR sweep, frozen as JSON: the adaptive
/// reaction–diffusion run of `cca_apps::samr` at P ∈ {1, 2, 4, 6} on the
/// CPlant model, every run audited against its emitted comm plan. The
/// load-bearing numbers are the zero in every `checksum_drift` (the
/// distributed hierarchy reproduces the single-rank bits exactly, regrid
/// and migration traffic included) and the nonzero total `migrations`
/// (regrid-time rebalancing actually moved patches between ranks).
fn samr_json() -> String {
    let model = ClusterModel::cplant();
    let ranks = [1usize, 2, 4, 6];
    let runs: Vec<_> = ranks
        .iter()
        .map(|&p| {
            run_samr(
                &SamrConfig {
                    ranks: p,
                    audit: true,
                    ..SamrConfig::default()
                },
                model,
            )
        })
        .collect();
    let base_bits = runs[0].checksum.to_bits();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SAMR_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str("  \"p_sweep\": [\n");
    for (i, (&p, r)) in ranks.iter().zip(&runs).enumerate() {
        let drift = u64::from(r.checksum.to_bits() != base_bits);
        out.push_str(&format!(
            "    {{\"ranks\": {p}, \"modeled_time_s\": {:e}, \"messages\": {}, \
             \"bytes\": {}, \"messages_coalesced\": {}, \"regrids\": {}, \
             \"migrations\": {}, \"fine_cells\": {}, \"checksum\": {:e}, \
             \"checksum_drift\": {drift}}}{}\n",
            r.modeled_time,
            r.messages,
            r.bytes,
            r.messages_coalesced,
            r.regrids,
            r.migrations,
            r.fine_cells,
            r.checksum,
            if i + 1 < ranks.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let migrated: usize = runs.iter().skip(1).map(|r| r.migrations).sum();
    out.push_str(&format!("  \"migrations_at_p_gt_1\": {migrated}\n}}\n"));
    out
}

/// Structural + invariant validation of a distributed-SAMR file: zero
/// checksum drift at every P, an identical final hierarchy everywhere,
/// periodic regridding exercised, and at least one patch migration at
/// some P > 1.
fn validate_samr(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SAMR_SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {SAMR_SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let drifts = numbers_after(text, "checksum_drift");
    if drifts.len() != 4 {
        errs.push(format!("want 4 P-sweep points, found {}", drifts.len()));
    }
    for (i, v) in drifts.iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "point {i}: distributed run drifted from the P=1 bits"
            ));
        }
    }
    for (i, v) in numbers_after(text, "modeled_time_s").iter().enumerate() {
        if !v.is_finite() || *v <= 0.0 {
            errs.push(format!("point {i}: non-physical modeled time {v}"));
        }
    }
    for (i, v) in numbers_after(text, "regrids").iter().enumerate() {
        if *v < 2.0 {
            errs.push(format!(
                "point {i}: only {v} regrid(s); periodic regridding never ran"
            ));
        }
    }
    let fine = numbers_after(text, "fine_cells");
    if fine.windows(2).any(|w| w[0] != w[1]) {
        errs.push(format!("final fine level differs across P: {fine:?}"));
    }
    if fine.first().is_none_or(|v| *v < 1.0) {
        errs.push("the estimator never refined anything".into());
    }
    if numbers_after(text, "migrations_at_p_gt_1")
        .first()
        .is_none_or(|v| *v < 1.0)
    {
        errs.push("no P > 1 run migrated a patch; rebalancing untested".into());
    }
    errs
}

/// PR-8 checkpoint/restart drill, frozen as JSON: the adaptive SAMR run
/// with a coordinated checkpoint every 2 steps, a rank killed at step 3,
/// and recovery from the last complete set at P' ∈ {4, 1, 2, 6} on the
/// CPlant model. The load-bearing numbers are the zero in every
/// `checksum_drift` (a recovered run — at the same or a different rank
/// count — reproduces the uninterrupted bits exactly) and the zero
/// `ckpt_drift` (checkpointing itself never perturbs a field bit);
/// `ckpt_overhead` records what the periodic snapshots cost in modeled
/// time.
fn ckpt_json() -> String {
    let model = ClusterModel::cplant();
    let cfg = SamrConfig {
        ranks: 4,
        ckpt_interval: 2,
        audit: true,
        ..SamrConfig::default()
    };
    let base = run_samr(
        &SamrConfig {
            ckpt_interval: 0,
            ..cfg
        },
        model,
    );
    let with_ckpt = run_samr(&cfg, model);
    let fault = cca_ckpt::FaultPlan {
        rank: 1,
        step: 3,
        mid_snapshot: false,
    };
    let restart_ranks = [4usize, 1, 2, 6];
    let recoveries: Vec<_> = restart_ranks
        .iter()
        .map(|&p| (p, run_samr_recovering(&cfg, model, fault, p)))
        .collect();
    let base_bits = base.checksum.to_bits();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{CKPT_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str(&format!(
        "  \"uninterrupted\": {{\"ranks\": {}, \"modeled_time_s\": {:e}, \
         \"checksum\": {:e}, \"fine_cells\": {}}},\n",
        cfg.ranks, base.modeled_time, base.checksum, base.fine_cells
    ));
    let ckpt_drift = u64::from(with_ckpt.checksum.to_bits() != base_bits);
    out.push_str(&format!(
        "  \"checkpointing\": {{\"interval\": {}, \"checkpoints\": {}, \
         \"modeled_time_s\": {:e}, \"ckpt_overhead\": {:e}, \"ckpt_drift\": {ckpt_drift}}},\n",
        cfg.ckpt_interval,
        with_ckpt.checkpoints,
        with_ckpt.modeled_time,
        (with_ckpt.modeled_time - base.modeled_time) / base.modeled_time,
    ));
    out.push_str("  \"recoveries\": [\n");
    for (i, (p, rec)) in recoveries.iter().enumerate() {
        let drift = u64::from(rec.result.checksum.to_bits() != base_bits);
        out.push_str(&format!(
            "    {{\"killed_at_ranks\": {}, \"restart_ranks\": {p}, \
             \"resumed_from_step\": {}, \"sets_before_kill\": {}, \
             \"modeled_time_s\": {:e}, \"checksum\": {:e}, \"checksum_drift\": {drift}}}{}\n",
            cfg.ranks,
            rec.resumed_from,
            rec.checkpoints_before_kill,
            rec.result.modeled_time,
            rec.result.checksum,
            if i + 1 < recoveries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural + invariant validation of a checkpoint/restart file: zero
/// drift for the checkpointing run and every recovery (same-P and
/// elastic), the cadence actually fired, and every recovery resumed from
/// a committed set.
fn validate_ckpt(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{CKPT_SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {CKPT_SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    if numbers_after(text, "ckpt_drift").first() != Some(&0.0) {
        errs.push("checkpointing perturbed the run's bits".into());
    }
    if numbers_after(text, "checkpoints")
        .first()
        .is_none_or(|v| *v < 1.0)
    {
        errs.push("the checkpoint cadence never fired".into());
    }
    let drifts = numbers_after(text, "checksum_drift");
    if drifts.len() != 4 {
        errs.push(format!("want 4 recovery points, found {}", drifts.len()));
    }
    for (i, v) in drifts.iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "recovery {i}: recovered run drifted from the uninterrupted bits"
            ));
        }
    }
    for (i, v) in numbers_after(text, "resumed_from_step").iter().enumerate() {
        if *v < 1.0 {
            errs.push(format!("recovery {i}: resumed from step {v}"));
        }
    }
    for (i, v) in numbers_after(text, "sets_before_kill").iter().enumerate() {
        if *v < 1.0 {
            errs.push(format!("recovery {i}: no complete set before the kill"));
        }
    }
    for (i, v) in numbers_after(text, "modeled_time_s").iter().enumerate() {
        if !v.is_finite() || *v <= 0.0 {
            errs.push(format!("point {i}: non-physical modeled time {v}"));
        }
    }
    errs
}

/// Counters of one hot loop: a cold pass (empty thread pool, every
/// checkout allocates), one settling pass, then a fixed warm run.
struct HotLoop {
    name: &'static str,
    iterations: u64,
    cold_alloc_events: u64,
    steady_alloc_events: u64,
    steady_checkouts: u64,
}

/// Run `step` under the pool-miss counters. The returned numbers are
/// pure functions of the workload (no clocks, no addresses), so the
/// committed baseline can be compared byte-for-byte.
fn measure_hot_loop(name: &'static str, mut step: impl FnMut()) -> HotLoop {
    const ITERATIONS: u64 = 25;
    scratch::clear_thread_pools();
    let cold_from = scratch::thread_alloc_events();
    step(); // cold: the pool is empty, every checkout is a heap miss
    let cold_alloc_events = scratch::thread_alloc_events() - cold_from;
    step(); // settle: lets buffers reach their high-water capacities
    let alloc_from = scratch::thread_alloc_events();
    let checkout_from = scratch::checkouts();
    for _ in 0..ITERATIONS {
        step();
    }
    HotLoop {
        name,
        iterations: ITERATIONS,
        cold_alloc_events,
        steady_alloc_events: scratch::thread_alloc_events() - alloc_from,
        steady_checkouts: scratch::checkouts() - checkout_from,
    }
}

/// RKC macro step over a 512-cell 1D diffusion stencil — the shape of
/// the reaction–diffusion assembly's explicit hot loop. Polynomial
/// initial data keeps every number libm-free and host-stable.
fn hotpath_rkc() -> HotLoop {
    let n = 512usize;
    let sys = (n, |_t: f64, y: &[f64], dydt: &mut [f64]| {
        for i in 0..y.len() {
            let l = if i == 0 { y[i] } else { y[i - 1] };
            let r = if i + 1 == y.len() { y[i] } else { y[i + 1] };
            dydt[i] = l - 2.0 * y[i] + r;
        }
    });
    let y0: Vec<f64> = (0..n)
        .map(|i| (i * (n - i)) as f64 / (n * n) as f64)
        .collect();
    let rkc = Rkc::new(RkcConfig::default());
    let mut y = vec![0.0; n];
    measure_hot_loop("rkc_macro_step", || {
        y.copy_from_slice(&y0);
        rkc.integrate(&sys, 0.0, 1.0, &mut y, |_, _| 4.0, 1e-2)
            .expect("diffusion decay integrates");
    })
}

/// Ghost exchange over a two-level hierarchy with two fine patches —
/// same-level pack/unpack plus coarse–fine prolongation, the loops the
/// clone-free `cca_mesh::ghost` rewrite targets.
fn hotpath_ghost() -> HotLoop {
    let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [1.0 / 16.0; 2], 2);
    let a = IntBox::new([4, 4], [7, 11]).refine(2);
    let b = IntBox::new([8, 4], [11, 11]).refine(2);
    h.set_level_boxes(1, &[a, b]);
    let coarse_id = h.levels[0].patches[0].id;
    let ids: Vec<usize> = h.levels[1].patches.iter().map(|p| p.id).collect();
    let mut dobj = DataObject::new(2, 2);
    dobj.allocate(0, coarse_id, h.levels[0].patches[0].interior);
    dobj.allocate(1, ids[0], a);
    dobj.allocate(1, ids[1], b);
    dobj.patch_mut(0, coarse_id)
        .expect("allocated")
        .fill_var(0, 1.0);
    measure_hot_loop("ghost_exchange", || {
        fill_same_level_ghosts(&mut dobj, &h, 0);
        fill_same_level_ghosts(&mut dobj, &h, 1);
        fill_coarse_fine_ghosts(&mut dobj, &h, 1);
    })
}

/// Production rates of the full 9-species/19-reaction mechanism at three
/// temperatures — the vectorizable rate-table loop. The Arrhenius table
/// itself is built once per `Mechanism` (OnceLock), so only the two
/// per-call thermodynamic workspaces touch the pool.
fn hotpath_kinetics() -> HotLoop {
    let mech = h2_air_19();
    let n = mech.n_species();
    let c: Vec<f64> = (0..n).map(|i| 1.0e-3 + 2.0e-4 * i as f64).collect();
    let mut wdot = vec![0.0; n];
    measure_hot_loop("kinetics_rates", || {
        for t in [800.0, 1500.0, 2500.0] {
            mech.production_rates(t, &c, &mut wdot);
        }
    })
}

/// PR-4 allocation-discipline suite, frozen as JSON.
fn hotpath_json() -> String {
    let loops = [hotpath_rkc(), hotpath_ghost(), hotpath_kinetics()];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{HOTPATH_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str(&format!(
        "  \"pooling_enabled\": {},\n",
        scratch::pooling_enabled()
    ));
    out.push_str("  \"hot_loops\": [\n");
    for (i, l) in loops.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"loop\": \"{}\", \"iterations\": {}, \"cold_alloc_events\": {}, \
             \"steady_alloc_events\": {}, \"steady_checkouts\": {}}}{}\n",
            l.name,
            l.iterations,
            l.cold_alloc_events,
            l.steady_alloc_events,
            l.steady_checkouts,
            if i + 1 < loops.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"retained_buffers\": {}\n}}\n",
        scratch::retained_buffers()
    ));
    out
}

/// Structural + invariant validation of a hotpath file. The load-bearing
/// invariant is the zero in every `steady_alloc_events`: a warm SAMR hot
/// loop must never touch the heap.
fn validate_hotpath(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{HOTPATH_SCHEMA}\"")) {
        errs.push(format!(
            "missing or wrong schema tag (want {HOTPATH_SCHEMA})"
        ));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let steady = numbers_after(text, "steady_alloc_events");
    if steady.len() != 3 {
        errs.push(format!("want 3 hot loops, found {}", steady.len()));
    }
    for (i, v) in steady.iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "hot loop {i} allocates in steady state: {v} events"
            ));
        }
    }
    for (key, floor) in [
        ("cold_alloc_events", 1.0),
        ("steady_checkouts", 1.0),
        ("iterations", 1.0),
    ] {
        for (i, v) in numbers_after(text, key).iter().enumerate() {
            if *v < floor {
                errs.push(format!("hot loop {i}: \"{key}\" = {v} below {floor}"));
            }
        }
    }
    if numbers_after(text, "retained_buffers")
        .first()
        .is_none_or(|v| *v < 1.0)
    {
        errs.push("pool retained no buffers after the suite".into());
    }
    errs
}

/// PR-3 serving-subsystem loadgen, frozen as JSON. Every value is a pure
/// function of the loadgen seed (virtual-clock scheduling), so CI can
/// diff this byte-for-byte against the committed baseline.
fn serve_json() -> String {
    let cfg = cca_serve::LoadgenConfig::default();
    let r = cca_serve::run_loadgen(&cfg);
    let s = &r.stats;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SERVE_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"jobs\": {}, \"duplicate_requests\": {}, \"seed\": {}, \
         \"sessions\": {}, \"queue_capacity\": {}, \"burst\": {}, \"cache_capacity\": {}}},\n",
        cfg.jobs,
        r.duplicate_requests,
        cfg.seed,
        cfg.sessions,
        cfg.queue_capacity,
        cfg.burst,
        cfg.cache_capacity
    ));
    out.push_str(&format!(
        "  \"outcomes\": {{\"completed\": {}, \"cached\": {}, \"cancelled_deadline\": {}, \
         \"cancelled_user\": {}, \"failed\": {}}},\n",
        r.completed, r.cached, r.cancelled_deadline, r.cancelled_user, r.failed
    ));
    out.push_str(&format!(
        "  \"service\": {{\"rejection_events\": {}, \"retries\": {}, \"poisonings\": {}, \
         \"coalesced\": {}, \"cache_hit_ratio\": {:e}, \"total_ticks\": {}, \
         \"throughput_jobs_per_kilotick\": {:e}}},\n",
        r.rejection_events,
        s.retries,
        s.poisonings,
        s.coalesced,
        r.cache_hit_ratio,
        r.total_ticks,
        r.throughput_jobs_per_kilotick
    ));
    out.push_str(&format!(
        "  \"queue_wait_ticks\": {{\"count\": {}, \"mean\": {:e}, \"p50\": {:e}, \
         \"p95\": {:e}, \"p99\": {:e}, \"max\": {:e}}},\n",
        s.queue_wait.count,
        s.queue_wait.mean,
        s.queue_wait.p50,
        s.queue_wait.p95,
        s.queue_wait.p99,
        s.queue_wait.max
    ));
    out.push_str(&format!(
        "  \"run_ticks\": {{\"count\": {}, \"mean\": {:e}, \"p50\": {:e}, \
         \"p95\": {:e}, \"p99\": {:e}, \"max\": {:e}}},\n",
        s.run_ticks.count,
        s.run_ticks.mean,
        s.run_ticks.p50,
        s.run_ticks.p95,
        s.run_ticks.p99,
        s.run_ticks.max
    ));
    out.push_str("  \"sessions\": [\n");
    for (i, sess) in s.sessions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"epoch\": {}, \"runs\": {}}}{}\n",
            sess.id,
            sess.epoch,
            sess.runs,
            if i + 1 < s.sessions.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural + invariant validation of a serve loadgen file.
fn validate_serve(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SERVE_SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {SERVE_SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let one = |key: &str, errs: &mut Vec<String>| -> f64 {
        let v = numbers_after(text, key);
        if v.len() != 1 {
            errs.push(format!("want exactly one \"{key}\", found {}", v.len()));
            return f64::NAN;
        }
        v[0]
    };
    let jobs = one("jobs", &mut errs);
    let dup = one("duplicate_requests", &mut errs);
    let resolved = [
        "completed",
        "cached",
        "cancelled_deadline",
        "cancelled_user",
        "failed",
    ]
    .iter()
    .map(|k| one(k, &mut errs))
    .sum::<f64>();
    if resolved != jobs {
        errs.push(format!(
            "lost jobs: {resolved} outcomes for {jobs} accepted submissions"
        ));
    }
    let cached = one("cached", &mut errs);
    if cached < dup {
        errs.push(format!(
            "cache hit count {cached} below duplicate count {dup}"
        ));
    }
    for key in [
        "rejection_events",
        "retries",
        "poisonings",
        "cancelled_deadline",
        "failed",
    ] {
        if one(key, &mut errs) < 1.0 {
            errs.push(format!("\"{key}\" was never exercised"));
        }
    }
    let epochs: f64 = numbers_after(text, "epoch").iter().sum();
    if epochs != one("poisonings", &mut errs) {
        errs.push(format!(
            "session epoch sum {epochs} must equal poisonings (panic isolation)"
        ));
    }
    errs
}

/// One latency block for the fleet file.
fn fleet_latency(name: &str, l: &cca_serve::LatencyStat, trailing_comma: bool) -> String {
    format!(
        "    \"{name}\": {{\"count\": {}, \"mean\": {:e}, \"p50\": {:e}, \
         \"p95\": {:e}, \"p99\": {:e}, \"max\": {:e}}}{}\n",
        l.count,
        l.mean,
        l.p50,
        l.p95,
        l.p99,
        l.max,
        if trailing_comma { "," } else { "" }
    )
}

/// The PR-10 fleet contract: shard-scaling sweep, steal-vs-pinned
/// comparison, and the deadline-admission scenario — all on the virtual
/// clock, so every number is byte-stable.
fn fleet_json() -> String {
    let cfg = cca_serve::FleetLoadgenConfig::default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FLEET_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"jobs\": {}, \"seed\": {}, \"sessions_per_shard\": {}, \
         \"queue_capacity\": {}, \"cache_capacity\": {}, \"burst\": {}}},\n",
        cfg.jobs,
        cfg.seed,
        cfg.sessions_per_shard,
        cfg.queue_capacity,
        cfg.cache_capacity,
        cfg.burst
    ));

    // Shard-scaling sweep: same request stream, growing fleet.
    let sweep: Vec<cca_serve::FleetLoadgenReport> = [1usize, 2, 4]
        .iter()
        .map(|&shards| {
            cca_serve::run_fleet_loadgen(&cca_serve::FleetLoadgenConfig {
                shards,
                ..cca_serve::FleetLoadgenConfig::default()
            })
        })
        .collect();
    let base_checksum = sweep[0].outcome_checksum;
    out.push_str("  \"shard_scaling\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            "    {{\"shards\": {}, \"total_ticks\": {}, \"throughput_jobs_per_kilotick\": {:e}, \
             \"completed\": {}, \"cached\": {}, \"lost\": {}, \"rejection_events\": {}, \
             \"steals\": {}, \"migrations\": {}, \"preemptions\": {}, \
             \"wait_p50\": {:e}, \"wait_p95\": {:e}, \"wait_p99\": {:e}, \
             \"turnaround_p50\": {:e}, \"turnaround_p95\": {:e}, \"turnaround_p99\": {:e}, \
             \"outcome_checksum\": \"{:016x}\", \"checksum_drift\": {}}}{}\n",
            r.config.shards,
            r.total_ticks,
            r.throughput_jobs_per_kilotick,
            r.completed,
            r.cached,
            r.lost,
            r.rejection_events,
            s.steals,
            s.migrations,
            s.preemptions,
            s.queue_wait.p50,
            s.queue_wait.p95,
            s.queue_wait.p99,
            s.turnaround.p50,
            s.turnaround.p95,
            s.turnaround.p99,
            r.outcome_checksum,
            u64::from(r.outcome_checksum != base_checksum),
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let tput1 = sweep[0].throughput_jobs_per_kilotick;
    let tput4 = sweep[2].throughput_jobs_per_kilotick;
    out.push_str(&format!(
        "  \"scaling_4x\": {:e},\n  \"scaling_4x_floor\": 3e0,\n",
        tput4 / tput1
    ));

    // Steal vs pinned at 4 shards: deterministic stealing must buy tail
    // latency, not just shuffle work.
    let steal = &sweep[2];
    let pinned = cca_serve::run_fleet_loadgen(&cca_serve::FleetLoadgenConfig {
        shards: 4,
        steal: false,
        ..cca_serve::FleetLoadgenConfig::default()
    });
    let (p99s, p99p) = (steal.stats.turnaround.p99, pinned.stats.turnaround.p99);
    out.push_str("  \"steal_vs_pinned\": {\n");
    out.push_str(&fleet_latency(
        "steal_turnaround",
        &steal.stats.turnaround,
        true,
    ));
    out.push_str(&fleet_latency(
        "pinned_turnaround",
        &pinned.stats.turnaround,
        true,
    ));
    out.push_str(&format!(
        "    \"steal_total_ticks\": {}, \"pinned_total_ticks\": {}, \
         \"pinned_lost\": {}, \"pinned_checksum_drift\": {},\n",
        steal.total_ticks,
        pinned.total_ticks,
        pinned.lost,
        u64::from(pinned.outcome_checksum != base_checksum)
    ));
    out.push_str(&format!(
        "    \"p99_improvement\": {:e}, \"p99_improvement_floor\": 1.5e-1\n",
        (p99p - p99s) / p99p
    ));
    out.push_str("  },\n");

    // Deadline admission: the cost model must reject or downgrade
    // provably-late jobs at submit time.
    let adm = cca_serve::run_fleet_loadgen(&cca_serve::FleetLoadgenConfig {
        deadlines: true,
        ..cca_serve::FleetLoadgenConfig::default()
    });
    out.push_str(&format!(
        "  \"admission\": {{\"rejected_deadline\": {}, \"downgraded\": {}, \
         \"completed\": {}, \"lost\": {}, \"outcome_checksum\": \"{:016x}\"}}\n",
        adm.rejected_deadline, adm.stats.downgraded, adm.completed, adm.lost, adm.outcome_checksum
    ));
    out.push_str("}\n");
    out
}

/// Structural + invariant validation of a fleet file.
fn validate_fleet(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{FLEET_SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {FLEET_SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let drifts = numbers_after(text, "checksum_drift");
    if drifts.len() != 3 {
        errs.push(format!(
            "want 3 shard-scaling points, found {}",
            drifts.len()
        ));
    }
    for (i, v) in drifts.iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "shard-scaling point {i} drifted the outcome checksum (replay broken)"
            ));
        }
    }
    if numbers_after(text, "pinned_checksum_drift").first() != Some(&0.0) {
        errs.push("disabling stealing drifted the outcome checksum".into());
    }
    for key in ["lost", "pinned_lost"] {
        if numbers_after(text, key).iter().any(|v| *v != 0.0) {
            errs.push(format!("\"{key}\" is nonzero: requests vanished"));
        }
    }
    for key in ["steals", "migrations", "preemptions"] {
        if numbers_after(text, key).iter().sum::<f64>() < 1.0 {
            errs.push(format!("\"{key}\" was never exercised across the sweep"));
        }
    }
    for (value, floor) in [
        ("scaling_4x", "scaling_4x_floor"),
        ("p99_improvement", "p99_improvement_floor"),
    ] {
        let v = numbers_after(text, value);
        let f = numbers_after(text, floor);
        match (v.first(), f.first()) {
            (Some(v), Some(f)) if v >= f => {}
            (Some(v), Some(f)) => {
                errs.push(format!("\"{value}\" {v} below the {f} acceptance floor"))
            }
            _ => errs.push(format!("missing \"{value}\" or its floor")),
        }
    }
    for key in ["rejected_deadline", "downgraded"] {
        if numbers_after(text, key).iter().sum::<f64>() < 1.0 {
            errs.push(format!("admission never exercised \"{key}\""));
        }
    }
    errs
}

/// Every number following a `"key":` in (our own, known-shape) JSON.
fn numbers_after(text: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Structural validation of a smoke file. Returns every problem found.
fn validate(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        errs.push(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let nd = numbers_after(text, "nfe_direct");
    let nc = numbers_after(text, "nfe_component");
    if nd.len() != 2 || nc.len() != 2 {
        errs.push(format!(
            "want 2 table4 cases, found {} direct / {} component",
            nd.len(),
            nc.len()
        ));
    }
    for (d, c) in nd.iter().zip(&nc) {
        if d != c || *d <= 0.0 {
            errs.push(format!(
                "component path must do identical work: NFE {c} vs {d}"
            ));
        }
    }
    let times = numbers_after(text, "modeled_time_s");
    if times.len() != 9 {
        errs.push(format!("want 9 weak-scaling points, found {}", times.len()));
    }
    for t in &times {
        if !t.is_finite() || *t <= 0.0 {
            errs.push(format!("non-physical modeled time {t}"));
        }
    }
    errs
}

/// Interior edge of the kernel-bench patch: big enough that an untiled
/// sweep's working set spills the modeled cache while one band fits.
const KERNEL_N: i64 = 96;
/// Species of the full H2-air mechanism the flame app sweeps.
const KERNEL_NSPEC: usize = 9;
/// Per-cell relative tolerance for reassociated (fast-div) kernels.
const KERNELS_REL_TOL: f64 = 1e-12;

/// One layout/tiling configuration of a kernel sweep.
struct KernelVariant {
    name: &'static str,
    quantum: usize,
    tile_rows: usize,
    fast_div: bool,
}

/// The diffusion sweep: dense-untiled is the baseline the acceptance
/// speedup is measured against; `padded_tiled` is the headline config.
const DIFF_VARIANTS: &[KernelVariant] = &[
    KernelVariant {
        name: "dense_untiled",
        quantum: 1,
        tile_rows: 0,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_untiled",
        quantum: 8,
        tile_rows: 0,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_tiled",
        quantum: 8,
        tile_rows: 16,
        fast_div: false,
    },
    KernelVariant {
        name: "wide_pitch_tiled",
        quantum: 16,
        tile_rows: 16,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_tiled_fastdiv",
        quantum: 8,
        tile_rows: 16,
        fast_div: true,
    },
];

/// The flux sweep: five conserved variables over four ghost rows makes
/// the per-band footprint bigger, so the tile is shallower.
const FLUX_VARIANTS: &[KernelVariant] = &[
    KernelVariant {
        name: "dense_untiled",
        quantum: 1,
        tile_rows: 0,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_untiled",
        quantum: 8,
        tile_rows: 0,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_tiled",
        quantum: 8,
        tile_rows: 8,
        fast_div: false,
    },
    KernelVariant {
        name: "wide_pitch_tiled",
        quantum: 16,
        tile_rows: 8,
        fast_div: false,
    },
    KernelVariant {
        name: "padded_tiled_fastdiv",
        quantum: 8,
        tile_rows: 8,
        fast_div: true,
    },
];

/// The flame-app state patch ({T, Y1..Y8}, one ghost ring) at the given
/// pitch quantum. Polynomial hot spot: libm-free, host-stable bytes.
fn kernel_diffusion_state(quantum: usize) -> PatchData {
    let mut pd =
        PatchData::with_pitch_quantum(IntBox::sized(KERNEL_N, KERNEL_N), KERNEL_NSPEC, 1, quantum);
    for (i, j) in pd.total_box().cells() {
        let x = (i as f64 + 0.5) / KERNEL_N as f64;
        let y = (j as f64 + 0.5) / KERNEL_N as f64;
        let bump = 16.0 * x * (1.0 - x) * y * (1.0 - y);
        pd.set(0, i, j, 300.0 + 1250.0 * bump);
        pd.set(1, i, j, 0.028 + 0.012 * bump); // H2
        pd.set(2, i, j, 0.226); // O2
        for v in 3..KERNEL_NSPEC {
            pd.set(v, i, j, 2.0e-3 + 1.0e-4 * v as f64); // radicals
        }
    }
    pd
}

/// The shock-app conserved-state patch (two ghost rings). Modular
/// pseudo-noise plus a pressure front keeps every limiter branch live
/// without touching libm.
fn kernel_flux_state(quantum: usize) -> PatchData {
    let mut pd =
        PatchData::with_pitch_quantum(IntBox::sized(KERNEL_N, KERNEL_N), NVARS, 2, quantum);
    for (i, j) in pd.total_box().cells() {
        let a = (i * 37 + j * 23).rem_euclid(17) as f64 / 17.0;
        let b = (i * 13 + j * 7).rem_euclid(29) as f64 / 29.0;
        let w = Prim {
            rho: 0.8 + 0.5 * a,
            u: 0.6 - 1.1 * b,
            v: -0.4 + 0.7 * a,
            p: if b > 0.7 { 4.5 } else { 0.5 },
            zeta: a,
        };
        let u = prim_to_cons(&w, 1.4);
        for (var, &uv) in u.iter().enumerate() {
            pd.set(var, i, j, uv);
        }
    }
    pd
}

/// Chemistry and transport kernel snapshots from the same components the
/// flame assembly wires together.
fn kernel_props() -> (Arc<dyn ChemistryKernel>, Arc<dyn TransportKernel>) {
    let mut fw = cca_apps::palette::standard_palette();
    cca_core::script::run_script(
        &mut fw,
        "instantiate ThermoChemistry chem\n\
         instantiate DRFMComponent drfm\n",
    )
    .expect("assembly");
    let chem: Rc<dyn ChemistrySourcePort> = fw
        .get_provides_port("chem", "chemistry")
        .expect("chemistry");
    let transport: Rc<dyn TransportPort> = fw
        .get_provides_port("drfm", "transport")
        .expect("transport");
    (
        chem.kernel().expect("chemistry kernel"),
        transport.kernel().expect("transport kernel"),
    )
}

/// Row-ordered interior sum over every variable — the drift probe.
fn patch_checksum(pd: &PatchData) -> f64 {
    (0..pd.nvars).map(|v| pd.interior_sum(v)).sum()
}

/// Largest per-cell relative deviation between two RHS patches.
fn patch_max_rel_err(a: &PatchData, b: &PatchData) -> f64 {
    let mut worst = 0.0f64;
    for (i, j) in a.interior.cells() {
        for var in 0..a.nvars {
            let (x, y) = (a.get(var, i, j), b.get(var, i, j));
            worst = worst.max((x - y).abs() / x.abs().max(1.0));
        }
    }
    worst
}

/// One JSON line of a kernel sweep: the layout knobs, the machine-model
/// numbers, and (for the real-kernel runs) the drift/tolerance probe.
#[allow(clippy::too_many_arguments)]
fn kernel_entry_json(
    v: &KernelVariant,
    cost: &model::KernelCost,
    checksum: Option<f64>,
    drift: Option<u64>,
    rel: Option<f64>,
    last: bool,
) -> String {
    let mut s = format!(
        "    {{\"config\": \"{}\", \"pitch_quantum\": {}, \"tile_rows\": {}, \
         \"fast_div\": {}, \"modeled_cycles\": {}, \"lines_missed\": {}, \
         \"cells_per_sec\": {:e}",
        v.name,
        v.quantum,
        v.tile_rows,
        v.fast_div,
        cost.cycles(),
        cost.lines_missed,
        cost.cells_per_sec(),
    );
    if let Some(c) = checksum {
        s.push_str(&format!(", \"checksum\": {c:e}"));
    }
    if let Some(d) = drift {
        s.push_str(&format!(", \"checksum_drift\": {d}"));
    }
    if let Some(r) = rel {
        s.push_str(&format!(", \"max_rel_err\": {r:e}"));
    }
    s.push('}');
    if !last {
        s.push(',');
    }
    s.push('\n');
    s
}

/// PR-9 kernel-throughput suite, frozen as JSON. Each kernel is run for
/// real at every layout/tiling configuration (checksums pin the
/// bit-identity contract; the fast-div run is tolerance-gated) and
/// replayed through the `model` machine model for cycles and
/// cells/second. The load-bearing numbers are the zero in every
/// `checksum_drift`, the `max_rel_err` under `rel_tolerance`, and the
/// two speedup ratios over their acceptance floors.
fn kernels_json() -> String {
    let (chem, transport) = kernel_props();
    let n = KERNEL_N as usize;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{KERNELS_SCHEMA}\",\n"));
    out.push_str("  \"deterministic\": true,\n");
    out.push_str(&format!(
        "  \"machine_model\": {{\"clock_hz\": {:e}, \"simd_width\": {}, \
         \"line_doubles\": {}, \"miss_cycles\": {}, \"cache_doubles\": {}}},\n",
        model::CLOCK_HZ,
        model::SIMD_WIDTH,
        model::LINE_DOUBLES,
        model::MISS_CYCLES,
        model::CACHE_DOUBLES,
    ));
    out.push_str(&format!("  \"rel_tolerance\": {KERNELS_REL_TOL:e},\n"));

    // Diffusion RHS: real run per variant + modeled cost.
    out.push_str("  \"diffusion_rhs\": [\n");
    let mut diff_base: Option<PatchData> = None;
    for (k, v) in DIFF_VARIANTS.iter().enumerate() {
        let state = kernel_diffusion_state(v.quantum);
        let mut rhs = PatchData::new(state.interior, KERNEL_NSPEC, 0);
        let cfg = KernelConfig {
            tile_rows: v.tile_rows,
            fast_div: v.fast_div,
        };
        let d = 1.0 / KERNEL_N as f64;
        diffusion_rhs_with_kernels(&chem, &transport, &state, &mut rhs, d, d, cfg);
        let cost = model::diffusion_cost(n, n, KERNEL_NSPEC, v.quantum, v.tile_rows, v.fast_div);
        let checksum = patch_checksum(&rhs);
        let base = diff_base.get_or_insert_with(|| rhs.clone());
        let (drift, rel) = if v.fast_div {
            (None, Some(patch_max_rel_err(base, &rhs)))
        } else {
            (
                Some(u64::from(
                    checksum.to_bits() != patch_checksum(base).to_bits(),
                )),
                None,
            )
        };
        out.push_str(&kernel_entry_json(
            v,
            &cost,
            Some(checksum),
            drift,
            rel,
            k + 1 == DIFF_VARIANTS.len(),
        ));
    }
    out.push_str("  ],\n");

    // Godunov flux sweep: same shape of sweep over the MUSCL kernel.
    out.push_str("  \"godunov_flux\": [\n");
    let mut flux_base: Option<PatchData> = None;
    for (k, v) in FLUX_VARIANTS.iter().enumerate() {
        let state = kernel_flux_state(v.quantum);
        let mut rhs = PatchData::new(state.interior, NVARS, 0);
        let cfg = KernelConfig {
            tile_rows: v.tile_rows,
            fast_div: v.fast_div,
        };
        compute_rhs_cfg(
            &state,
            &mut rhs,
            0.05,
            0.08,
            1.4,
            &GodunovFlux,
            Limiter::MinMod,
            cfg,
        );
        let cost = model::flux_cost(n, n, NVARS, v.quantum, v.tile_rows, v.fast_div);
        let checksum = patch_checksum(&rhs);
        let base = flux_base.get_or_insert_with(|| rhs.clone());
        let (drift, rel) = if v.fast_div {
            (None, Some(patch_max_rel_err(base, &rhs)))
        } else {
            (
                Some(u64::from(
                    checksum.to_bits() != patch_checksum(base).to_bits(),
                )),
                None,
            )
        };
        out.push_str(&kernel_entry_json(
            v,
            &cost,
            Some(checksum),
            drift,
            rel,
            k + 1 == FLUX_VARIANTS.len(),
        ));
    }
    out.push_str("  ],\n");

    // SAMR Laplacian: a streaming kernel tiling cannot help — recorded
    // so the layout-only (pitch alignment) effect is visible per app.
    out.push_str("  \"samr_laplacian\": [\n");
    for (k, v) in DIFF_VARIANTS[..2].iter().enumerate() {
        let cost = model::laplacian_cost(126, 126, 2, v.quantum);
        out.push_str(&kernel_entry_json(v, &cost, None, None, None, k == 1));
    }
    out.push_str("  ],\n");

    // The acceptance ratios, measured against the dense-untiled baseline
    // recorded in the same run.
    let d_base = model::diffusion_cost(n, n, KERNEL_NSPEC, 1, 0, false);
    let d_tile = model::diffusion_cost(n, n, KERNEL_NSPEC, 8, 16, false);
    let f_base = model::flux_cost(n, n, NVARS, 1, 0, false);
    let f_tile = model::flux_cost(n, n, NVARS, 8, 8, false);
    out.push_str(&format!(
        "  \"diffusion_speedup\": {:e},\n  \"diffusion_speedup_floor\": 1.5e0,\n",
        d_tile.cells_per_sec() / d_base.cells_per_sec()
    ));
    out.push_str(&format!(
        "  \"flux_speedup\": {:e},\n  \"flux_speedup_floor\": 1.3e0\n}}\n",
        f_tile.cells_per_sec() / f_base.cells_per_sec()
    ));
    out
}

/// Structural + invariant validation of a kernels file: zero checksum
/// drift on every bit-identity configuration, reassociated runs inside
/// the relative tolerance, and both modeled speedups over their floors.
fn validate_kernels(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.contains(&format!("\"schema\": \"{KERNELS_SCHEMA}\"")) {
        errs.push(format!(
            "missing or wrong schema tag (want {KERNELS_SCHEMA})"
        ));
    }
    for (open, close, what) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let a = text.matches(open).count();
        let b = text.matches(close).count();
        if a != b || a == 0 {
            errs.push(format!("unbalanced {what}: {a} '{open}' vs {b} '{close}'"));
        }
    }
    let drifts = numbers_after(text, "checksum_drift");
    if drifts.len() != 8 {
        errs.push(format!(
            "want 8 bit-identity configurations, found {}",
            drifts.len()
        ));
    }
    for (i, v) in drifts.iter().enumerate() {
        if *v != 0.0 {
            errs.push(format!(
                "bit-identity config {i} drifted from the dense-untiled bits"
            ));
        }
    }
    let tol = numbers_after(text, "rel_tolerance");
    let rels = numbers_after(text, "max_rel_err");
    if rels.len() != 2 {
        errs.push(format!("want 2 fast-div configs, found {}", rels.len()));
    }
    match tol.first() {
        Some(t) => {
            for (i, r) in rels.iter().enumerate() {
                if !r.is_finite() || r > t {
                    errs.push(format!("fast-div config {i}: max_rel_err {r} over {t}"));
                }
            }
        }
        None => errs.push("missing rel_tolerance".into()),
    }
    for key in ["modeled_cycles", "lines_missed"] {
        for (i, v) in numbers_after(text, key).iter().enumerate() {
            if *v < 1.0 {
                errs.push(format!("entry {i}: \"{key}\" = {v} below 1"));
            }
        }
    }
    for (i, v) in numbers_after(text, "cells_per_sec").iter().enumerate() {
        if !v.is_finite() || *v <= 0.0 {
            errs.push(format!("entry {i}: non-physical cells_per_sec {v}"));
        }
    }
    for (speed, floor) in [
        ("diffusion_speedup", "diffusion_speedup_floor"),
        ("flux_speedup", "flux_speedup_floor"),
    ] {
        let s = numbers_after(text, speed);
        let f = numbers_after(text, floor);
        match (s.first(), f.first()) {
            (Some(s), Some(f)) if s >= f => {}
            (Some(s), Some(f)) => {
                errs.push(format!("\"{speed}\" {s} below the {f} acceptance floor"))
            }
            _ => errs.push(format!("missing \"{speed}\" or its floor")),
        }
    }
    errs
}

/// One bench suite: a generator subcommand, its `-check` twin, a default
/// output path, and the generate/validate pair. Adding a suite is one
/// table line in [`SUITES`] (plus a baseline line in `ci.sh`).
struct Suite {
    run: &'static str,
    check: &'static str,
    path: &'static str,
    generate: fn() -> String,
    validate: fn(&str) -> Vec<String>,
}

/// Every bench suite the binary knows, in PR order.
const SUITES: &[Suite] = &[
    Suite {
        run: "smoke",
        check: "check",
        path: DEFAULT_PATH,
        generate: smoke_json,
        validate,
    },
    Suite {
        run: "serve",
        check: "serve-check",
        path: SERVE_PATH,
        generate: serve_json,
        validate: validate_serve,
    },
    Suite {
        run: "hotpath",
        check: "hotpath-check",
        path: HOTPATH_PATH,
        generate: hotpath_json,
        validate: validate_hotpath,
    },
    Suite {
        run: "scaling",
        check: "scaling-check",
        path: SCALING_PATH,
        generate: scaling_json,
        validate: validate_scaling,
    },
    Suite {
        run: "samr",
        check: "samr-check",
        path: SAMR_PATH,
        generate: samr_json,
        validate: validate_samr,
    },
    Suite {
        run: "ckpt",
        check: "ckpt-check",
        path: CKPT_PATH,
        generate: ckpt_json,
        validate: validate_ckpt,
    },
    Suite {
        run: "kernels",
        check: "kernels-check",
        path: KERNELS_PATH,
        generate: kernels_json,
        validate: validate_kernels,
    },
    Suite {
        run: "fleet",
        check: "fleet-check",
        path: FLEET_PATH,
        generate: fleet_json,
        validate: validate_fleet,
    },
];

fn print_errs(path: &str, errs: &[String]) {
    eprintln!("cca-bench: {path} is malformed:");
    for e in errs {
        eprintln!("  - {e}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("");
    let Some(suite) = SUITES.iter().find(|s| s.run == mode || s.check == mode) else {
        let names: Vec<String> = SUITES
            .iter()
            .map(|s| format!("{}|{}", s.run, s.check))
            .collect();
        eprintln!(
            "usage: cca-bench {} [PATH]",
            names.join(" [PATH] | cca-bench ")
        );
        return ExitCode::FAILURE;
    };
    let path = args.get(2).map(String::as_str).unwrap_or(suite.path);
    if mode == suite.run {
        let json = (suite.generate)();
        let errs = (suite.validate)(&json);
        if !errs.is_empty() {
            eprintln!("cca-bench: {mode} output failed self-check:");
            for e in &errs {
                eprintln!("  - {e}");
            }
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cca-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "cca-bench: wrote {path} ({} bytes, deterministic)",
            json.len()
        );
        ExitCode::SUCCESS
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let errs = (suite.validate)(&text);
                if errs.is_empty() {
                    println!("cca-bench: {path} is well-formed");
                    ExitCode::SUCCESS
                } else {
                    print_errs(path, &errs);
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("cca-bench: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
