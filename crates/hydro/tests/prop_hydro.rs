//! Property-based tests of the Euler solver's invariants.

use cca_hydro_solver::efm::EfmFlux;
use cca_hydro_solver::muscl::FluxScheme;
use cca_hydro_solver::riemann::{sample, star_state, GodunovFlux};
use cca_hydro_solver::state::{cons_to_prim, physical_flux_x, prim_to_cons, Prim, NVARS};
use proptest::prelude::*;

fn arb_prim() -> impl Strategy<Value = Prim> {
    (
        0.05f64..10.0, // rho
        -3.0f64..3.0,  // u
        -3.0f64..3.0,  // v
        0.05f64..10.0, // p
        0.0f64..1.0,   // zeta
    )
        .prop_map(|(rho, u, v, p, zeta)| Prim { rho, u, v, p, zeta })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conserved/primitive roundtrip for arbitrary physical states.
    #[test]
    fn cons_prim_roundtrip(w in arb_prim()) {
        let u = prim_to_cons(&w, 1.4);
        let w2 = cons_to_prim(&u, 1.4);
        prop_assert!((w.rho - w2.rho).abs() < 1e-12 * w.rho);
        prop_assert!((w.p - w2.p).abs() < 1e-10 * (1.0 + w.p));
        prop_assert!((w.u - w2.u).abs() < 1e-10);
        prop_assert!((w.v - w2.v).abs() < 1e-10);
    }

    /// Both flux schemes are *consistent*: F(w, w) = F_exact(w).
    #[test]
    fn flux_consistency(w in arb_prim()) {
        let exact = physical_flux_x(&w, 1.4);
        for scheme in [&GodunovFlux as &dyn FluxScheme, &EfmFlux] {
            let f = scheme.flux_x(&w, &w, 1.4);
            for k in 0..NVARS {
                prop_assert!(
                    (f[k] - exact[k]).abs() < 1e-5 * (1.0 + exact[k].abs()),
                    "{} k={}: {} vs {}", scheme.name(), k, f[k], exact[k]
                );
            }
        }
    }

    /// The exact Riemann solution is positivity-preserving wherever the
    /// vacuum condition holds, and the star state is unique: sampling at
    /// xi far left/right returns the inputs.
    #[test]
    fn riemann_positivity_and_limits(l in arb_prim(), r in arb_prim()) {
        let g = 1.4;
        // Vacuum condition: 2cL/(γ-1) + 2cR/(γ-1) > uR - uL.
        let cl = l.sound_speed(g);
        let cr = r.sound_speed(g);
        prop_assume!(2.0 * cl / (g - 1.0) + 2.0 * cr / (g - 1.0) > r.u - l.u + 0.1);
        let (p_star, _u_star) = star_state(&l, &r, g);
        prop_assert!(p_star > 0.0, "p* = {}", p_star);
        for xi in [-100.0, -10.0, 0.0, 10.0, 100.0] {
            let w = sample(&l, &r, g, xi);
            prop_assert!(w.rho > 0.0 && w.p > 0.0, "xi={}: rho={} p={}", xi, w.rho, w.p);
        }
        let far_l = sample(&l, &r, g, -1e6);
        prop_assert!((far_l.rho - l.rho).abs() < 1e-9);
        let far_r = sample(&l, &r, g, 1e6);
        prop_assert!((far_r.rho - r.rho).abs() < 1e-9);
    }

    /// Galilean-mirrored Riemann problems give mirrored solutions:
    /// swap(L, R) with negated velocities flips the sign of the mass flux.
    #[test]
    fn riemann_mirror_symmetry(l in arb_prim(), r in arb_prim()) {
        let g = 1.4;
        let cl = l.sound_speed(g);
        let cr = r.sound_speed(g);
        prop_assume!(2.0 * cl / (g - 1.0) + 2.0 * cr / (g - 1.0) > r.u - l.u + 0.1);
        let f = GodunovFlux.flux_x(&l, &r, g);
        let ml = Prim { u: -r.u, ..r };
        let mr = Prim { u: -l.u, ..l };
        let fm = GodunovFlux.flux_x(&ml, &mr, g);
        // Mass flux flips sign; x-momentum flux is even.
        prop_assert!((f[0] + fm[0]).abs() < 1e-6 * (1.0 + f[0].abs()),
            "mass flux: {} vs {}", f[0], fm[0]);
        prop_assert!((f[1] - fm[1]).abs() < 1e-6 * (1.0 + f[1].abs()),
            "momentum flux: {} vs {}", f[1], fm[1]);
    }

    /// EFM shares the mirror symmetry (its half fluxes are moment
    /// integrals, symmetric under velocity reflection).
    #[test]
    fn efm_mirror_symmetry(l in arb_prim(), r in arb_prim()) {
        let g = 1.4;
        let f = EfmFlux.flux_x(&l, &r, g);
        let ml = Prim { u: -r.u, ..r };
        let mr = Prim { u: -l.u, ..l };
        let fm = EfmFlux.flux_x(&ml, &mr, g);
        prop_assert!((f[0] + fm[0]).abs() < 1e-7 * (1.0 + f[0].abs()));
        prop_assert!((f[1] - fm[1]).abs() < 1e-7 * (1.0 + f[1].abs()));
    }
}
