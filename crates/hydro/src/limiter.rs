//! Slope limiters for the MUSCL reconstruction (the "slope-limiters,
//! upwinding" of paper §4.3).

/// Available limiters. `MinMod` is the most dissipative, `Superbee` the
/// most compressive; `VanLeer` and `MonotonizedCentral` sit between.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// No limiting (unlimited central slope) — oscillatory at shocks,
    /// provided for the ablation study.
    None,
    /// First order: zero slopes everywhere (pure Godunov).
    FirstOrder,
    /// Roe's minmod.
    MinMod,
    /// Van Leer's harmonic limiter.
    VanLeer,
    /// Monotonized central (MC).
    MonotonizedCentral,
    /// Roe's superbee.
    Superbee,
}

impl Limiter {
    /// Limited slope from backward difference `a` and forward difference
    /// `b` (both per cell width).
    pub fn slope(&self, a: f64, b: f64) -> f64 {
        match self {
            Limiter::None => 0.5 * (a + b),
            Limiter::FirstOrder => 0.0,
            Limiter::MinMod => minmod(a, b),
            Limiter::VanLeer => {
                if a * b <= 0.0 {
                    0.0
                } else {
                    2.0 * a * b / (a + b)
                }
            }
            Limiter::MonotonizedCentral => minmod3(0.5 * (a + b), 2.0 * a, 2.0 * b),
            Limiter::Superbee => {
                let s1 = minmod(b, 2.0 * a);
                let s2 = minmod(a, 2.0 * b);
                if s1.abs() > s2.abs() {
                    s1
                } else {
                    s2
                }
            }
        }
    }
}

fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

fn minmod3(a: f64, b: f64, c: f64) -> f64 {
    minmod(a, minmod(b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITERS: [Limiter; 4] = [
        Limiter::MinMod,
        Limiter::VanLeer,
        Limiter::MonotonizedCentral,
        Limiter::Superbee,
    ];

    #[test]
    fn zero_at_extrema() {
        // Opposite-sign differences (local extremum) must give slope 0 for
        // every TVD limiter.
        for lim in LIMITERS {
            assert_eq!(lim.slope(1.0, -1.0), 0.0, "{lim:?}");
            assert_eq!(lim.slope(-0.3, 0.7), 0.0, "{lim:?}");
        }
    }

    #[test]
    fn exact_on_uniform_gradients() {
        for lim in LIMITERS {
            let s = lim.slope(2.0, 2.0);
            assert!((s - 2.0).abs() < 1e-14, "{lim:?}: {s}");
        }
    }

    #[test]
    fn tvd_bounds() {
        // All limited slopes lie within [0, 2*min(a,b)] .. [0, 2*max] for
        // same-sign inputs (Sweby region). Spot-check ordering of
        // dissipativeness: |minmod| <= |vanleer| <= |superbee|.
        for (a, b) in [(1.0, 2.0), (0.5, 3.0), (2.0, 0.1)] {
            let mm = Limiter::MinMod.slope(a, b).abs();
            let vl = Limiter::VanLeer.slope(a, b).abs();
            let sb = Limiter::Superbee.slope(a, b).abs();
            assert!(mm <= vl + 1e-14, "a={a} b={b}");
            assert!(vl <= sb + 1e-14, "a={a} b={b}");
            assert!(sb <= 2.0 * a.min(b).max(a.max(b).min(2.0 * a.min(b))) + 1e-12);
        }
    }

    #[test]
    fn first_order_and_none() {
        assert_eq!(Limiter::FirstOrder.slope(5.0, 7.0), 0.0);
        assert_eq!(Limiter::None.slope(1.0, 3.0), 2.0);
    }
}
