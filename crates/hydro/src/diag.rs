//! Flow diagnostics: vorticity and the interfacial circulation
//! `Γ = ∫_{0.001 ≤ ζ ≤ 0.999} ω · dA` whose grid-convergence is the
//! paper's Fig. 7 (analytic maximum deposition ≈ −0.592 for their case).

use crate::state::NVARS;
use cca_mesh::data::PatchData;

/// Vorticity `ω = ∂v/∂x − ∂u/∂y` at cell `(i, j)` by central differences
/// (requires one filled ghost layer).
pub fn vorticity(pd: &PatchData, i: i64, j: i64, dx: f64, dy: f64) -> f64 {
    let vel = |i: i64, j: i64| -> (f64, f64) {
        let rho = pd.get(0, i, j);
        (pd.get(1, i, j) / rho, pd.get(2, i, j) / rho)
    };
    let (_, v_e) = vel(i + 1, j);
    let (_, v_w) = vel(i - 1, j);
    let (u_n, _) = vel(i, j + 1);
    let (u_s, _) = vel(i, j - 1);
    (v_e - v_w) / (2.0 * dx) - (u_n - u_s) / (2.0 * dy)
}

/// Circulation deposited on the tracked interface of one patch:
/// `Σ ω dA` over interior cells with `zeta_lo ≤ ζ ≤ zeta_hi`, but only
/// cells where `mask` returns true (used by the AMR driver to count each
/// physical region once, at its finest covering).
#[allow(clippy::too_many_arguments)]
pub fn interfacial_circulation(
    pd: &PatchData,
    dx: f64,
    dy: f64,
    zeta_lo: f64,
    zeta_hi: f64,
    mask: &dyn Fn(i64, i64) -> bool,
) -> f64 {
    assert_eq!(pd.nvars, NVARS);
    let mut gamma = 0.0;
    for (i, j) in pd.interior.cells() {
        if !mask(i, j) {
            continue;
        }
        let zeta = pd.get(4, i, j) / pd.get(0, i, j);
        if zeta >= zeta_lo && zeta <= zeta_hi {
            gamma += vorticity(pd, i, j, dx, dy) * dx * dy;
        }
    }
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{prim_to_cons, Prim};
    use cca_mesh::boxes::IntBox;

    fn patch_with_velocity(
        n: i64,
        dx: f64,
        vel: impl Fn(f64, f64) -> (f64, f64),
        zeta: impl Fn(f64, f64) -> f64,
    ) -> PatchData {
        let mut pd = PatchData::new(IntBox::sized(n, n), NVARS, 1);
        for (i, j) in pd.total_box().cells() {
            let x = (i as f64 + 0.5) * dx;
            let y = (j as f64 + 0.5) * dx;
            let (u, v) = vel(x, y);
            let w = Prim {
                rho: 1.0,
                u,
                v,
                p: 1.0,
                zeta: zeta(x, y),
            };
            let c = prim_to_cons(&w, 1.4);
            for (var, &cv) in c.iter().enumerate() {
                pd.set(var, i, j, cv);
            }
        }
        pd
    }

    #[test]
    fn uniform_flow_has_zero_circulation() {
        let pd = patch_with_velocity(16, 0.1, |_, _| (1.0, -2.0), |_, _| 0.5);
        let g = interfacial_circulation(&pd, 0.1, 0.1, 0.001, 0.999, &|_, _| true);
        assert!(g.abs() < 1e-12, "gamma = {g}");
    }

    #[test]
    fn solid_body_rotation_vorticity() {
        // u = -omega*y, v = omega*x -> vorticity = 2*omega everywhere.
        let omega = 3.0;
        let pd = patch_with_velocity(16, 0.1, |x, y| (-omega * y, omega * x), |_, _| 0.5);
        let w = vorticity(&pd, 8, 8, 0.1, 0.1);
        assert!((w - 2.0 * omega).abs() < 1e-9, "omega = {w}");
        // Circulation over the whole 16x16 interior = 2*omega*Area.
        let g = interfacial_circulation(&pd, 0.1, 0.1, 0.001, 0.999, &|_, _| true);
        let area = (16.0 * 0.1) * (16.0 * 0.1);
        assert!((g - 2.0 * omega * area).abs() < 1e-9 * area);
    }

    #[test]
    fn zeta_window_selects_interface_cells_only() {
        let omega = 1.0;
        // zeta = 1 in the left half, 0 in the right half, 0.5 on a narrow
        // middle band.
        let pd = patch_with_velocity(
            16,
            0.1,
            |x, y| (-omega * y, omega * x),
            |x, _| {
                if x < 0.75 {
                    1.0
                } else if x > 0.85 {
                    0.0
                } else {
                    0.5
                }
            },
        );
        let g_band = interfacial_circulation(&pd, 0.1, 0.1, 0.001, 0.999, &|_, _| true);
        let g_all = interfacial_circulation(&pd, 0.1, 0.1, -1.0, 2.0, &|_, _| true);
        assert!(g_band.abs() < g_all.abs());
        assert!(g_band.abs() > 0.0);
    }

    #[test]
    fn mask_excludes_cells() {
        let pd = patch_with_velocity(8, 0.1, |x, y| (-y, x), |_, _| 0.5);
        let g_none = interfacial_circulation(&pd, 0.1, 0.1, 0.0, 1.0, &|_, _| false);
        assert_eq!(g_none, 0.0);
        let g_half = interfacial_circulation(&pd, 0.1, 0.1, 0.0, 1.0, &|i, _| i < 4);
        let g_full = interfacial_circulation(&pd, 0.1, 0.1, 0.0, 1.0, &|_, _| true);
        assert!(g_half.abs() < g_full.abs());
    }
}
