//! Error function, needed by the Equilibrium Flux Method's half-space
//! Maxwellian moments. `std` has no `erf`, so we carry the
//! Abramowitz & Stegun 7.1.26 rational approximation (|error| < 1.5e-7,
//! far below the truncation error of any flux it feeds).

/// erf(x) by Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// erfc(x) = 1 − erf(x).
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // Tabulated erf values.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn odd_symmetry_and_limits() {
        for x in [0.1, 0.7, 1.9, 4.0] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
        assert!((erfc(6.0)).abs() < 1e-12);
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = -1.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let v = erf(x);
            assert!(v >= prev - 1e-12, "erf not monotone at {x}");
            prev = v;
            x += 0.05;
        }
    }
}
