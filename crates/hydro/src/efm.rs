//! The Equilibrium Flux Method (EFM) of Pullin (J. Comp. Phys. 34, 1980)
//! — kinetic flux-vector splitting from half-space moments of Maxwellians.
//! More diffusive than the exact Godunov flux but robust for strong
//! shocks; the paper swaps it in (`EFMFlux` for `GodunovFlux`) to run the
//! Mach ≈ 3.5 case "without recompilation/relinking".

use crate::erf::erf;
use crate::muscl::FluxScheme;
use crate::state::{Prim, NVARS};

/// The EFM/KFVS flux.
#[derive(Clone, Copy, Debug, Default)]
pub struct EfmFlux;

/// Half-space flux of one Maxwellian state. `sign = +1` gives the
/// right-moving moment (used with the left state), `sign = -1` the
/// left-moving one (right state).
fn half_flux(w: &Prim, gamma: f64, sign: f64) -> [f64; NVARS] {
    let theta = w.p / w.rho; // RT
    let s = w.u / (2.0 * theta).sqrt();
    let a = 0.5 * (1.0 + sign * erf(s));
    let b = sign * (theta / (2.0 * std::f64::consts::PI)).sqrt() * (-s * s).exp();
    // Specific total enthalpy h0 = (u²+v²)/2 + γθ/(γ−1).
    let h0 = 0.5 * (w.u * w.u + w.v * w.v) + gamma * theta / (gamma - 1.0);
    let mass = w.rho * (w.u * a + b);
    [
        mass,
        w.rho * ((w.u * w.u + theta) * a + w.u * b),
        w.v * mass,
        w.rho * (w.u * h0 * a + (h0 - 0.5 * theta) * b),
        w.zeta * mass,
    ]
}

impl FluxScheme for EfmFlux {
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; NVARS] {
        let fp = half_flux(left, gamma, 1.0);
        let fm = half_flux(right, gamma, -1.0);
        let mut f = [0.0; NVARS];
        for k in 0..NVARS {
            f[k] = fp[k] + fm[k];
        }
        f
    }

    fn name(&self) -> &'static str {
        "efm-pullin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::physical_flux_x;

    fn prim(rho: f64, u: f64, p: f64) -> Prim {
        Prim {
            rho,
            u,
            v: 0.3,
            p,
            zeta: 0.5,
        }
    }

    /// The split fluxes are consistent: F⁺(w) + F⁻(w) = F(w).
    #[test]
    fn consistency_with_physical_flux() {
        for u in [-2.0, -0.3, 0.0, 0.4, 3.0] {
            let w = prim(1.3, u, 0.9);
            let fp = half_flux(&w, 1.4, 1.0);
            let fm = half_flux(&w, 1.4, -1.0);
            let exact = physical_flux_x(&w, 1.4);
            for k in 0..NVARS {
                let sum = fp[k] + fm[k];
                assert!(
                    (sum - exact[k]).abs() < 1e-6 * (1.0 + exact[k].abs()),
                    "u={u} k={k}: {sum} vs {}",
                    exact[k]
                );
            }
        }
    }

    /// At high positive Mach all transport is in F⁺ (the upwind property).
    #[test]
    fn upwind_limit_supersonic() {
        let w = prim(1.0, 8.0, 0.5);
        let fm = half_flux(&w, 1.4, -1.0);
        for (k, v) in fm.iter().enumerate() {
            assert!(v.abs() < 1e-8, "k={k}: {v}");
        }
        let f = EfmFlux.flux_x(&w, &prim(0.2, 8.0, 0.1), 1.4);
        let exact = physical_flux_x(&w, 1.4);
        for k in 0..NVARS {
            assert!((f[k] - exact[k]).abs() < 1e-6 * (1.0 + exact[k].abs()));
        }
    }

    /// EFM mass flux of a static uniform state vanishes and the momentum
    /// flux reduces to the pressure.
    #[test]
    fn static_state() {
        let w = Prim {
            rho: 2.0,
            u: 0.0,
            v: 0.0,
            p: 3.0,
            zeta: 1.0,
        };
        let f = EfmFlux.flux_x(&w, &w, 1.4);
        assert!(f[0].abs() < 1e-12);
        assert!((f[1] - 3.0).abs() < 1e-9);
        assert!(f[2].abs() < 1e-12);
        assert!(f[3].abs() < 1e-9);
        assert!(f[4].abs() < 1e-12);
    }

    /// EFM is more diffusive than Godunov: on a stationary contact
    /// discontinuity Godunov is exact (zero mass flux), EFM leaks.
    #[test]
    fn efm_diffuses_contacts_godunov_does_not() {
        use crate::riemann::GodunovFlux;
        let l = Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
            zeta: 1.0,
        };
        let r = Prim {
            rho: 0.25,
            u: 0.0,
            v: 0.0,
            p: 1.0,
            zeta: 0.0,
        };
        let fg = GodunovFlux.flux_x(&l, &r, 1.4);
        let fe = EfmFlux.flux_x(&l, &r, 1.4);
        assert!(fg[0].abs() < 1e-10, "godunov mass flux {}", fg[0]);
        assert!(fe[0].abs() > 1e-3, "efm should leak mass: {}", fe[0]);
    }
}
