//! `cca-hydro-solver` — 2D compressible Euler equations with interface
//! tracking, solved by a finite-volume Godunov method: the numerical core
//! behind the shock-interface assembly of paper §4.3.
//!
//! Conserved state `U = {ρ, ρu, ρv, ρE, ρζ}` (Eq. 4 of the paper), ideal
//! gas `p = (γ−1)(ρE − ½ρ(u²+v²))`, and a tracking function ζ advected
//! with the flow to mark the Air/Freon interface.
//!
//! Pieces, each mirrored by a paper component:
//!
//! * [`muscl`] — slope-limited construction of left/right interface states
//!   (the `States` component);
//! * [`riemann`] — the exact ideal-gas Riemann solver sampled at the cell
//!   interface (the `GodunovFlux` component);
//! * [`efm`] — Pullin's Equilibrium Flux Method, a more diffusive
//!   gas-kinetic flux that stays stable for strong shocks (the `EFMFlux`
//!   component, swapped in for Mach ≳ 3.5);
//! * [`state`] — primitive/conserved conversions and wave speeds (the
//!   `CharacteristicQuantities` component);
//! * [`diag`] — vorticity/circulation diagnostics behind Fig. 7's
//!   interfacial circulation convergence study.

pub mod diag;
pub mod efm;
pub mod erf;
pub mod limiter;
pub mod muscl;
pub mod riemann;
pub mod state;

pub use efm::EfmFlux;
pub use limiter::Limiter;
pub use muscl::{compute_rhs, max_wave_speed, FluxScheme};
pub use riemann::GodunovFlux;
pub use state::{cons_to_prim, prim_to_cons, Prim, NVARS};
