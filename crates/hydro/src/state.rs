//! Conserved/primitive state conversions and characteristic quantities.

/// Number of conserved variables: ρ, ρu, ρv, ρE, ρζ.
pub const NVARS: usize = 5;

/// Primitive state at a point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prim {
    /// Density.
    pub rho: f64,
    /// x velocity.
    pub u: f64,
    /// y velocity.
    pub v: f64,
    /// Pressure.
    pub p: f64,
    /// Interface tracking function (0..1).
    pub zeta: f64,
}

impl Prim {
    /// Sound speed `√(γ p / ρ)`.
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }
}

/// Conserved → primitive. Total energy `ρE = p/(γ−1) + ½ρ(u²+v²)`.
pub fn cons_to_prim(u: &[f64; NVARS], gamma: f64) -> Prim {
    let rho = u[0];
    let vx = u[1] / rho;
    let vy = u[2] / rho;
    let kinetic = 0.5 * rho * (vx * vx + vy * vy);
    let p = (gamma - 1.0) * (u[3] - kinetic);
    Prim {
        rho,
        u: vx,
        v: vy,
        p,
        zeta: u[4] / rho,
    }
}

/// Primitive → conserved.
pub fn prim_to_cons(w: &Prim, gamma: f64) -> [f64; NVARS] {
    let e = w.p / (gamma - 1.0) + 0.5 * w.rho * (w.u * w.u + w.v * w.v);
    [w.rho, w.rho * w.u, w.rho * w.v, e, w.rho * w.zeta]
}

/// Physical flux along x of a primitive state (used by consistency checks
/// and as the building block both flux schemes must agree with on smooth
/// data): `F = {ρu, ρu²+p, ρuv, (ρE+p)u, ρζu}`.
pub fn physical_flux_x(w: &Prim, gamma: f64) -> [f64; NVARS] {
    let e = w.p / (gamma - 1.0) + 0.5 * w.rho * (w.u * w.u + w.v * w.v);
    [
        w.rho * w.u,
        w.rho * w.u * w.u + w.p,
        w.rho * w.u * w.v,
        (e + w.p) * w.u,
        w.rho * w.zeta * w.u,
    ]
}

/// Largest signal speed |u| + c of a conserved state along an axis
/// (0 = x, 1 = y) — the `CharacteristicQuantities` component's output,
/// feeding the CFL time-step choice.
pub fn max_signal_speed(u: &[f64; NVARS], gamma: f64, axis: usize) -> f64 {
    let w = cons_to_prim(u, gamma);
    let vel = if axis == 0 { w.u } else { w.v };
    vel.abs() + w.sound_speed(gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let w = Prim {
            rho: 1.3,
            u: -0.4,
            v: 2.1,
            p: 0.9,
            zeta: 0.25,
        };
        let u = prim_to_cons(&w, 1.4);
        let w2 = cons_to_prim(&u, 1.4);
        assert!((w.rho - w2.rho).abs() < 1e-14);
        assert!((w.u - w2.u).abs() < 1e-14);
        assert!((w.v - w2.v).abs() < 1e-14);
        assert!((w.p - w2.p).abs() < 1e-13);
        assert!((w.zeta - w2.zeta).abs() < 1e-14);
    }

    #[test]
    fn sound_speed_of_standard_air() {
        // rho = 1.225 kg/m3, p = 101325 Pa, gamma = 1.4 -> c ~ 340 m/s.
        let w = Prim {
            rho: 1.225,
            u: 0.0,
            v: 0.0,
            p: 101_325.0,
            zeta: 0.0,
        };
        let c = w.sound_speed(1.4);
        assert!((c - 340.3).abs() < 1.0, "c = {c}");
    }

    #[test]
    fn signal_speed_includes_advection() {
        let w = Prim {
            rho: 1.0,
            u: 3.0,
            v: -4.0,
            p: 1.0,
            zeta: 0.0,
        };
        let u = prim_to_cons(&w, 1.4);
        let c = w.sound_speed(1.4);
        assert!((max_signal_speed(&u, 1.4, 0) - (3.0 + c)).abs() < 1e-12);
        assert!((max_signal_speed(&u, 1.4, 1) - (4.0 + c)).abs() < 1e-12);
    }

    #[test]
    fn flux_of_static_state_is_pressure_only() {
        let w = Prim {
            rho: 2.0,
            u: 0.0,
            v: 0.0,
            p: 5.0,
            zeta: 1.0,
        };
        let f = physical_flux_x(&w, 1.4);
        assert_eq!(f, [0.0, 5.0, 0.0, 0.0, 0.0]);
    }
}
