//! Exact Riemann solver for the ideal-gas Euler equations (Toro, ch. 4)
//! and the Godunov flux built on it — the `GodunovFlux` component of paper
//! §4.3 ("solving a Riemann problem").

use crate::muscl::FluxScheme;
use crate::state::{physical_flux_x, Prim, NVARS};

/// Exact-Riemann Godunov flux.
#[derive(Clone, Copy, Debug, Default)]
pub struct GodunovFlux;

/// Star-region pressure and velocity for left/right primitive states.
///
/// Newton–Raphson on the pressure function `f(p) = fL(p) + fR(p) + Δu`,
/// started from the PVRS guess, with a two-rarefaction fallback.
pub fn star_state(left: &Prim, right: &Prim, gamma: f64) -> (f64, f64) {
    let g = gamma;
    let (rl, ul, pl) = (left.rho, left.u, left.p);
    let (rr, ur, pr) = (right.rho, right.u, right.p);
    let cl = left.sound_speed(g);
    let cr = right.sound_speed(g);

    // f_K and its derivative for one side.
    let side = |p: f64, rk: f64, pk: f64, ck: f64| -> (f64, f64) {
        if p > pk {
            // Shock.
            let ak = 2.0 / ((g + 1.0) * rk);
            let bk = (g - 1.0) / (g + 1.0) * pk;
            let sq = (ak / (p + bk)).sqrt();
            let f = (p - pk) * sq;
            let df = sq * (1.0 - 0.5 * (p - pk) / (p + bk));
            (f, df)
        } else {
            // Rarefaction.
            let pr_ratio = (p / pk).powf((g - 1.0) / (2.0 * g));
            let f = 2.0 * ck / (g - 1.0) * (pr_ratio - 1.0);
            let df = 1.0 / (rk * ck) * (p / pk).powf(-(g + 1.0) / (2.0 * g));
            (f, df)
        }
    };

    // Initial guess: primitive-variable Riemann solver, clipped positive.
    let p_pv = 0.5 * (pl + pr) - 0.125 * (ur - ul) * (rl + rr) * (cl + cr);
    let mut p = p_pv.max(1e-10 * (pl + pr));
    for _ in 0..40 {
        let (fl, dfl) = side(p, rl, pl, cl);
        let (fr, dfr) = side(p, rr, pr, cr);
        let f = fl + fr + (ur - ul);
        let df = dfl + dfr;
        let dp = f / df;
        let p_new = (p - dp).max(1e-12 * p);
        if (p_new - p).abs() < 1e-12 * (p_new + p) {
            p = p_new;
            break;
        }
        p = p_new;
    }
    let (fl, _) = side(p, rl, pl, cl);
    let (fr, _) = side(p, rr, pr, cr);
    let u = 0.5 * (ul + ur) + 0.5 * (fr - fl);
    (p, u)
}

/// Sample the exact solution of the Riemann problem at `ξ = x/t`.
/// Transverse velocity and ζ ride passively on the contact.
pub fn sample(left: &Prim, right: &Prim, gamma: f64, xi: f64) -> Prim {
    let g = gamma;
    let (p_star, u_star) = star_state(left, right, g);

    if xi <= u_star {
        // Left of contact.
        let w = left;
        let c = w.sound_speed(g);
        if p_star > w.p {
            // Left shock.
            let ratio = p_star / w.p;
            let s = w.u - c * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
            if xi <= s {
                *w
            } else {
                let rho = w.rho
                    * ((ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0));
                Prim {
                    rho,
                    u: u_star,
                    v: w.v,
                    p: p_star,
                    zeta: w.zeta,
                }
            }
        } else {
            // Left rarefaction.
            let head = w.u - c;
            let c_star = c * (p_star / w.p).powf((g - 1.0) / (2.0 * g));
            let tail = u_star - c_star;
            if xi <= head {
                *w
            } else if xi >= tail {
                let rho = w.rho * (p_star / w.p).powf(1.0 / g);
                Prim {
                    rho,
                    u: u_star,
                    v: w.v,
                    p: p_star,
                    zeta: w.zeta,
                }
            } else {
                // Inside the fan.
                let u = (2.0 / (g + 1.0)) * (c + (g - 1.0) / 2.0 * w.u + xi);
                let cf = (2.0 / (g + 1.0)) * (c + (g - 1.0) / 2.0 * (w.u - xi));
                let rho = w.rho * (cf / c).powf(2.0 / (g - 1.0));
                let p = w.p * (cf / c).powf(2.0 * g / (g - 1.0));
                Prim {
                    rho,
                    u,
                    v: w.v,
                    p,
                    zeta: w.zeta,
                }
            }
        }
    } else {
        // Right of contact (mirror).
        let w = right;
        let c = w.sound_speed(g);
        if p_star > w.p {
            let ratio = p_star / w.p;
            let s = w.u + c * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
            if xi >= s {
                *w
            } else {
                let rho = w.rho
                    * ((ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0));
                Prim {
                    rho,
                    u: u_star,
                    v: w.v,
                    p: p_star,
                    zeta: w.zeta,
                }
            }
        } else {
            let head = w.u + c;
            let c_star = c * (p_star / w.p).powf((g - 1.0) / (2.0 * g));
            let tail = u_star + c_star;
            if xi >= head {
                *w
            } else if xi <= tail {
                let rho = w.rho * (p_star / w.p).powf(1.0 / g);
                Prim {
                    rho,
                    u: u_star,
                    v: w.v,
                    p: p_star,
                    zeta: w.zeta,
                }
            } else {
                let u = (2.0 / (g + 1.0)) * (-c + (g - 1.0) / 2.0 * w.u + xi);
                let cf = (2.0 / (g + 1.0)) * (c - (g - 1.0) / 2.0 * (w.u - xi));
                let rho = w.rho * (cf / c).powf(2.0 / (g - 1.0));
                let p = w.p * (cf / c).powf(2.0 * g / (g - 1.0));
                Prim {
                    rho,
                    u,
                    v: w.v,
                    p,
                    zeta: w.zeta,
                }
            }
        }
    }
}

impl FluxScheme for GodunovFlux {
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; NVARS] {
        let w = sample(left, right, gamma, 0.0);
        physical_flux_x(&w, gamma)
    }

    fn name(&self) -> &'static str {
        "godunov-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(rho: f64, u: f64, p: f64) -> Prim {
        Prim {
            rho,
            u,
            v: 0.0,
            p,
            zeta: 0.0,
        }
    }

    /// Toro's test 1 (the Sod problem): reference star values
    /// p* = 0.30313, u* = 0.92745.
    #[test]
    fn sod_star_state() {
        let l = prim(1.0, 0.0, 1.0);
        let r = prim(0.125, 0.0, 0.1);
        let (p, u) = star_state(&l, &r, 1.4);
        assert!((p - 0.30313).abs() < 1e-4, "p* = {p}");
        assert!((u - 0.92745).abs() < 1e-4, "u* = {u}");
    }

    /// Toro test 2 (123 problem, double rarefaction): p* = 0.00189,
    /// u* = 0 by symmetry.
    #[test]
    fn double_rarefaction_star_state() {
        let l = prim(1.0, -2.0, 0.4);
        let r = prim(1.0, 2.0, 0.4);
        let (p, u) = star_state(&l, &r, 1.4);
        assert!(u.abs() < 1e-8, "u* = {u}");
        assert!((p - 0.00189).abs() < 2e-4, "p* = {p}");
    }

    /// Toro test 3 (strong shock): p* = 460.894, u* = 19.5975.
    #[test]
    fn strong_shock_star_state() {
        let l = prim(1.0, 0.0, 1000.0);
        let r = prim(1.0, 0.0, 0.01);
        let (p, u) = star_state(&l, &r, 1.4);
        assert!((p - 460.894).abs() / 460.894 < 1e-3, "p* = {p}");
        assert!((u - 19.5975).abs() / 19.5975 < 1e-3, "u* = {u}");
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let w = prim(1.3, 0.7, 2.2);
        let s = sample(&w, &w, 1.4, 0.0);
        assert!((s.rho - 1.3).abs() < 1e-10);
        assert!((s.u - 0.7).abs() < 1e-10);
        assert!((s.p - 2.2).abs() < 1e-10);
        // Godunov flux equals the physical flux on uniform data.
        let f = GodunovFlux.flux_x(&w, &w, 1.4);
        let exact = physical_flux_x(&w, 1.4);
        for k in 0..NVARS {
            assert!((f[k] - exact[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn sod_sampled_profile_is_monotone_density() {
        let l = prim(1.0, 0.0, 1.0);
        let r = prim(0.125, 0.0, 0.1);
        let mut prev = f64::INFINITY;
        let mut xi = -2.0;
        while xi <= 2.0 {
            let w = sample(&l, &r, 1.4, xi);
            assert!(w.rho > 0.0 && w.p > 0.0, "positivity at xi = {xi}");
            assert!(w.rho <= prev + 1e-12, "density rises at xi = {xi}");
            prev = w.rho;
            xi += 0.01;
        }
    }

    #[test]
    fn zeta_follows_the_contact() {
        let mut l = prim(1.0, 0.0, 1.0);
        l.zeta = 1.0;
        let r = prim(0.125, 0.0, 0.1);
        // u* > 0: at xi = 0 we are on the left side of the contact.
        let w = sample(&l, &r, 1.4, 0.0);
        assert_eq!(w.zeta, 1.0);
        // Far right keeps the right value.
        let w = sample(&l, &r, 1.4, 2.0);
        assert_eq!(w.zeta, 0.0);
    }

    #[test]
    fn supersonic_right_running_flow_upwinds_left() {
        // Both states moving right at Mach > 1: flux = physical flux of
        // the left state.
        let l = prim(1.0, 5.0, 1.0);
        let r = prim(0.5, 5.0, 0.5);
        let f = GodunovFlux.flux_x(&l, &r, 1.4);
        let exact = physical_flux_x(&l, 1.4);
        for k in 0..NVARS {
            assert!(
                (f[k] - exact[k]).abs() < 1e-8 * (1.0 + exact[k].abs()),
                "k = {k}"
            );
        }
    }
}
