//! MUSCL finite-volume right-hand side on one patch: slope-limited
//! interface states (the `States` component), a pluggable interface flux
//! (the `GodunovFlux` / `EFMFlux` components), and the conservative
//! divergence — assembled patch-by-patch exactly as the paper's
//! `InviscidFlux` adaptor drives them.

use crate::limiter::Limiter;
use crate::state::{cons_to_prim, prim_to_cons, Prim, NVARS};
use cca_core::scratch;
use cca_mesh::data::PatchData;
use cca_mesh::layout::KernelConfig;

/// An interface flux in the x-orientation; y fluxes are obtained by
/// rotating the states. Object-safe so assemblies can swap implementations
/// through a CCA port without recompiling.
pub trait FluxScheme {
    /// Numerical flux across an x-normal interface between reconstructed
    /// left and right states.
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; NVARS];

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

fn swap_uv(w: &Prim) -> Prim {
    Prim {
        rho: w.rho,
        u: w.v,
        v: w.u,
        p: w.p,
        zeta: w.zeta,
    }
}

/// Load the conserved vector of cell `(i, j)`.
#[inline]
fn load(pd: &PatchData, i: i64, j: i64) -> [f64; NVARS] {
    let mut u = [0.0; NVARS];
    for (var, uk) in u.iter_mut().enumerate() {
        *uk = pd.get(var, i, j);
    }
    u
}

/// Reconstruct the primitive states at the interface between cells `c`
/// (left) and `d` (right), using neighbours `b` (left of c) and `e`
/// (right of d). Limiting is applied to primitive variables. Public: this
/// is the kernel behind the paper's `States` component.
pub fn interface_states(
    b: &[f64; NVARS],
    c: &[f64; NVARS],
    d: &[f64; NVARS],
    e: &[f64; NVARS],
    gamma: f64,
    limiter: Limiter,
) -> (Prim, Prim) {
    let wb = cons_to_prim(b, gamma);
    let wc = cons_to_prim(c, gamma);
    let wd = cons_to_prim(d, gamma);
    let we = cons_to_prim(e, gamma);
    let fields = |w: &Prim| [w.rho, w.u, w.v, w.p, w.zeta];
    let fb = fields(&wb);
    let fc = fields(&wc);
    let fd = fields(&wd);
    let fe = fields(&we);
    let mut left = [0.0; NVARS];
    let mut right = [0.0; NVARS];
    for (k, (l, r)) in left.iter_mut().zip(right.iter_mut()).enumerate() {
        let slope_c = limiter.slope(fc[k] - fb[k], fd[k] - fc[k]);
        let slope_d = limiter.slope(fd[k] - fc[k], fe[k] - fd[k]);
        *l = fc[k] + 0.5 * slope_c;
        *r = fd[k] - 0.5 * slope_d;
    }
    // Guard positivity of the reconstructed thermodynamic state; if even
    // the cell average has gone non-physical (a transient RK2 stage near
    // a strong shock), apply a floor rather than propagate NaNs — the
    // standard production-code positivity fix.
    let guard = |f: [f64; NVARS], fallback: &Prim| -> Prim {
        let w = if f[0] > 0.0 && f[3] > 0.0 {
            Prim {
                rho: f[0],
                u: f[1],
                v: f[2],
                p: f[3],
                zeta: f[4],
            }
        } else {
            *fallback
        };
        Prim {
            rho: w.rho.max(1e-10),
            p: w.p.max(1e-10),
            ..w
        }
    };
    (guard(left, &wc), guard(right, &wd))
}

/// Accumulate `−∇·F` for every interior cell of `pd` into `rhs` (same
/// interior box, zero ghosts needed). `pd` must have ≥ 2 filled ghost
/// layers. `dx`/`dy` are this level's cell sizes. Snapshots the
/// process-wide [`KernelConfig`] once; see [`compute_rhs_cfg`].
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs(
    pd: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
    gamma: f64,
    scheme: &dyn FluxScheme,
    limiter: Limiter,
) {
    compute_rhs_cfg(
        pd,
        rhs,
        dx,
        dy,
        gamma,
        scheme,
        limiter,
        KernelConfig::current(),
    );
}

/// Cache-tiled MUSCL sweep with an explicit config (DESIGN.md §13).
///
/// The j-loop is blocked into bands of `cfg.band_rows` rows; within a
/// band the x-interface sweep runs first, then the y-interface sweep for
/// the interfaces *below* each cell row (the final `hi+1` interface rides
/// with the last band). Every cell still receives its four flux
/// contributions in the seed order — `+fᵢ/dx, −fᵢ₊₁/dx, +gⱼ/dy, −gⱼ₊₁/dy`
/// — so results are bit-identical at any tile size and pitch. Interface
/// fluxes of one row are staged in pooled scratch and applied per
/// variable over dense row slices (bounds hoisted, no per-cell
/// `contains` branches). `cfg.fast_div` multiplies by hoisted `1/dx`,
/// `1/dy` reciprocals instead of dividing per contribution
/// (tolerance-gated, default off).
#[allow(clippy::too_many_arguments)]
pub fn compute_rhs_cfg(
    pd: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
    gamma: f64,
    scheme: &dyn FluxScheme,
    limiter: Limiter,
    cfg: KernelConfig,
) {
    assert!(pd.nghost >= 2, "MUSCL needs two ghost layers");
    assert_eq!(pd.nvars, NVARS);
    assert_eq!(rhs.nvars, NVARS);
    let interior = pd.interior;
    for var in 0..NVARS {
        rhs.fill_var(var, 0.0);
    }
    let nxi = interior.nx() as usize;
    // Column offsets of the interior inside stored rows of pd / rhs.
    let c0 = (interior.lo[0] - pd.total_box().lo[0]) as usize;
    let r0 = (interior.lo[0] - rhs.total_box().lo[0]) as usize;
    let inv_dx = 1.0 / dx;
    let inv_dy = 1.0 / dy;
    // One row of staged interface fluxes, AoS per interface.
    let mut fx = scratch::take_f64((nxi + 1) * NVARS);
    let mut fy = scratch::take_f64(nxi * NVARS);

    let band_h = cfg.band_rows(interior.ny() as usize) as i64;
    let mut j0 = interior.lo[1];
    while j0 <= interior.hi[1] {
        let j1 = (j0 + band_h - 1).min(interior.hi[1]);
        // x fluxes: interfaces i-1/2 for i in lo..=hi+1, band rows only.
        for j in j0..=j1 {
            let rows: [&[f64]; NVARS] = std::array::from_fn(|var| pd.row(var, j));
            for ii in 0..=nxi {
                let s = c0 + ii;
                let b: [f64; NVARS] = std::array::from_fn(|var| rows[var][s - 2]);
                let c: [f64; NVARS] = std::array::from_fn(|var| rows[var][s - 1]);
                let d: [f64; NVARS] = std::array::from_fn(|var| rows[var][s]);
                let e: [f64; NVARS] = std::array::from_fn(|var| rows[var][s + 1]);
                let (wl, wr) = interface_states(&b, &c, &d, &e, gamma, limiter);
                fx[ii * NVARS..(ii + 1) * NVARS].copy_from_slice(&scheme.flux_x(&wl, &wr, gamma));
            }
            // Per cell and variable: += f_i/dx, then -= f_{i+1}/dx (the
            // seed's two rounded operations, in the seed's order).
            for var in 0..NVARS {
                let out = &mut rhs.row_mut(var, j)[r0..r0 + nxi];
                for (ii, o) in out.iter_mut().enumerate() {
                    let fl = fx[ii * NVARS + var];
                    let fr = fx[(ii + 1) * NVARS + var];
                    if cfg.fast_div {
                        *o = (*o + fl * inv_dx) - fr * inv_dx;
                    } else {
                        *o = (*o + fl / dx) - fr / dx;
                    }
                }
            }
        }
        // y fluxes via u/v rotation: interface row j sits below cell row
        // j; the band owns interfaces j0..=j1, plus hi+1 in the last band.
        let iface_hi = if j1 == interior.hi[1] { j1 + 1 } else { j1 };
        for j in j0..=iface_hi {
            let b_r: [&[f64]; NVARS] = std::array::from_fn(|var| pd.row(var, j - 2));
            let c_r: [&[f64]; NVARS] = std::array::from_fn(|var| pd.row(var, j - 1));
            let d_r: [&[f64]; NVARS] = std::array::from_fn(|var| pd.row(var, j));
            let e_r: [&[f64]; NVARS] = std::array::from_fn(|var| pd.row(var, j + 1));
            for ii in 0..nxi {
                let s = c0 + ii;
                let b: [f64; NVARS] = std::array::from_fn(|var| b_r[var][s]);
                let c: [f64; NVARS] = std::array::from_fn(|var| c_r[var][s]);
                let d: [f64; NVARS] = std::array::from_fn(|var| d_r[var][s]);
                let e: [f64; NVARS] = std::array::from_fn(|var| e_r[var][s]);
                let (wl, wr) = interface_states(&b, &c, &d, &e, gamma, limiter);
                let f_rot = scheme.flux_x(&swap_uv(&wl), &swap_uv(&wr), gamma);
                // Rotate the momentum components back.
                let f = [f_rot[0], f_rot[2], f_rot[1], f_rot[3], f_rot[4]];
                fy[ii * NVARS..(ii + 1) * NVARS].copy_from_slice(&f);
            }
            for var in 0..NVARS {
                if j > interior.lo[1] {
                    let out = &mut rhs.row_mut(var, j - 1)[r0..r0 + nxi];
                    for (ii, o) in out.iter_mut().enumerate() {
                        let g = fy[ii * NVARS + var];
                        *o -= if cfg.fast_div { g * inv_dy } else { g / dy };
                    }
                }
                if j <= interior.hi[1] {
                    let out = &mut rhs.row_mut(var, j)[r0..r0 + nxi];
                    for (ii, o) in out.iter_mut().enumerate() {
                        let g = fy[ii * NVARS + var];
                        *o += if cfg.fast_div { g * inv_dy } else { g / dy };
                    }
                }
            }
        }
        j0 = j1 + 1;
    }
}

/// Largest signal speed over the interior of a patch (per axis scaled by
/// cell size), for the CFL time step: `dt = cfl / max((|u|+c)/dx + (|v|+c)/dy)`.
pub fn max_wave_speed(pd: &PatchData, gamma: f64, dx: f64, dy: f64) -> f64 {
    let mut m: f64 = 0.0;
    for (i, j) in pd.interior.cells() {
        let u = load(pd, i, j);
        let w = cons_to_prim(&u, gamma);
        // Positivity floor: a transiently non-physical cell must not turn
        // the global dt into NaN.
        let c = (gamma * w.p.max(1e-10) / w.rho.max(1e-10)).sqrt();
        let sx = (w.u.abs() + c) / dx;
        let sy = (w.v.abs() + c) / dy;
        m = m.max(sx + sy);
    }
    m
}

/// Fill a patch with a uniform primitive state (test/IC helper).
pub fn fill_uniform(pd: &mut PatchData, w: &Prim, gamma: f64) {
    let u = prim_to_cons(w, gamma);
    let total = pd.total_box();
    for (i, j) in total.cells() {
        for (var, &uv) in u.iter().enumerate() {
            pd.set(var, i, j, uv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efm::EfmFlux;
    use crate::riemann::GodunovFlux;
    use cca_mesh::boxes::IntBox;

    fn uniform_patch(w: &Prim) -> PatchData {
        let mut pd = PatchData::new(IntBox::sized(8, 8), NVARS, 2);
        fill_uniform(&mut pd, w, 1.4);
        pd
    }

    #[test]
    fn uniform_flow_has_zero_rhs() {
        let w = Prim {
            rho: 1.2,
            u: 0.7,
            v: -0.4,
            p: 1.5,
            zeta: 0.3,
        };
        let pd = uniform_patch(&w);
        let mut rhs = PatchData::new(pd.interior, NVARS, 0);
        for scheme in [&GodunovFlux as &dyn FluxScheme, &EfmFlux] {
            compute_rhs(&pd, &mut rhs, 0.1, 0.1, 1.4, scheme, Limiter::VanLeer);
            for var in 0..NVARS {
                assert!(
                    rhs.interior_max_abs(var) < 1e-8,
                    "{} var {var}: {}",
                    scheme.name(),
                    rhs.interior_max_abs(var)
                );
            }
        }
    }

    #[test]
    fn rhs_conserves_totals_in_periodicity_free_interior() {
        // With a locally varying field, the sum of RHS over cells away
        // from the patch edge telescopes: total change equals boundary
        // fluxes only. Check by comparing sum over the full interior with
        // the flux difference computed through a wider patch.
        let mut pd = PatchData::new(IntBox::sized(12, 4), NVARS, 2);
        let gamma = 1.4;
        for (i, j) in pd.total_box().cells() {
            let w = Prim {
                rho: 1.0 + 0.1 * ((i as f64) * 0.3).sin(),
                u: 0.2,
                v: 0.0,
                p: 1.0 + 0.05 * ((i as f64) * 0.3).cos(),
                zeta: 0.0,
            };
            let u = prim_to_cons(&w, gamma);
            for (var, &uv) in u.iter().enumerate() {
                pd.set(var, i, j, uv);
            }
        }
        let mut rhs = PatchData::new(pd.interior, NVARS, 0);
        compute_rhs(
            &pd,
            &mut rhs,
            0.1,
            0.1,
            gamma,
            &GodunovFlux,
            Limiter::MinMod,
        );
        // Mass: interior sum of RHS = (F_left_boundary - F_right)/dx summed
        // over rows — nonzero in general but finite; here just require
        // finiteness and y-invariance (the field is y-independent).
        for var in 0..NVARS {
            for i in pd.interior.lo[0]..=pd.interior.hi[0] {
                let v0 = rhs.get(var, i, 0);
                for j in 1..=3 {
                    assert!(
                        (rhs.get(var, i, j) - v0).abs() < 1e-10,
                        "y-dependence crept in at var {var}"
                    );
                }
            }
        }
    }

    /// 1D Sod shock tube advanced with RK2 matches the exact solution.
    #[test]
    fn sod_shock_tube_converges_to_exact() {
        use crate::riemann::sample;
        let gamma = 1.4;
        let n = 200i64;
        let dx = 1.0 / n as f64;
        let mut pd = PatchData::new(IntBox::sized(n, 1), NVARS, 2);
        let left = Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
            zeta: 1.0,
        };
        let right = Prim {
            rho: 0.125,
            u: 0.0,
            v: 0.0,
            p: 0.1,
            zeta: 0.0,
        };
        for (i, j) in pd.total_box().cells() {
            let w = if (i as f64 + 0.5) * dx < 0.5 {
                left
            } else {
                right
            };
            let u = prim_to_cons(&w, gamma);
            for (var, &uv) in u.iter().enumerate() {
                pd.set(var, i, j, uv);
            }
        }
        let t_end = 0.2;
        let mut t = 0.0;
        let mut rhs = PatchData::new(pd.interior, NVARS, 0);
        let mut stage = pd.clone();
        while t < t_end {
            let smax = max_wave_speed(&pd, gamma, dx, 1e30);
            let dt = (0.4 / smax).min(t_end - t);
            // Heun: stage 1.
            fill_edge_ghosts_1d(&mut pd);
            compute_rhs(
                &pd,
                &mut rhs,
                dx,
                1e30,
                gamma,
                &GodunovFlux,
                Limiter::MinMod,
            );
            for (i, j) in pd.interior.cells() {
                for var in 0..NVARS {
                    stage.set(var, i, j, pd.get(var, i, j) + dt * rhs.get(var, i, j));
                }
            }
            fill_edge_ghosts_1d(&mut stage);
            let mut rhs2 = PatchData::new(pd.interior, NVARS, 0);
            compute_rhs(
                &stage,
                &mut rhs2,
                dx,
                1e30,
                gamma,
                &GodunovFlux,
                Limiter::MinMod,
            );
            let interior = pd.interior;
            for (i, j) in interior.cells() {
                for var in 0..NVARS {
                    let v =
                        pd.get(var, i, j) + 0.5 * dt * (rhs.get(var, i, j) + rhs2.get(var, i, j));
                    pd.set(var, i, j, v);
                }
            }
            t += dt;
        }
        // Compare density with the exact solution; L1 error should be
        // small (first-order at shocks: ~1e-2 at n = 200).
        let mut l1 = 0.0;
        for i in 0..n {
            let x = (i as f64 + 0.5) * dx;
            let exact = sample(&left, &right, gamma, (x - 0.5) / t_end);
            l1 += (pd.get(0, i, 0) - exact.rho).abs() * dx;
        }
        assert!(l1 < 0.012, "L1 density error = {l1}");
    }

    /// Zero-gradient ghost fill along x for the 1D test (y ghosts copy the
    /// interior row so the y-flux differences vanish).
    fn fill_edge_ghosts_1d(pd: &mut PatchData) {
        let int = pd.interior;
        let total = pd.total_box();
        for var in 0..NVARS {
            for j in total.lo[1]..=total.hi[1] {
                let jj = j.clamp(int.lo[1], int.hi[1]);
                for i in total.lo[0]..=total.hi[0] {
                    let ii = i.clamp(int.lo[0], int.hi[0]);
                    if ii != i || jj != j {
                        let v = pd.get(var, ii, jj);
                        pd.set(var, i, j, v);
                    }
                }
            }
        }
    }

    #[test]
    fn symmetric_blast_stays_symmetric() {
        let gamma = 1.4;
        let n = 16i64;
        let mut pd = PatchData::new(IntBox::sized(n, n), NVARS, 2);
        for (i, j) in pd.total_box().cells() {
            let cx = (i - n / 2) as f64 + 0.5;
            let cy = (j - n / 2) as f64 + 0.5;
            let r2 = cx * cx + cy * cy;
            let w = Prim {
                rho: 1.0,
                u: 0.0,
                v: 0.0,
                p: if r2 < 9.0 { 10.0 } else { 0.1 },
                zeta: 0.0,
            };
            let u = prim_to_cons(&w, gamma);
            for (var, &uv) in u.iter().enumerate() {
                pd.set(var, i, j, uv);
            }
        }
        let mut rhs = PatchData::new(pd.interior, NVARS, 0);
        compute_rhs(
            &pd,
            &mut rhs,
            0.1,
            0.1,
            gamma,
            &GodunovFlux,
            Limiter::VanLeer,
        );
        // Mirror symmetry: rho-RHS at (i,j) equals (n-1-i, j) and (i, n-1-j).
        for (i, j) in pd.interior.cells() {
            let a = rhs.get(0, i, j);
            let b = rhs.get(0, n - 1 - i, j);
            let c = rhs.get(0, i, n - 1 - j);
            assert!((a - b).abs() < 1e-9, "x mirror broken at ({i},{j})");
            assert!((a - c).abs() < 1e-9, "y mirror broken at ({i},{j})");
        }
    }

    /// Shocked, fully 2D field for layout/tiling regression tests.
    fn wavy_patch(nx: i64, ny: i64, quantum: usize) -> PatchData {
        let gamma = 1.4;
        let mut pd = PatchData::with_pitch_quantum(IntBox::sized(nx, ny), NVARS, 2, quantum);
        for (i, j) in pd.total_box().cells() {
            let (x, y) = (i as f64 * 0.37, j as f64 * 0.23);
            let w = Prim {
                rho: 1.0 + 0.4 * (x + y).sin().abs(),
                u: 0.6 * x.cos(),
                v: -0.3 * (y * 1.7).sin(),
                p: if (x.sin() * y.cos()) > 0.3 { 5.0 } else { 0.4 },
                zeta: 0.5 + 0.5 * (x - y).sin(),
            };
            let u = prim_to_cons(&w, gamma);
            for (var, &uv) in u.iter().enumerate() {
                pd.set(var, i, j, uv);
            }
        }
        pd
    }

    #[test]
    fn tiled_sweep_is_bit_identical_to_untiled() {
        let schemes = [&GodunovFlux as &dyn FluxScheme, &EfmFlux];
        for scheme in schemes {
            let reference = wavy_patch(19, 13, 1);
            let mut want = PatchData::new(reference.interior, NVARS, 0);
            compute_rhs_cfg(
                &reference,
                &mut want,
                0.05,
                0.08,
                1.4,
                scheme,
                Limiter::VanLeer,
                KernelConfig::UNTILED,
            );
            for (tile, quantum) in [(1, 8), (3, 16), (5, 1), (16, 8), (64, 8)] {
                let pd = wavy_patch(19, 13, quantum);
                let mut got = PatchData::new(pd.interior, NVARS, 0);
                compute_rhs_cfg(
                    &pd,
                    &mut got,
                    0.05,
                    0.08,
                    1.4,
                    scheme,
                    Limiter::VanLeer,
                    KernelConfig::tiled(tile),
                );
                for (i, j) in pd.interior.cells() {
                    for var in 0..NVARS {
                        assert_eq!(
                            got.get(var, i, j).to_bits(),
                            want.get(var, i, j).to_bits(),
                            "{} tile {tile} quantum {quantum} var {var} at ({i},{j})",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_div_sweep_is_tolerance_gated() {
        let pd = wavy_patch(17, 11, 8);
        let mut want = PatchData::new(pd.interior, NVARS, 0);
        compute_rhs_cfg(
            &pd,
            &mut want,
            0.05,
            0.08,
            1.4,
            &GodunovFlux,
            Limiter::MinMod,
            KernelConfig::UNTILED,
        );
        let mut got = PatchData::new(pd.interior, NVARS, 0);
        let cfg = KernelConfig {
            tile_rows: 4,
            fast_div: true,
        };
        compute_rhs_cfg(
            &pd,
            &mut got,
            0.05,
            0.08,
            1.4,
            &GodunovFlux,
            Limiter::MinMod,
            cfg,
        );
        for (i, j) in pd.interior.cells() {
            for var in 0..NVARS {
                let (a, b) = (want.get(var, i, j), got.get(var, i, j));
                let rel = (a - b).abs() / a.abs().max(1.0);
                assert!(rel <= 1e-12, "var {var} at ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn cfl_speed_positive_and_scales() {
        let w = Prim {
            rho: 1.0,
            u: 2.0,
            v: 1.0,
            p: 1.0,
            zeta: 0.0,
        };
        let pd = uniform_patch(&w);
        let s1 = max_wave_speed(&pd, 1.4, 0.1, 0.1);
        let s2 = max_wave_speed(&pd, 1.4, 0.05, 0.05);
        assert!(s1 > 0.0);
        assert!((s2 / s1 - 2.0).abs() < 1e-12);
    }
}
