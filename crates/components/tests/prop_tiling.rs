//! Property tests of the PR-9 layout/tiling contract: for random box
//! sizes × tile heights × pitch quanta, the cache-tiled diffusion RHS
//! and Godunov flux sweeps reproduce the untiled dense-pitch reference
//! bit-for-bit at 1, 2, and 4 executor workers (the kernels preserve
//! per-cell summation order), while the reassociating fast-div mode is
//! gated at 1e-12 relative per cell. Every run goes through an explicit
//! [`KernelConfig`], never the process-wide knobs, so cases are free of
//! cross-test interference.

use cca_components::diffusion::diffusion_rhs_with_kernels;
use cca_components::ports::{ChemistryKernel, ChemistrySourcePort, TransportKernel, TransportPort};
use cca_components::thermochem::ThermoChemistry;
use cca_components::transport_comp::DrfmComponent;
use cca_core::{Executor, Framework, Profiler};
use cca_hydro_solver::limiter::Limiter;
use cca_hydro_solver::muscl::compute_rhs_cfg;
use cca_hydro_solver::riemann::GodunovFlux;
use cca_hydro_solver::state::{prim_to_cons, Prim, NVARS};
use cca_mesh::{IntBox, KernelConfig, PatchData};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};

/// Species of the full H2-air mechanism ({T, Y1..Y8} state layout).
const NSPEC: usize = 9;
/// Patches per executor run — enough that 2 and 4 workers really share.
const NPATCH: usize = 4;

type Props = (Arc<dyn ChemistryKernel>, Arc<dyn TransportKernel>);

/// Chemistry/transport kernel snapshots from the real components,
/// assembled once for the whole test binary.
fn props() -> Props {
    static CELL: OnceLock<Props> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut fw = Framework::new();
        fw.register_class("ThermoChemistry", || Box::new(ThermoChemistry::full()));
        fw.register_class("DRFMComponent", || Box::<DrfmComponent>::default());
        cca_core::script::run_script(
            &mut fw,
            "instantiate ThermoChemistry chem\n\
             instantiate DRFMComponent drfm\n",
        )
        .expect("assembly");
        let chem: Rc<dyn ChemistrySourcePort> = fw
            .get_provides_port("chem", "chemistry")
            .expect("chemistry");
        let transport: Rc<dyn TransportPort> = fw
            .get_provides_port("drfm", "transport")
            .expect("transport");
        (
            chem.kernel().expect("chemistry kernel"),
            transport.kernel().expect("transport kernel"),
        )
    })
    .clone()
}

/// Deterministic modular pseudo-noise in [0, 1).
fn noise(i: i64, j: i64, seed: u64) -> f64 {
    (i.wrapping_mul(31) + j.wrapping_mul(17) + seed as i64).rem_euclid(23) as f64 / 23.0
}

/// A physical flame-state patch at the given pitch quantum; values are a
/// pure function of `(i, j, seed)`, so any quantum carries equal bits.
fn diffusion_patch(nx: i64, ny: i64, quantum: usize, seed: u64) -> PatchData {
    let mut pd = PatchData::with_pitch_quantum(IntBox::sized(nx, ny), NSPEC, 1, quantum);
    for (i, j) in pd.total_box().cells() {
        let h = noise(i, j, seed);
        pd.set(0, i, j, 320.0 + 1100.0 * h);
        pd.set(1, i, j, 0.02 + 0.015 * h);
        pd.set(2, i, j, 0.20 + 0.02 * h);
        for v in 3..NSPEC {
            pd.set(v, i, j, 1.5e-3 + 1.0e-4 * v as f64 * h);
        }
    }
    pd
}

/// A conserved Euler patch (two ghost rings) with shocks that keep the
/// limiter branches live.
fn flux_patch(nx: i64, ny: i64, quantum: usize, seed: u64) -> PatchData {
    let mut pd = PatchData::with_pitch_quantum(IntBox::sized(nx, ny), NVARS, 2, quantum);
    for (i, j) in pd.total_box().cells() {
        let a = noise(i, j, seed);
        let b = noise(j, i, seed.wrapping_add(7));
        let w = Prim {
            rho: 0.7 + 0.6 * a,
            u: 0.5 - 1.0 * b,
            v: -0.3 + 0.6 * a,
            p: if b > 0.6 { 3.5 } else { 0.4 },
            zeta: a,
        };
        let u = prim_to_cons(&w, 1.4);
        for (var, &uv) in u.iter().enumerate() {
            pd.set(var, i, j, uv);
        }
    }
    pd
}

/// The patch sizes of one case: NPATCH boxes staggered off the base
/// dims so workers get unequal work.
fn boxes(nx: i64, ny: i64) -> Vec<(i64, i64)> {
    (0..NPATCH as i64).map(|k| (nx + k, ny + k % 3)).collect()
}

fn assert_bits_equal(got: &PatchData, want: &PatchData) -> Result<(), TestCaseError> {
    for (i, j) in got.interior.cells() {
        for v in 0..got.nvars {
            prop_assert_eq!(
                got.get(v, i, j).to_bits(),
                want.get(v, i, j).to_bits(),
                "var {} at ({}, {}): {} vs {}",
                v,
                i,
                j,
                got.get(v, i, j),
                want.get(v, i, j)
            );
        }
    }
    Ok(())
}

fn assert_within_rel(got: &PatchData, want: &PatchData, tol: f64) -> Result<(), TestCaseError> {
    for (i, j) in got.interior.cells() {
        for v in 0..got.nvars {
            let (x, y) = (want.get(v, i, j), got.get(v, i, j));
            let rel = (x - y).abs() / x.abs().max(1.0);
            prop_assert!(rel <= tol, "var {} at ({}, {}): {} vs {}", v, i, j, x, y);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tiled_diffusion_matches_untiled_at_any_worker_count(
        nx in 4i64..18,
        ny in 4i64..18,
        tile in 1usize..8,
        quantum in prop::sample::select(vec![1usize, 4, 8, 16]),
        seed in 0usize..1000,
    ) {
        let seed = seed as u64;
        let (chem, transport) = props();
        let (dx, dy) = (0.01, 0.012);
        // Untiled dense-pitch references, evaluated serially.
        let mut want = Vec::new();
        for (k, &(bx, by)) in boxes(nx, ny).iter().enumerate() {
            let state = diffusion_patch(bx, by, 1, seed + k as u64);
            let mut rhs = PatchData::new(state.interior, NSPEC, 0);
            diffusion_rhs_with_kernels(
                &chem, &transport, &state, &mut rhs, dx, dy, KernelConfig::UNTILED,
            );
            want.push(rhs);
        }
        for (fast_div, workers) in
            [(false, 1usize), (false, 2), (false, 4), (true, 2)]
        {
            let cfg = KernelConfig { tile_rows: tile, fast_div };
            let items: Vec<(PatchData, PatchData)> = boxes(nx, ny)
                .iter()
                .enumerate()
                .map(|(k, &(bx, by))| {
                    let state = diffusion_patch(bx, by, quantum, seed + k as u64);
                    let rhs = PatchData::new(state.interior, NSPEC, 0);
                    (state, rhs)
                })
                .collect();
            let exec = Executor::new(Profiler::new());
            exec.set_workers(workers);
            let (c, t) = (chem.clone(), transport.clone());
            let out = exec
                .run("prop.diffusion-rhs", items, move |_, (state, rhs)| {
                    diffusion_rhs_with_kernels(&c, &t, state, rhs, dx, dy, cfg);
                })
                .into_result()
                .expect("kernels do not panic");
            for ((_, rhs), want) in out.iter().zip(&want) {
                if fast_div {
                    assert_within_rel(rhs, want, 1e-12)?;
                } else {
                    assert_bits_equal(rhs, want)?;
                }
            }
        }
    }

    #[test]
    fn tiled_flux_sweep_matches_untiled_at_any_worker_count(
        nx in 4i64..18,
        ny in 4i64..18,
        tile in 1usize..8,
        quantum in prop::sample::select(vec![1usize, 4, 8, 16]),
        seed in 0usize..1000,
    ) {
        let seed = seed as u64;
        let (dx, dy, gamma) = (0.05, 0.08, 1.4);
        let mut want = Vec::new();
        for (k, &(bx, by)) in boxes(nx, ny).iter().enumerate() {
            let state = flux_patch(bx, by, 1, seed + k as u64);
            let mut rhs = PatchData::new(state.interior, NVARS, 0);
            compute_rhs_cfg(
                &state, &mut rhs, dx, dy, gamma,
                &GodunovFlux, Limiter::MinMod, KernelConfig::UNTILED,
            );
            want.push(rhs);
        }
        for (fast_div, workers) in
            [(false, 1usize), (false, 2), (false, 4), (true, 2)]
        {
            let cfg = KernelConfig { tile_rows: tile, fast_div };
            let items: Vec<(PatchData, PatchData)> = boxes(nx, ny)
                .iter()
                .enumerate()
                .map(|(k, &(bx, by))| {
                    let state = flux_patch(bx, by, quantum, seed + k as u64);
                    let rhs = PatchData::new(state.interior, NVARS, 0);
                    (state, rhs)
                })
                .collect();
            let exec = Executor::new(Profiler::new());
            exec.set_workers(workers);
            let out = exec
                .run("prop.flux-sweep", items, move |_, (state, rhs)| {
                    compute_rhs_cfg(
                        state, rhs, dx, dy, gamma, &GodunovFlux, Limiter::MinMod, cfg,
                    );
                })
                .into_result()
                .expect("kernels do not panic");
            for ((_, rhs), want) in out.iter().zip(&want) {
                if fast_div {
                    assert_within_rel(rhs, want, 1e-12)?;
                } else {
                    assert_bits_equal(rhs, want)?;
                }
            }
        }
    }
}
