//! `GrACEComponent` — "the componetized version of the GrACE library",
//! serving the **Mesh**, **Data Object** and boundary-condition plumbing
//! subsystems (Tables 2 and 3). Wraps `cca-mesh`.

use crate::ports::{DataPort, MeshPort};
use cca_core::{Component, Services};
use cca_mesh::balance::assign_hierarchy;
use cca_mesh::bc::{apply_physical_bc, BcKind, Side};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::{DataObject, PatchData};
use cca_mesh::ghost::{fill_coarse_fine_ghosts, fill_same_level_ghosts};
use cca_mesh::hierarchy::Hierarchy;
use cca_mesh::interp::restrict_average;
use cca_mesh::regrid::{regrid_level, RegridParams};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Shared state behind both ports. Hierarchy and field storage live in
/// *separate* `RefCell`s so a mesh query (e.g. `covered_by_finer`) is legal
/// while a patch's data is mutably borrowed through `with_patch_mut`.
pub struct GraceInner {
    hier: RefCell<Option<Hierarchy>>,
    objects: RefCell<BTreeMap<String, DataObject>>,
    regrid_params: RegridParams,
    services: Services,
}

impl GraceInner {
    fn with_hier<R>(&self, f: impl FnOnce(&Hierarchy) -> R) -> R {
        f(self
            .hier
            .borrow()
            .as_ref()
            .expect("MeshPort::create must run before any other mesh call"))
    }
}

impl MeshPort for GraceInner {
    fn create(&self, nx: i64, ny: i64, lx: f64, ly: f64, ratio: i64) {
        let h = Hierarchy::new(
            IntBox::sized(nx, ny),
            [0.0, 0.0],
            [lx / nx as f64, ly / ny as f64],
            ratio,
        );
        *self.hier.borrow_mut() = Some(h);
        self.objects.borrow_mut().clear();
    }

    fn n_levels(&self) -> usize {
        self.with_hier(|h| h.n_levels())
    }

    fn dx(&self, level: usize) -> [f64; 2] {
        self.with_hier(|h| h.dx(level))
    }

    fn level_domain(&self, level: usize) -> IntBox {
        self.with_hier(|h| h.level_domain(level))
    }

    fn patches(&self, level: usize) -> Vec<(usize, IntBox, usize)> {
        self.with_hier(|h| {
            h.levels
                .get(level)
                .map(|l| {
                    l.patches
                        .iter()
                        .map(|p| (p.id, p.interior, p.owner))
                        .collect()
                })
                .unwrap_or_default()
        })
    }

    fn cell_center(&self, level: usize, i: i64, j: i64) -> [f64; 2] {
        self.with_hier(|h| h.cell_center(level, i, j))
    }

    fn regrid(&self, level: usize, flags: &[(i64, i64)]) -> Vec<usize> {
        let _scope = self.services.profiler().scope("GrACEComponent.regrid");
        let mut hier = self.hier.borrow_mut();
        let hier = hier
            .as_mut()
            .expect("MeshPort::create must run before regrid");
        let mut objects = self.objects.borrow_mut();
        let mut refs: Vec<&mut DataObject> = objects.values_mut().collect();
        regrid_level(hier, level, flags, &self.regrid_params, &mut refs)
    }

    fn load_balance(&self, nranks: usize) -> Vec<Vec<f64>> {
        // Paper future-work (1): if a LoadBalancerPort is connected, it
        // decides the assignment level by level; otherwise the built-in
        // parent-affinity greedy balancer runs.
        let balancer = self
            .services
            .get_port::<std::rc::Rc<dyn crate::ports::LoadBalancerPort>>("load-balancer")
            .ok();
        let mut hier = self.hier.borrow_mut();
        let hier = hier.as_mut().expect("create first");
        match balancer {
            Some(b) => {
                let mut level_loads = Vec::with_capacity(hier.n_levels());
                for level in 0..hier.n_levels() {
                    let works: Vec<f64> = hier.levels[level]
                        .patches
                        .iter()
                        .map(|p| p.interior.count() as f64)
                        .collect();
                    let owners = b.assign(&works, nranks);
                    let mut loads = vec![0.0; nranks];
                    for ((patch, owner), w) in hier.levels[level]
                        .patches
                        .iter_mut()
                        .zip(&owners)
                        .zip(&works)
                    {
                        patch.owner = *owner;
                        loads[*owner] += w;
                    }
                    level_loads.push(loads);
                }
                level_loads
            }
            None => assign_hierarchy(hier, |_, _, p| p.interior.count() as f64, nranks, 1.5),
        }
    }

    fn covered_by_finer(&self, level: usize, i: i64, j: i64) -> bool {
        self.with_hier(|h| {
            if level + 1 >= h.n_levels() {
                return false;
            }
            // Fine patches are unions of whole coarse cells (they come
            // from refined coarse boxes), so one corner decides.
            h.levels[level + 1]
                .patches
                .iter()
                .any(|p| p.interior.contains(i * h.ratio, j * h.ratio))
        })
    }
}

impl DataPort for GraceInner {
    fn create_data_object(&self, name: &str, nvars: usize, nghost: i64) {
        let mut dobj = DataObject::new(nvars, nghost);
        self.with_hier(|h| {
            for (level, l) in h.levels.iter().enumerate() {
                for p in &l.patches {
                    dobj.allocate(level, p.id, p.interior);
                }
            }
        });
        self.objects.borrow_mut().insert(name.to_string(), dobj);
    }

    fn nvars(&self, name: &str) -> usize {
        self.objects
            .borrow()
            .get(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"))
            .nvars
    }

    fn with_patch_mut(
        &self,
        name: &str,
        level: usize,
        id: usize,
        f: &mut dyn FnMut(&mut PatchData),
    ) {
        let mut objects = self.objects.borrow_mut();
        let pd = objects
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"))
            .patch_mut(level, id)
            .unwrap_or_else(|| panic!("no patch {id} on level {level} of '{name}'"));
        f(pd);
    }

    fn with_patch(&self, name: &str, level: usize, id: usize, f: &mut dyn FnMut(&PatchData)) {
        let objects = self.objects.borrow();
        let pd = objects
            .get(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"))
            .patch(level, id)
            .unwrap_or_else(|| panic!("no patch {id} on level {level} of '{name}'"));
        f(pd);
    }

    fn fill_ghosts(&self, name: &str, level: usize, bc: &dyn Fn(Side, usize) -> BcKind) {
        let _scope = self.services.profiler().scope("GrACEComponent.fill-ghosts");
        let hier = self.hier.borrow();
        let hier = hier.as_ref().expect("create first");
        let mut objects = self.objects.borrow_mut();
        let dobj = objects
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"));
        fill_same_level_ghosts(dobj, hier, level);
        fill_coarse_fine_ghosts(dobj, hier, level);
        let domain = hier.level_domain(level);
        for p in &hier.levels[level].patches {
            let pd = dobj.patch_mut(level, p.id).expect("allocated");
            apply_physical_bc(pd, &domain, &bc);
        }
    }

    fn restrict_down(&self, name: &str) {
        let hier = self.hier.borrow();
        let hier = hier.as_ref().expect("create first");
        let mut objects = self.objects.borrow_mut();
        let dobj = objects
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"));
        for level in (1..hier.n_levels()).rev() {
            // Borrow the patch lists in place: `hier` and the Data
            // Object are distinct RefCells, so no clone is needed to
            // split the borrows.
            let fine_patches = &hier.levels[level].patches;
            let coarse_patches = &hier.levels[level - 1].patches;
            for fp in fine_patches {
                let fine_in_coarse = fp.interior.coarsen(hier.ratio);
                for cp in coarse_patches {
                    if let Some(region) = fine_in_coarse.intersect(&cp.interior) {
                        let (coarse_pd, fine_pd) = dobj
                            .patch_pair_mut(level - 1, cp.id, level, fp.id)
                            .expect("both allocated");
                        restrict_average(coarse_pd, fine_pd, &region, hier.ratio);
                    }
                }
            }
        }
    }

    fn copy_object(&self, src: &str, dst: &str) {
        let mut objects = self.objects.borrow_mut();
        let src_obj = objects
            .get(src)
            .unwrap_or_else(|| panic!("unknown Data Object '{src}'"))
            .clone();
        let dst_obj = objects
            .get_mut(dst)
            .unwrap_or_else(|| panic!("unknown Data Object '{dst}'"));
        *dst_obj = src_obj;
    }

    fn take_level_patches(&self, name: &str, level: usize, ids: &[usize]) -> Vec<PatchData> {
        // True move (no copy): the patches leave the Data Object and the
        // executor's workers own them exclusively until put back.
        let mut objects = self.objects.borrow_mut();
        let dobj = objects
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"));
        ids.iter()
            .map(|&id| {
                dobj.take_patch(level, id)
                    .unwrap_or_else(|| panic!("no patch {id} on level {level} of '{name}'"))
            })
            .collect()
    }

    fn put_level_patches(&self, name: &str, level: usize, ids: &[usize], patches: Vec<PatchData>) {
        assert_eq!(
            ids.len(),
            patches.len(),
            "put_level_patches id/patch mismatch"
        );
        let mut objects = self.objects.borrow_mut();
        let dobj = objects
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown Data Object '{name}'"));
        for (&id, pd) in ids.iter().zip(patches) {
            dobj.insert(level, id, pd);
        }
    }

    fn axpy(&self, dst: &str, s: f64, src: &str) {
        let hier = self.hier.borrow();
        let hier = hier.as_ref().expect("create first");
        let mut objects = self.objects.borrow_mut();
        // Split-borrow via remove/insert of the destination.
        let mut dst_obj = objects
            .remove(dst)
            .unwrap_or_else(|| panic!("unknown Data Object '{dst}'"));
        {
            let src_obj = objects
                .get(src)
                .unwrap_or_else(|| panic!("unknown Data Object '{src}'"));
            for (level, l) in hier.levels.iter().enumerate() {
                for p in &l.patches {
                    let spd = src_obj.patch(level, p.id).expect("allocated");
                    let dpd = dst_obj.patch_mut(level, p.id).expect("allocated");
                    let interior = dpd.interior;
                    for var in 0..dpd.nvars {
                        for (i, j) in interior.cells() {
                            dpd.add(var, i, j, s * spd.get(var, i, j));
                        }
                    }
                }
            }
        }
        objects.insert(dst.to_string(), dst_obj);
    }
}

impl crate::ports::CheckpointPort for GraceInner {
    fn save(&self, path: &str) -> Result<(), String> {
        let hier = self.hier.borrow();
        let hier = hier.as_ref().ok_or("no hierarchy to checkpoint")?;
        let objects = self.objects.borrow();
        let mut file =
            std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| e.to_string())?);
        cca_mesh::checkpoint::write_checkpoint(hier, &objects, &mut file).map_err(|e| e.to_string())
    }

    fn restore(&self, path: &str) -> Result<(), String> {
        let mut file =
            std::io::BufReader::new(std::fs::File::open(path).map_err(|e| e.to_string())?);
        let (hier, objects) =
            cca_mesh::checkpoint::read_checkpoint(&mut file).map_err(|e| e.to_string())?;
        *self.hier.borrow_mut() = Some(hier);
        *self.objects.borrow_mut() = objects;
        Ok(())
    }

    fn save_bytes(&self) -> Result<Vec<u8>, String> {
        let hier = self.hier.borrow();
        let hier = hier.as_ref().ok_or("no hierarchy to checkpoint")?;
        let objects = self.objects.borrow();
        let mut buf = Vec::new();
        cca_mesh::checkpoint::write_checkpoint(hier, &objects, &mut buf)
            .map_err(|e| e.to_string())?;
        Ok(buf)
    }

    fn restore_bytes(&self, mut bytes: &[u8]) -> Result<(), String> {
        let (hier, objects) =
            cca_mesh::checkpoint::read_checkpoint(&mut bytes).map_err(|e| e.to_string())?;
        *self.hier.borrow_mut() = Some(hier);
        *self.objects.borrow_mut() = objects;
        Ok(())
    }
}

/// The component. Provides `mesh` (MeshPort) and `data` (DataPort).
#[derive(Default)]
pub struct GraceComponent {
    /// Regrid tuning (exposed for ablation studies).
    pub regrid_params: RegridParams,
}

impl Component for GraceComponent {
    fn set_services(&mut self, s: Services) {
        // Optional uses-port: a pluggable load balancer (future-work 1);
        // the built-in parent-affinity greedy balancer is the default.
        s.register_optional_uses_port::<Rc<dyn crate::ports::LoadBalancerPort>>("load-balancer");
        let inner = Rc::new(GraceInner {
            hier: RefCell::new(None),
            objects: RefCell::new(BTreeMap::new()),
            regrid_params: self.regrid_params,
            services: s.clone(),
        });
        s.add_provides_port::<Rc<dyn MeshPort>>("mesh", inner.clone());
        s.add_provides_port::<Rc<dyn DataPort>>("data", inner.clone());
        s.add_provides_port::<Rc<dyn crate::ports::CheckpointPort>>("checkpoint", inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports() -> (Rc<dyn MeshPort>, Rc<dyn DataPort>) {
        let mut fw = cca_core::Framework::new();
        fw.register_class("Grace", || Box::new(GraceComponent::default()));
        fw.instantiate("Grace", "g").unwrap();
        (
            fw.get_provides_port("g", "mesh").unwrap(),
            fw.get_provides_port("g", "data").unwrap(),
        )
    }

    #[test]
    fn create_and_query_geometry() {
        let (mesh, _) = ports();
        mesh.create(100, 100, 0.01, 0.01, 2);
        assert_eq!(mesh.n_levels(), 1);
        assert_eq!(mesh.dx(0), [1e-4, 1e-4]);
        let patches = mesh.patches(0);
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].1.count(), 10_000);
        let c = mesh.cell_center(0, 0, 0);
        assert!((c[0] - 5e-5).abs() < 1e-18);
    }

    #[test]
    fn data_object_follows_regrid() {
        let (mesh, data) = ports();
        mesh.create(32, 32, 1.0, 1.0, 2);
        data.create_data_object("phi", 2, 2);
        // Paint the coarse level with a marker value.
        let (id0, _, _) = mesh.patches(0)[0];
        data.with_patch_mut("phi", 0, id0, &mut |pd| pd.fill_var(0, 3.0));
        // Flag the center; the new fine level must hold prolonged data.
        let flags: Vec<(i64, i64)> = (12..20)
            .flat_map(|i| (12..20).map(move |j| (i, j)))
            .collect();
        let new_ids = mesh.regrid(0, &flags);
        assert!(!new_ids.is_empty());
        assert_eq!(mesh.n_levels(), 2);
        for id in new_ids {
            data.with_patch("phi", 1, id, &mut |pd| {
                let interior = pd.interior;
                for (i, j) in interior.cells() {
                    assert_eq!(pd.get(0, i, j), 3.0);
                }
            });
        }
    }

    #[test]
    fn restrict_down_averages_fine_onto_coarse() {
        let (mesh, data) = ports();
        mesh.create(16, 16, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 1);
        let flags: Vec<(i64, i64)> = (4..12).flat_map(|i| (4..12).map(move |j| (i, j))).collect();
        let ids = mesh.regrid(0, &flags);
        for id in &ids {
            data.with_patch_mut("u", 1, *id, &mut |pd| pd.fill_var(0, 8.0));
        }
        data.restrict_down("u");
        let (id0, _, _) = mesh.patches(0)[0];
        data.with_patch("u", 0, id0, &mut |pd| {
            // A coarse cell under the fine level got the fine average.
            assert_eq!(pd.get(0, 6, 6), 8.0);
            // Far away stays 0.
            assert_eq!(pd.get(0, 0, 0), 0.0);
        });
    }

    #[test]
    fn covered_by_finer_tracks_fine_patches() {
        let (mesh, data) = ports();
        mesh.create(16, 16, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 1);
        let flags: Vec<(i64, i64)> = (6..10).flat_map(|i| (6..10).map(move |j| (i, j))).collect();
        mesh.regrid(0, &flags);
        assert!(mesh.covered_by_finer(0, 7, 7));
        assert!(!mesh.covered_by_finer(0, 0, 0));
        assert!(!mesh.covered_by_finer(1, 20, 20)); // no level 2
    }

    #[test]
    fn axpy_and_copy() {
        let (mesh, data) = ports();
        mesh.create(8, 8, 1.0, 1.0, 2);
        data.create_data_object("a", 1, 0);
        data.create_data_object("b", 1, 0);
        let (id, _, _) = mesh.patches(0)[0];
        data.with_patch_mut("a", 0, id, &mut |pd| pd.fill_var(0, 2.0));
        data.with_patch_mut("b", 0, id, &mut |pd| pd.fill_var(0, 10.0));
        data.axpy("a", 0.5, "b");
        data.with_patch("a", 0, id, &mut |pd| assert_eq!(pd.get(0, 3, 3), 7.0));
        data.copy_object("b", "a");
        data.with_patch("a", 0, id, &mut |pd| assert_eq!(pd.get(0, 3, 3), 10.0));
    }

    #[test]
    fn fill_ghosts_applies_physical_bc() {
        let (mesh, data) = ports();
        mesh.create(8, 8, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 2);
        let (id, _, _) = mesh.patches(0)[0];
        data.with_patch_mut("u", 0, id, &mut |pd| pd.fill_var(0, 1.0));
        data.fill_ghosts("u", 0, &|_, _| BcKind::Dirichlet(300.0));
        data.with_patch("u", 0, id, &mut |pd| {
            assert_eq!(pd.get(0, -1, 3), 300.0);
            assert_eq!(pd.get(0, 8, 8), 300.0);
            assert_eq!(pd.get(0, 3, 3), 1.0);
        });
    }

    #[test]
    fn checkpoint_roundtrip_through_the_port() {
        use crate::ports::CheckpointPort;
        let mut fw = cca_core::Framework::new();
        fw.register_class("Grace", || Box::new(GraceComponent::default()));
        fw.instantiate("Grace", "g").unwrap();
        let mesh: Rc<dyn MeshPort> = fw.get_provides_port("g", "mesh").unwrap();
        let data: Rc<dyn DataPort> = fw.get_provides_port("g", "data").unwrap();
        let ckpt: Rc<dyn CheckpointPort> = fw.get_provides_port("g", "checkpoint").unwrap();
        mesh.create(8, 8, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 1);
        let (id, _, _) = mesh.patches(0)[0];
        data.with_patch_mut("u", 0, id, &mut |pd| pd.fill_var(0, 7.5));
        let path = std::env::temp_dir().join("cca_grace_ckpt_test.bin");
        let path = path.to_str().unwrap().to_string();
        ckpt.save(&path).unwrap();
        // Wreck the state, then restore.
        data.with_patch_mut("u", 0, id, &mut |pd| pd.fill_var(0, -1.0));
        ckpt.restore(&path).unwrap();
        data.with_patch("u", 0, id, &mut |pd| assert_eq!(pd.get(0, 3, 3), 7.5));
        let _ = std::fs::remove_file(&path);
        // Restoring a missing file reports an error, not a panic.
        assert!(ckpt.restore("/nonexistent/nope.bin").is_err());
    }

    #[test]
    fn checkpoint_bytes_roundtrip_without_filesystem() {
        use crate::ports::CheckpointPort;
        let mut fw = cca_core::Framework::new();
        fw.register_class("Grace", || Box::new(GraceComponent::default()));
        fw.instantiate("Grace", "g").unwrap();
        let mesh: Rc<dyn MeshPort> = fw.get_provides_port("g", "mesh").unwrap();
        let data: Rc<dyn DataPort> = fw.get_provides_port("g", "data").unwrap();
        let ckpt: Rc<dyn CheckpointPort> = fw.get_provides_port("g", "checkpoint").unwrap();
        mesh.create(8, 8, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 1);
        let (id, _, _) = mesh.patches(0)[0];
        data.with_patch_mut("u", 0, id, &mut |pd| pd.fill_var(0, 2.25));
        let bytes = ckpt.save_bytes().unwrap();
        // Saving twice yields identical bytes (the cache-fidelity basis).
        assert_eq!(bytes, ckpt.save_bytes().unwrap());
        data.with_patch_mut("u", 0, id, &mut |pd| pd.fill_var(0, -9.0));
        ckpt.restore_bytes(&bytes).unwrap();
        data.with_patch("u", 0, id, &mut |pd| assert_eq!(pd.get(0, 3, 3), 2.25));
        assert!(ckpt.restore_bytes(b"garbage").is_err());
    }

    #[test]
    fn pluggable_balancer_overrides_builtin() {
        use crate::balancer_comp::RoundRobinLoadBalancer;
        let mut fw = cca_core::Framework::new();
        fw.register_class("Grace", || Box::new(GraceComponent::default()));
        fw.register_class("RR", || Box::<RoundRobinLoadBalancer>::default());
        fw.instantiate("Grace", "g").unwrap();
        fw.instantiate("RR", "rr").unwrap();
        fw.connect("g", "load-balancer", "rr", "load-balancer")
            .unwrap();
        let mesh: Rc<dyn MeshPort> = fw.get_provides_port("g", "mesh").unwrap();
        mesh.create(16, 16, 1.0, 1.0, 2);
        // Regrid into several fine patches, then balance round-robin.
        let flags: Vec<(i64, i64)> = (2..6)
            .flat_map(|i| (2..6).map(move |j| (i, j)))
            .chain((10..14).flat_map(|i| (10..14).map(move |j| (i, j))))
            .collect();
        mesh.regrid(0, &flags);
        mesh.load_balance(2);
        let owners: Vec<usize> = mesh.patches(1).iter().map(|(_, _, o)| *o).collect();
        // Round-robin: owners alternate in patch order.
        for (k, o) in owners.iter().enumerate() {
            assert_eq!(*o, k % 2, "{owners:?}");
        }
    }

    #[test]
    fn load_balance_assigns_owners() {
        let (mesh, data) = ports();
        mesh.create(32, 32, 1.0, 1.0, 2);
        data.create_data_object("u", 1, 0);
        let flags: Vec<(i64, i64)> = (4..28).flat_map(|i| (4..12).map(move |j| (i, j))).collect();
        mesh.regrid(0, &flags);
        let loads = mesh.load_balance(3);
        assert_eq!(loads.len(), mesh.n_levels());
        // All level-0 work lands somewhere.
        assert!(loads[0].iter().sum::<f64>() > 0.0);
    }
}
