//! `DRFMComponent` ("a thin C++ wrapper around the Fortran77 DRFM
//! package" — here around `cca-transport`) and `MaxDiffCoeffEvaluator`
//! ("used by the explicit integrator to evaluate the maximum diffusion
//! coefficient over the domain to determine the maximum stable
//! timestep").

use crate::ports::{DataPort, EigenEstimatePort, MeshPort, TransportKernel, TransportPort};
use cca_core::{Component, Services};
use cca_transport::TransportModel;
use std::rc::Rc;
use std::sync::Arc;

/// Thread-safe core: the DRFM property fits are immutable data, so the
/// kernel is the model itself. The port face delegates to it, keeping
/// serial and worker-thread evaluations on the same code.
struct DrfmKernel {
    model: TransportModel,
}

impl TransportKernel for DrfmKernel {
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        self.model.mix_diffusivities(t, p, x, out);
    }

    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        self.model.mix_conductivity(t, x)
    }
}

struct DrfmInner {
    kernel: Arc<DrfmKernel>,
}

impl TransportPort for DrfmInner {
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        TransportKernel::mix_diffusivities(&*self.kernel, t, p, x, out);
    }

    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        TransportKernel::mix_conductivity(&*self.kernel, t, x)
    }

    fn max_diffusivity(&self, t: f64, p: f64) -> f64 {
        self.kernel.model.max_diffusivity(t, p)
    }

    fn kernel(&self) -> Option<Arc<dyn TransportKernel>> {
        Some(self.kernel.clone())
    }
}

/// The transport-property component. Provides `transport` (TransportPort)
/// for the full 9-species H₂–air system.
#[derive(Default)]
pub struct DrfmComponent;

impl Component for DrfmComponent {
    fn set_services(&mut self, s: Services) {
        let model =
            TransportModel::for_species(&["H2", "O2", "O", "OH", "H", "H2O", "HO2", "H2O2", "N2"]);
        s.add_provides_port::<Rc<dyn TransportPort>>(
            "transport",
            Rc::new(DrfmInner {
                kernel: Arc::new(DrfmKernel { model }),
            }),
        );
    }
}

struct MaxDiffInner {
    services: Services,
}

impl EigenEstimatePort for MaxDiffInner {
    fn estimate(&self, name: &str) -> f64 {
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .expect("MaxDiffCoeffEvaluator needs the transport port");
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .expect("MaxDiffCoeffEvaluator needs the mesh port");
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .expect("MaxDiffCoeffEvaluator needs the data port");
        // Hottest temperature anywhere (T is variable 0 of the reacting
        // Data Object).
        let mut t_max: f64 = 300.0;
        for level in 0..mesh.n_levels() {
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    let interior = pd.interior;
                    for (i, j) in interior.cells() {
                        t_max = t_max.max(pd.get(0, i, j));
                    }
                });
            }
        }
        let d_max = transport.max_diffusivity(t_max, 101_325.0);
        // Spectral radius of the diffusion operator on the finest level:
        // rho <= 4 D (1/dx^2 + 1/dy^2).
        let finest = mesh.n_levels() - 1;
        let dx = mesh.dx(finest);
        4.0 * d_max * (1.0 / (dx[0] * dx[0]) + 1.0 / (dx[1] * dx[1]))
    }
}

/// The spectral-radius estimator. Provides `eigen-estimate`
/// (EigenEstimatePort); uses `transport`, `mesh`, `data`.
#[derive(Default)]
pub struct MaxDiffCoeffEvaluator;

impl Component for MaxDiffCoeffEvaluator {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn TransportPort>>("transport");
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.add_provides_port::<Rc<dyn EigenEstimatePort>>(
            "eigen-estimate",
            Rc::new(MaxDiffInner {
                services: s.clone(),
            }),
        );
    }
}
