//! `StatisticsComponent` — field reductions and the interfacial
//! circulation diagnostic of Fig. 7, counting every physical region at its
//! finest covering only.

use crate::ports::{DataPort, MeshPort, StatisticsPort};
use cca_core::{Component, Services};
use std::rc::Rc;

struct Inner {
    services: Services,
}

impl Inner {
    fn ports(&self) -> (Rc<dyn MeshPort>, Rc<dyn DataPort>) {
        (
            self.services
                .get_port::<Rc<dyn MeshPort>>("mesh")
                .expect("StatisticsComponent needs the mesh port"),
            self.services
                .get_port::<Rc<dyn DataPort>>("data")
                .expect("StatisticsComponent needs the data port"),
        )
    }
}

impl StatisticsPort for Inner {
    fn max_var(&self, name: &str, var: usize) -> f64 {
        let (mesh, data) = self.ports();
        let mut m = f64::NEG_INFINITY;
        for level in 0..mesh.n_levels() {
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    let interior = pd.interior;
                    for (i, j) in interior.cells() {
                        m = m.max(pd.get(var, i, j));
                    }
                });
            }
        }
        m
    }

    fn min_var(&self, name: &str, var: usize) -> f64 {
        let (mesh, data) = self.ports();
        let mut m = f64::INFINITY;
        for level in 0..mesh.n_levels() {
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    let interior = pd.interior;
                    for (i, j) in interior.cells() {
                        m = m.min(pd.get(var, i, j));
                    }
                });
            }
        }
        m
    }

    fn circulation(&self, name: &str, zeta_lo: f64, zeta_hi: f64) -> f64 {
        let (mesh, data) = self.ports();
        let mut gamma = 0.0;
        for level in 0..mesh.n_levels() {
            let dx = mesh.dx(level);
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    gamma += cca_hydro_solver::diag::interfacial_circulation(
                        pd,
                        dx[0],
                        dx[1],
                        zeta_lo,
                        zeta_hi,
                        &|i, j| !mesh.covered_by_finer(level, i, j),
                    );
                });
            }
        }
        gamma
    }

    fn integral(&self, name: &str, var: usize) -> f64 {
        let (mesh, data) = self.ports();
        let mut total = 0.0;
        for level in 0..mesh.n_levels() {
            let dx = mesh.dx(level);
            let da = dx[0] * dx[1];
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    let interior = pd.interior;
                    for (i, j) in interior.cells() {
                        if !mesh.covered_by_finer(level, i, j) {
                            total += pd.get(var, i, j) * da;
                        }
                    }
                });
            }
        }
        total
    }
}

/// The component: provides `statistics`; uses `mesh`, `data`.
#[derive(Default)]
pub struct StatisticsComponent;

impl Component for StatisticsComponent {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.add_provides_port::<Rc<dyn StatisticsPort>>(
            "statistics",
            Rc::new(Inner {
                services: s.clone(),
            }),
        );
    }
}
