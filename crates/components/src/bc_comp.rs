//! `BoundaryConditions` components. The shock tube of §4.3 "has
//! reflecting boundary conditions above and below and outflow on the
//! right"; the reaction–diffusion flame burns in an open domain modeled
//! with zero-gradient (adiabatic, no-flux) walls.

use crate::ports::BoundaryConditionPort;
use cca_core::{Component, Services};
use cca_mesh::bc::{BcKind, Side};
use std::rc::Rc;

struct ShockTube;

impl BoundaryConditionPort for ShockTube {
    fn rule(&self, side: Side, var: usize) -> BcKind {
        match side {
            // Reflecting walls above and below: mirror everything, negate
            // the normal momentum (variable 2 = ρv).
            Side::YLo | Side::YHi => BcKind::Reflect { odd: var == 2 },
            // Outflow (zero gradient) right; the left state is the
            // uniform post-shock inflow, which zero-gradient preserves.
            Side::XLo | Side::XHi => BcKind::ZeroGradient,
        }
    }
}

/// Shock-tube boundary conditions: provides `bc`.
#[derive(Default)]
pub struct BoundaryConditions;

impl Component for BoundaryConditions {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn BoundaryConditionPort>>("bc", Rc::new(ShockTube));
    }
}

struct Adiabatic;

impl BoundaryConditionPort for Adiabatic {
    fn rule(&self, _side: Side, _var: usize) -> BcKind {
        BcKind::ZeroGradient
    }
}

/// Adiabatic no-flux walls for the reaction–diffusion box: provides `bc`.
#[derive(Default)]
pub struct AdiabaticWallsBc;

impl Component for AdiabaticWallsBc {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn BoundaryConditionPort>>("bc", Rc::new(Adiabatic));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shock_tube_rules() {
        let bc = ShockTube;
        assert_eq!(bc.rule(Side::YLo, 2), BcKind::Reflect { odd: true });
        assert_eq!(bc.rule(Side::YHi, 1), BcKind::Reflect { odd: false });
        assert_eq!(bc.rule(Side::XHi, 0), BcKind::ZeroGradient);
    }

    #[test]
    fn adiabatic_is_zero_gradient_everywhere() {
        let bc = Adiabatic;
        for side in [Side::XLo, Side::XHi, Side::YLo, Side::YHi] {
            for var in 0..9 {
                assert_eq!(bc.rule(side, var), BcKind::ZeroGradient);
            }
        }
    }
}
