//! Load-balancer components — the paper's future-work item (1): a defined
//! interface to load balancers so "a number of them" can be tested by
//! assembly-time substitution, exactly like the Godunov→EFM flux swap.

use crate::ports::LoadBalancerPort;
use cca_core::{Component, Services};
use cca_mesh::balance::assign_greedy;
use std::rc::Rc;

struct Greedy;

impl LoadBalancerPort for Greedy {
    fn assign(&self, work: &[f64], nranks: usize) -> Vec<usize> {
        assign_greedy(work, nranks)
    }

    fn balancer_name(&self) -> &'static str {
        "greedy-lpt"
    }
}

/// Work-aware greedy LPT balancer (the production choice). Provides
/// `load-balancer`.
#[derive(Default)]
pub struct GreedyLoadBalancer;

impl Component for GreedyLoadBalancer {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn LoadBalancerPort>>("load-balancer", Rc::new(Greedy));
    }
}

struct RoundRobin;

impl LoadBalancerPort for RoundRobin {
    fn assign(&self, work: &[f64], nranks: usize) -> Vec<usize> {
        (0..work.len()).map(|i| i % nranks.max(1)).collect()
    }

    fn balancer_name(&self) -> &'static str {
        "round-robin"
    }
}

/// Work-blind round-robin balancer (the naive baseline the ablation bench
/// measures against). Provides `load-balancer`.
#[derive(Default)]
pub struct RoundRobinLoadBalancer;

impl Component for RoundRobinLoadBalancer {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn LoadBalancerPort>>("load-balancer", Rc::new(RoundRobin));
    }
}

struct SpaceFilling;

impl LoadBalancerPort for SpaceFilling {
    /// Contiguous block partition in input (space-filling-curve) order:
    /// splits the prefix-sum of work into `nranks` near-equal segments.
    /// Preserves locality (neighbouring patches stay together) at some
    /// balance cost — the HDDA/DAGH (GrACE-lineage) strategy.
    fn assign(&self, work: &[f64], nranks: usize) -> Vec<usize> {
        let total: f64 = work.iter().sum();
        let per_rank = total / nranks.max(1) as f64;
        let mut owner = Vec::with_capacity(work.len());
        let mut acc = 0.0;
        for w in work {
            let r = if per_rank > 0.0 {
                ((acc / per_rank) as usize).min(nranks - 1)
            } else {
                0
            };
            owner.push(r);
            acc += w;
        }
        owner
    }

    fn balancer_name(&self) -> &'static str {
        "space-filling-blocks"
    }
}

/// Locality-preserving block balancer in curve order (GrACE's composite
/// approach). Provides `load-balancer`.
#[derive(Default)]
pub struct SpaceFillingLoadBalancer;

impl Component for SpaceFillingLoadBalancer {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn LoadBalancerPort>>("load-balancer", Rc::new(SpaceFilling));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_mesh::balance::imbalance;

    fn loads(owners: &[usize], work: &[f64], nranks: usize) -> Vec<f64> {
        let mut l = vec![0.0; nranks];
        for (o, w) in owners.iter().zip(work) {
            l[*o] += w;
        }
        l
    }

    #[test]
    fn all_balancers_produce_valid_assignments() {
        let work = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for (port, name) in [
            (&Greedy as &dyn LoadBalancerPort, "greedy-lpt"),
            (&RoundRobin, "round-robin"),
            (&SpaceFilling, "space-filling-blocks"),
        ] {
            let owners = port.assign(&work, 3);
            assert_eq!(owners.len(), work.len(), "{name}");
            assert!(owners.iter().all(|&o| o < 3), "{name}");
            assert_eq!(port.balancer_name(), name);
        }
    }

    #[test]
    fn greedy_beats_round_robin_on_skewed_work() {
        let mut work = vec![1.0; 15];
        work.push(15.0); // one burning patch
        let gi = imbalance(&loads(&Greedy.assign(&work, 4), &work, 4));
        let ri = imbalance(&loads(&RoundRobin.assign(&work, 4), &work, 4));
        assert!(gi < ri, "greedy {gi} vs rr {ri}");
    }

    #[test]
    fn space_filling_blocks_are_contiguous() {
        let work = vec![1.0; 12];
        let owners = SpaceFilling.assign(&work, 4);
        // Owners are non-decreasing (contiguous blocks in curve order).
        for pair in owners.windows(2) {
            assert!(pair[0] <= pair[1], "{owners:?}");
        }
        // And roughly balanced for uniform work.
        let l = loads(&owners, &work, 4);
        assert!(imbalance(&l) < 1.5, "{l:?}");
    }

    #[test]
    fn components_register_through_framework() {
        let mut fw = cca_core::Framework::new();
        fw.register_class("Greedy", || Box::<GreedyLoadBalancer>::default());
        fw.register_class("RR", || Box::<RoundRobinLoadBalancer>::default());
        fw.instantiate("Greedy", "g").unwrap();
        fw.instantiate("RR", "r").unwrap();
        let g: Rc<dyn LoadBalancerPort> = fw.get_provides_port("g", "load-balancer").unwrap();
        let r: Rc<dyn LoadBalancerPort> = fw.get_provides_port("r", "load-balancer").unwrap();
        assert_eq!(g.balancer_name(), "greedy-lpt");
        assert_eq!(r.balancer_name(), "round-robin");
    }
}
