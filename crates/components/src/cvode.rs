//! `CvodeComponent` — "an implicit stiff/non-stiff integrator that
//! time-advances the system as it ignites. This is a thin wrapper around
//! the Cvode integrator library." The wrapped library here is the BDF
//! integrator of `cca-solvers`.

use crate::ports::{IntegrateStats, OdeIntegratorPort, OdeRhsPort};
use cca_core::{Component, Services};
use cca_solvers::bdf::{Bdf, BdfConfig};
use cca_solvers::ode::OdeSystem;
use std::cell::Cell;
use std::rc::Rc;

struct RhsAdapter {
    port: Rc<dyn OdeRhsPort>,
}

impl OdeSystem for RhsAdapter {
    fn dim(&self) -> usize {
        self.port.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        // One virtual call through the CCA port per RHS evaluation — the
        // dispatch whose cost Table 4 bounds.
        self.port.eval(t, y, dydt);
    }
}

struct Inner {
    rtol: Cell<f64>,
    atol: Cell<f64>,
    h_init: Cell<Option<f64>>,
}

impl OdeIntegratorPort for Inner {
    fn integrate(
        &self,
        rhs: Rc<dyn OdeRhsPort>,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<IntegrateStats, String> {
        let bdf = Bdf::new(BdfConfig {
            rtol: self.rtol.get(),
            atol: self.atol.get(),
            h_init: self.h_init.get(),
            ..BdfConfig::default()
        });
        let sys = RhsAdapter { port: rhs };
        let stats = bdf.integrate(&sys, t0, t1, y).map_err(|e| e.to_string())?;
        Ok(IntegrateStats {
            steps: stats.steps,
            rhs_evals: stats.rhs_evals,
            jacobians: stats.jac_evals,
        })
    }

    fn set_tolerances(&self, rtol: f64, atol: f64) {
        self.rtol.set(rtol);
        self.atol.set(atol);
    }

    fn set_initial_step(&self, h: Option<f64>) {
        self.h_init.set(h);
    }
}

/// The component. Provides `integrator` (OdeIntegratorPort).
#[derive(Default)]
pub struct CvodeComponent;

impl Component for CvodeComponent {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn OdeIntegratorPort>>(
            "integrator",
            Rc::new(Inner {
                rtol: Cell::new(1e-8),
                atol: Cell::new(1e-14),
                h_init: Cell::new(None),
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay(Cell<usize>);
    impl OdeRhsPort for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            self.0.set(self.0.get() + 1);
            d[0] = -y[0];
        }
        fn nfe(&self) -> usize {
            self.0.get()
        }
    }

    fn integrator() -> Rc<dyn OdeIntegratorPort> {
        let mut fw = cca_core::Framework::new();
        fw.register_class("Cvode", || Box::new(CvodeComponent));
        fw.instantiate("Cvode", "c").unwrap();
        fw.get_provides_port("c", "integrator").unwrap()
    }

    #[test]
    fn integrates_through_the_port() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        let mut y = [1.0];
        let stats = integ.integrate(rhs.clone(), 0.0, 2.0, &mut y).unwrap();
        assert!((y[0] - (-2.0f64).exp()).abs() < 1e-7, "y = {}", y[0]);
        // The port's counter saw exactly the integrator's RHS calls.
        assert_eq!(rhs.nfe(), stats.rhs_evals);
        assert!(stats.steps > 0 && stats.jacobians > 0);
    }

    #[test]
    fn tolerances_are_settable() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        integ.set_tolerances(1e-4, 1e-8);
        let mut y_loose = [1.0];
        let loose = integ
            .integrate(rhs.clone(), 0.0, 1.0, &mut y_loose)
            .unwrap();
        integ.set_tolerances(1e-11, 1e-14);
        let mut y_tight = [1.0];
        let tight = integ.integrate(rhs, 0.0, 1.0, &mut y_tight).unwrap();
        assert!(tight.rhs_evals > loose.rhs_evals);
        assert!(
            (y_tight[0] - (-1.0f64).exp()).abs() <= (y_loose[0] - (-1.0f64).exp()).abs() + 1e-12
        );
    }

    #[test]
    fn reports_failures_as_strings() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        let mut y = [1.0];
        let err = integ.integrate(rhs, 1.0, 0.0, &mut y).err().unwrap();
        assert!(err.contains("t1 > t0"), "{err}");
    }
}
