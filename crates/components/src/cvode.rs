//! `CvodeComponent` — "an implicit stiff/non-stiff integrator that
//! time-advances the system as it ignites. This is a thin wrapper around
//! the Cvode integrator library." The wrapped library here is the BDF
//! integrator of `cca-solvers`.

use crate::ports::{IntegrateStats, OdeCellKernel, OdeIntegratorPort, OdeRhsPort, OdeSystemKernel};
use cca_core::{Component, Services};
use cca_solvers::bdf::{Bdf, BdfConfig, BdfStats};
use cca_solvers::ode::OdeSystem;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

struct RhsAdapter {
    port: Rc<dyn OdeRhsPort>,
}

impl OdeSystem for RhsAdapter {
    fn dim(&self) -> usize {
        self.port.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        // One virtual call through the CCA port per RHS evaluation — the
        // dispatch whose cost Table 4 bounds.
        self.port.eval(t, y, dydt);
    }
}

/// Kernel-side adapter: same one-virtual-call-per-RHS shape as
/// [`RhsAdapter`], but over the `Sync` kernel system.
struct KernelSysAdapter<'a> {
    sys: &'a dyn OdeSystemKernel,
}

impl OdeSystem for KernelSysAdapter<'_> {
    fn dim(&self) -> usize {
        self.sys.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.sys.eval(t, y, dydt);
    }
}

fn to_port_stats(stats: BdfStats) -> IntegrateStats {
    IntegrateStats {
        steps: stats.steps,
        rhs_evals: stats.rhs_evals,
        jacobians: stats.jac_evals,
    }
}

/// A configuration snapshot of the component: tolerances and initial
/// step captured at [`OdeIntegratorPort::cell_kernel`] time. Runs the
/// exact `Bdf` code the port path runs, so a cell integrated on a worker
/// thread is bit-identical to one integrated through the port.
struct BdfCellKernel {
    rtol: f64,
    atol: f64,
    h_init: Option<f64>,
}

impl OdeCellKernel for BdfCellKernel {
    fn integrate(
        &self,
        sys: &dyn OdeSystemKernel,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<IntegrateStats, String> {
        let bdf = Bdf::new(BdfConfig {
            rtol: self.rtol,
            atol: self.atol,
            h_init: self.h_init,
            ..BdfConfig::default()
        });
        let adapter = KernelSysAdapter { sys };
        let stats = bdf
            .integrate(&adapter, t0, t1, y)
            .map_err(|e| e.to_string())?;
        Ok(to_port_stats(stats))
    }
}

struct Inner {
    rtol: Cell<f64>,
    atol: Cell<f64>,
    h_init: Cell<Option<f64>>,
}

impl OdeIntegratorPort for Inner {
    fn integrate(
        &self,
        rhs: Rc<dyn OdeRhsPort>,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<IntegrateStats, String> {
        let bdf = Bdf::new(BdfConfig {
            rtol: self.rtol.get(),
            atol: self.atol.get(),
            h_init: self.h_init.get(),
            ..BdfConfig::default()
        });
        let sys = RhsAdapter { port: rhs };
        let stats = bdf.integrate(&sys, t0, t1, y).map_err(|e| e.to_string())?;
        Ok(to_port_stats(stats))
    }

    fn set_tolerances(&self, rtol: f64, atol: f64) {
        self.rtol.set(rtol);
        self.atol.set(atol);
    }

    fn set_initial_step(&self, h: Option<f64>) {
        self.h_init.set(h);
    }

    fn cell_kernel(&self) -> Option<Arc<dyn OdeCellKernel>> {
        Some(Arc::new(BdfCellKernel {
            rtol: self.rtol.get(),
            atol: self.atol.get(),
            h_init: self.h_init.get(),
        }))
    }
}

/// The component. Provides `integrator` (OdeIntegratorPort).
#[derive(Default)]
pub struct CvodeComponent;

impl Component for CvodeComponent {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn OdeIntegratorPort>>(
            "integrator",
            Rc::new(Inner {
                rtol: Cell::new(1e-8),
                atol: Cell::new(1e-14),
                h_init: Cell::new(None),
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay(Cell<usize>);
    impl OdeRhsPort for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            self.0.set(self.0.get() + 1);
            d[0] = -y[0];
        }
        fn nfe(&self) -> usize {
            self.0.get()
        }
    }

    fn integrator() -> Rc<dyn OdeIntegratorPort> {
        let mut fw = cca_core::Framework::new();
        fw.register_class("Cvode", || Box::new(CvodeComponent));
        fw.instantiate("Cvode", "c").unwrap();
        fw.get_provides_port("c", "integrator").unwrap()
    }

    #[test]
    fn integrates_through_the_port() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        let mut y = [1.0];
        let stats = integ.integrate(rhs.clone(), 0.0, 2.0, &mut y).unwrap();
        assert!((y[0] - (-2.0f64).exp()).abs() < 1e-7, "y = {}", y[0]);
        // The port's counter saw exactly the integrator's RHS calls.
        assert_eq!(rhs.nfe(), stats.rhs_evals);
        assert!(stats.steps > 0 && stats.jacobians > 0);
    }

    #[test]
    fn tolerances_are_settable() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        integ.set_tolerances(1e-4, 1e-8);
        let mut y_loose = [1.0];
        let loose = integ
            .integrate(rhs.clone(), 0.0, 1.0, &mut y_loose)
            .unwrap();
        integ.set_tolerances(1e-11, 1e-14);
        let mut y_tight = [1.0];
        let tight = integ.integrate(rhs, 0.0, 1.0, &mut y_tight).unwrap();
        assert!(tight.rhs_evals > loose.rhs_evals);
        assert!(
            (y_tight[0] - (-1.0f64).exp()).abs() <= (y_loose[0] - (-1.0f64).exp()).abs() + 1e-12
        );
    }

    #[test]
    fn cell_kernel_is_bit_identical_to_the_port_path() {
        struct DecaySys;
        impl crate::ports::OdeSystemKernel for DecaySys {
            fn dim(&self) -> usize {
                1
            }
            fn eval(&self, _t: f64, y: &[f64], d: &mut [f64]) {
                d[0] = -y[0];
            }
        }
        let integ = integrator();
        integ.set_tolerances(1e-9, 1e-13);
        let mut y_port = [1.0];
        let port_stats = integ
            .integrate(Rc::new(Decay(Cell::new(0))), 0.0, 1.5, &mut y_port)
            .unwrap();
        // Snapshot taken after set_tolerances: same configuration.
        let kernel = integ.cell_kernel().expect("Cvode offers a cell kernel");
        let mut y_kernel = [1.0];
        let kernel_stats = kernel
            .integrate(&DecaySys, 0.0, 1.5, &mut y_kernel)
            .unwrap();
        assert_eq!(y_port[0].to_bits(), y_kernel[0].to_bits());
        assert_eq!(port_stats, kernel_stats);
    }

    #[test]
    fn reports_failures_as_strings() {
        let integ = integrator();
        let rhs = Rc::new(Decay(Cell::new(0)));
        let mut y = [1.0];
        let err = integ.integrate(rhs, 1.0, 0.0, &mut y).err().unwrap();
        assert!(err.contains("t1 > t0"), "{err}");
    }
}
