//! `cca-components` — the paper's scientific component library (§4,
//! Tables 1–3): every substrate of this workspace wrapped as a CCA
//! component with provides/uses ports, ready to be instantiated and wired
//! by a framework script.
//!
//! | paper component | here | provides |
//! |---|---|---|
//! | `ThermoChemistry` | [`thermochem::ThermoChemistry`] | `ChemistrySourcePort`, `ParameterPort` (Database) |
//! | `CvodeComponent` | [`cvode::CvodeComponent`] | `OdeIntegratorPort` (BDF) |
//! | `dPdt` | [`adaptors::DpdtComponent`] | `DpdtPort` |
//! | `problemModeler` | [`adaptors::ProblemModeler`] | `OdeRhsPort` (adds the pressure term) |
//! | `Initializer` (0D) | [`ic::Initializer0D`] | `GoPort`, initial/final state |
//! | `GrACEComponent` | [`grace::GraceComponent`] | `MeshPort`, `DataPort` |
//! | `InitialCondition` (hot spots) | [`ic::HotSpotsIC`] | `InitialConditionPort` |
//! | `ConicalInterfaceIC` | [`ic::ConicalInterfaceIC`] | `InitialConditionPort` |
//! | `DRFMComponent` | [`transport_comp::DrfmComponent`] | `TransportPort` |
//! | `MaxDiffCoeffEvaluator` | [`transport_comp::MaxDiffCoeffEvaluator`] | `EigenEstimatePort` |
//! | `DiffusionPhysics` | [`diffusion::DiffusionPhysics`] | `PatchRhsPort` |
//! | `ExplicitIntegrator` (RKC) | [`rkc_integrator::ExplicitIntegratorRkc`] | `TimeIntegratorPort` |
//! | `ImplicitIntegrator` | [`adaptors::ImplicitIntegrator`] | `ChemistryAdvancePort` |
//! | `ExplicitIntegratorRK2` | [`rk2_integrator::ExplicitIntegratorRk2`] | `TimeIntegratorPort` |
//! | `States` | [`euler::StatesComponent`] | `StatesPort` |
//! | `GodunovFlux` / `EFMFlux` | [`euler::GodunovFluxComponent`] / [`euler::EfmFluxComponent`] | `FluxPort` |
//! | `InviscidFlux` | [`euler::InviscidFluxComponent`] | `PatchRhsPort` |
//! | `CharacteristicQuantities` | [`euler::CharacteristicQuantities`] | `EigenEstimatePort` |
//! | `GasProperties` | [`euler::GasProperties`] | `ParameterPort` (Database) |
//! | `BoundaryConditions` | [`bc_comp::BoundaryConditions`] | `BoundaryConditionPort` |
//! | `ErrorEstAndRegrid` | [`regrid_comp::ErrorEstAndRegrid`] | `RegridPort` |
//! | `ProlongRestrict` | [`interp_comp::ProlongRestrict`] | `InterpolationPort` |
//! | `StatisticsComponent` | [`stats::StatisticsComponent`] | `StatisticsPort` |

pub mod adaptors;
pub mod balancer_comp;
pub mod bc_comp;
pub mod cvode;
pub mod diffusion;
pub mod euler;
pub mod grace;
pub mod ic;
pub mod interp_comp;
pub mod ports;
pub mod regrid_comp;
pub mod rk2_integrator;
pub mod rkc_integrator;
pub mod stats;
pub mod thermochem;
pub mod transport_comp;
