//! The paper's *Adaptors*: "case-specific adaptors are often used to
//! consolidate and filter outputs from various physics components."
//!
//! * [`DpdtComponent`] — the rigid-vessel pressure closure of the 0D
//!   ignition code ("the pressure term depends on the boundary conditions
//!   of the problem (rigid walls, i.e. constant mass and volume) and is
//!   computed by the dPdt component");
//! * [`ProblemModeler`] — sits "between CvodeComponent and
//!   ThermoChemistry... for this closed system it adds the pressure term
//!   to the heat equation": assembles the full `Φ = {T, Y₁..Y_{N−1}, P}`
//!   right-hand side from the chemistry and dPdt ports;
//! * [`ImplicitIntegrator`] — the 2D adaptor "that calls on the Implicit
//!   Integration subsystem for all cells and all patches".

use crate::ports::{
    ChemistryAdvancePort, ChemistryKernel, ChemistrySourcePort, DataPort, DpdtPort, MeshPort,
    OdeCellKernel, OdeIntegratorPort, OdeRhsPort, OdeSystemKernel,
};
use cca_core::{scratch, Component, ParameterPort, Services};
use cca_mesh::data::PatchData;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Universal gas constant, J/(kmol·K) — duplicated here so adaptors do not
/// reach into substrate crates for a constant.
const RU: f64 = 8314.462618;

// ---------------------------------------------------------------------
// dPdt
// ---------------------------------------------------------------------

struct DpdtInner {
    chem: RefCell<Option<Rc<dyn ChemistrySourcePort>>>,
    services: Services,
    /// Cached molar masses (constants), filled on first use.
    w: RefCell<Vec<f64>>,
}

impl DpdtInner {
    fn chem(&self) -> Rc<dyn ChemistrySourcePort> {
        if self.chem.borrow().is_none() {
            let port = self
                .services
                .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
                .expect("dPdt requires a connected chemistry port");
            *self.chem.borrow_mut() = Some(port);
        }
        self.chem.borrow().as_ref().expect("just filled").clone()
    }
}

impl DpdtPort for DpdtInner {
    fn dpdt(&self, t_gas: f64, dtdt: f64, y: &[f64], dydt: &[f64], rho: f64) -> f64 {
        let chem = self.chem();
        {
            let mut w = self.w.borrow_mut();
            if w.len() != y.len() {
                w.resize(y.len(), 0.0);
                chem.molar_masses(&mut w);
            }
        }
        let w = self.w.borrow();
        // P = ρ R T / W̄, ρ const: dP/dt = ρR( dT/dt / W̄ + T Σ (dY_i/dt)/W_i ).
        let inv_w_mean: f64 = y.iter().zip(w.iter()).map(|(yi, wi)| yi / wi).sum();
        let sum_dyw: f64 = dydt.iter().zip(w.iter()).map(|(dy, wi)| dy / wi).sum();
        rho * RU * (dtdt * inv_w_mean + t_gas * sum_dyw)
    }
}

/// The `dPdt` component: provides `dpdt`, uses `chemistry`.
#[derive(Default)]
pub struct DpdtComponent;

impl Component for DpdtComponent {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.add_provides_port::<Rc<dyn DpdtPort>>(
            "dpdt",
            Rc::new(DpdtInner {
                chem: RefCell::new(None),
                services: s.clone(),
                w: RefCell::new(Vec::new()),
            }),
        );
    }
}

// ---------------------------------------------------------------------
// problemModeler
// ---------------------------------------------------------------------

/// The pair of ports `problemModeler` fetches once and keeps.
type CachedPorts = RefCell<Option<(Rc<dyn ChemistrySourcePort>, Rc<dyn DpdtPort>)>>;

struct ModelerInner {
    services: Services,
    rho: Cell<f64>,
    nfe: Cell<usize>,
    scratch: RefCell<ModelerScratch>,
    /// Ports are fetched once and kept, as CCA components do after their
    /// first `getPort` — re-fetching per call would turn the O(10 ns)
    /// virtual-dispatch overhead of Table 4 into a registry lookup.
    cached: CachedPorts,
}

#[derive(Default)]
struct ModelerScratch {
    y_full: Vec<f64>,
    c: Vec<f64>,
    wdot: Vec<f64>,
    dydt: Vec<f64>,
    /// Species molar masses, fetched once (they are constants).
    w: Vec<f64>,
    /// Molar internal energies at the current T.
    u: Vec<f64>,
}

impl ModelerInner {
    fn ports(&self) -> (Rc<dyn ChemistrySourcePort>, Rc<dyn DpdtPort>) {
        if let Some((chem, dpdt)) = self.cached.borrow().as_ref() {
            return (chem.clone(), dpdt.clone());
        }
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .expect("problemModeler requires a connected chemistry port");
        let dpdt = self
            .services
            .get_port::<Rc<dyn DpdtPort>>("dpdt")
            .expect("problemModeler requires a connected dPdt port");
        *self.cached.borrow_mut() = Some((chem.clone(), dpdt.clone()));
        (chem, dpdt)
    }
}

impl OdeRhsPort for ModelerInner {
    fn dim(&self) -> usize {
        let (chem, _) = self.ports();
        chem.n_species() + 1 // T, Y1..Y_{N-1}, P
    }

    fn eval(&self, _t: f64, state: &[f64], dstate: &mut [f64]) {
        self.nfe.set(self.nfe.get() + 1);
        // Prime the port cache once, then borrow without cloning: the per
        // evaluation cost of the uses-port is the virtual call alone.
        if self.cached.borrow().is_none() {
            let _ = self.ports();
        }
        let cached = self.cached.borrow();
        let (chem, dpdt) = cached.as_ref().expect("primed above");
        let n = chem.n_species();
        let rho = self.rho.get();
        assert!(rho > 0.0, "problemModeler density not set");
        let mut s = self.scratch.borrow_mut();
        s.y_full.resize(n, 0.0);
        s.c.resize(n, 0.0);
        s.wdot.resize(n, 0.0);
        s.dydt.resize(n, 0.0);
        s.u.resize(n, 0.0);
        if s.w.len() != n {
            s.w.resize(n, 0.0);
            chem.molar_masses(&mut s.w);
        }
        let ModelerScratch {
            y_full,
            c,
            wdot,
            dydt,
            w,
            u,
        } = &mut *s;

        let temp = state[0].max(200.0);
        let mut bulk = 1.0;
        for i in 0..n - 1 {
            y_full[i] = state[1 + i];
            bulk -= state[1 + i];
        }
        y_full[n - 1] = bulk;
        for i in 0..n {
            c[i] = rho * y_full[i] / w[i];
        }
        chem.production_rates(temp, c, wdot);
        chem.internal_energies_molar(temp, u);

        // Species and energy (constant volume).
        let mut sum_u_wdot = 0.0;
        for i in 0..n {
            dydt[i] = wdot[i] * w[i] / rho;
            sum_u_wdot += u[i] * wdot[i];
        }
        let cv = chem.cv_mass(temp, y_full);
        let dtdt = -sum_u_wdot / (rho * cv);
        dstate[0] = dtdt;
        dstate[1..n].copy_from_slice(&dydt[..n - 1]);
        // The pressure term comes from the dPdt component.
        dstate[n] = dpdt.dpdt(temp, dtdt, y_full, dydt, rho);
    }

    fn nfe(&self) -> usize {
        self.nfe.get()
    }
}

impl ParameterPort for ModelerInner {
    fn set_parameter(&self, key: &str, value: f64) {
        if key == "density" {
            self.rho.set(value);
        }
    }

    fn get_parameter(&self, key: &str) -> Option<f64> {
        (key == "density").then(|| self.rho.get())
    }
}

/// The `problemModeler` component: provides `rhs` (OdeRhsPort) and
/// `config` (ParameterPort carrying the frozen density); uses `chemistry`
/// and `dpdt`.
#[derive(Default)]
pub struct ProblemModeler;

impl Component for ProblemModeler {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn DpdtPort>>("dpdt");
        let inner = Rc::new(ModelerInner {
            services: s.clone(),
            rho: Cell::new(0.0),
            nfe: Cell::new(0),
            scratch: RefCell::new(ModelerScratch::default()),
            cached: RefCell::new(None),
        });
        s.add_provides_port::<Rc<dyn OdeRhsPort>>("rhs", inner.clone());
        s.add_provides_port::<Rc<dyn ParameterPort>>("config", inner);
    }
}

// ---------------------------------------------------------------------
// ImplicitIntegrator (2D adaptor)
// ---------------------------------------------------------------------

/// The gas-phase surface the constant-pressure cell RHS needs,
/// abstracted over port dispatch (serial path) vs kernel dispatch
/// (worker path). One implementation of the arithmetic serves both, so
/// serial and parallel sweeps are bit-identical.
trait CellChem {
    fn n_species(&self) -> usize;
    fn molar_masses(&self, out: &mut [f64]);
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64;
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]);
    fn enthalpies_molar(&self, t: f64, out: &mut [f64]);
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64;
}

impl CellChem for dyn ChemistrySourcePort {
    fn n_species(&self) -> usize {
        ChemistrySourcePort::n_species(self)
    }
    fn molar_masses(&self, out: &mut [f64]) {
        ChemistrySourcePort::molar_masses(self, out);
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        ChemistrySourcePort::density(self, t, p, y)
    }
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        ChemistrySourcePort::production_rates(self, t, c, wdot);
    }
    fn enthalpies_molar(&self, t: f64, out: &mut [f64]) {
        ChemistrySourcePort::enthalpies_molar(self, t, out);
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        ChemistrySourcePort::cp_mass(self, t, y)
    }
}

impl CellChem for dyn ChemistryKernel {
    fn n_species(&self) -> usize {
        ChemistryKernel::n_species(self)
    }
    fn molar_masses(&self, out: &mut [f64]) {
        ChemistryKernel::molar_masses(self, out);
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        ChemistryKernel::density(self, t, p, y)
    }
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        ChemistryKernel::production_rates(self, t, c, wdot);
    }
    fn enthalpies_molar(&self, t: f64, out: &mut [f64]) {
        ChemistryKernel::enthalpies_molar(self, t, out);
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        ChemistryKernel::cp_mass(self, t, y)
    }
}

#[derive(Default)]
struct CellScratch {
    y: Vec<f64>,
    c: Vec<f64>,
    wdot: Vec<f64>,
    w: Vec<f64>,
    h: Vec<f64>,
}

/// Constant-pressure single-cell chemistry RHS `d{T, Y}/dt` — the single
/// copy of the math behind [`CellChemistryRhs`] (port face) and
/// [`CellKernelSys`] (worker face).
fn cell_chem_rhs<C: CellChem + ?Sized>(
    chem: &C,
    pressure: f64,
    state: &[f64],
    dstate: &mut [f64],
    s: &mut CellScratch,
) {
    let n = chem.n_species();
    let temp = state[0].max(200.0);
    s.y.resize(n, 0.0);
    s.c.resize(n, 0.0);
    s.wdot.resize(n, 0.0);
    s.h.resize(n, 0.0);
    if s.w.len() != n {
        s.w.resize(n, 0.0);
        chem.molar_masses(&mut s.w);
    }
    let CellScratch { y, c, wdot, w, h } = &mut *s;
    let mut bulk = 1.0;
    for i in 0..n - 1 {
        y[i] = state[1 + i];
        bulk -= state[1 + i];
    }
    y[n - 1] = bulk;
    let rho = chem.density(temp, pressure, y);
    for i in 0..n {
        c[i] = rho * y[i] / w[i];
    }
    chem.production_rates(temp, c, wdot);
    chem.enthalpies_molar(temp, h);
    let mut sum_h_wdot = 0.0;
    for i in 0..n {
        if i < n - 1 {
            dstate[1 + i] = wdot[i] * w[i] / rho;
        }
        sum_h_wdot += h[i] * wdot[i];
    }
    dstate[0] = -sum_h_wdot / (rho * chem.cp_mass(temp, y));
}

struct CellChemistryRhs {
    chem: Rc<dyn ChemistrySourcePort>,
    pressure: f64,
    nfe: Cell<usize>,
    scratch: RefCell<CellScratch>,
}

impl CellChemistryRhs {
    fn new(chem: Rc<dyn ChemistrySourcePort>, pressure: f64) -> Self {
        CellChemistryRhs {
            chem,
            pressure,
            nfe: Cell::new(0),
            scratch: RefCell::new(CellScratch::default()),
        }
    }
}

impl OdeRhsPort for CellChemistryRhs {
    fn dim(&self) -> usize {
        self.chem.n_species() // {T, Y1..Y_{N-1}} at constant pressure
    }

    fn eval(&self, _t: f64, state: &[f64], dstate: &mut [f64]) {
        self.nfe.set(self.nfe.get() + 1);
        let mut s = self.scratch.borrow_mut();
        cell_chem_rhs(&*self.chem, self.pressure, state, dstate, &mut s);
    }

    fn nfe(&self) -> usize {
        self.nfe.get()
    }
}

/// Worker-thread face of the cell RHS: the same math over the chemistry
/// kernel snapshot. One instance per patch job; the scratch mutex is
/// uncontended (a job runs on exactly one worker).
struct CellKernelSys {
    chem: Arc<dyn ChemistryKernel>,
    pressure: f64,
    scratch: Mutex<CellScratch>,
}

impl OdeSystemKernel for CellKernelSys {
    fn dim(&self) -> usize {
        self.chem.n_species()
    }

    fn eval(&self, _t: f64, state: &[f64], dstate: &mut [f64]) {
        let mut s = self.scratch.lock().expect("cell scratch is uncontended");
        cell_chem_rhs(&*self.chem, self.pressure, state, dstate, &mut s);
    }
}

/// One patch's share of the chemistry sweep: the detached patch data,
/// the cells to integrate (coarse cells covered by a finer level are
/// excluded up front, on the framework thread), and the outcome.
struct PatchSweep {
    pd: PatchData,
    cells: Vec<(i64, i64)>,
    steps: usize,
    error: Option<String>,
}

struct ImplicitInner {
    services: Services,
}

impl ImplicitInner {
    /// Integrate every listed cell of one detached patch — the kernel the
    /// executor schedules. Runs identically at 1 or N workers.
    fn sweep_patch(
        job: &mut PatchSweep,
        chem: &Arc<dyn ChemistryKernel>,
        cell_kernel: &Arc<dyn OdeCellKernel>,
        level: usize,
        dt: f64,
        p: f64,
        nvars: usize,
    ) {
        let sys = CellKernelSys {
            chem: chem.clone(),
            pressure: p,
            scratch: Mutex::new(CellScratch::default()),
        };
        let mut cell_state = scratch::take_f64(nvars);
        for &(i, j) in &job.cells {
            for (v, cs) in cell_state.iter_mut().enumerate() {
                *cs = job.pd.get(v, i, j);
            }
            match cell_kernel.integrate(&sys, 0.0, dt, &mut cell_state) {
                Ok(st) => job.steps += st.steps,
                Err(e) => {
                    job.error = Some(format!("cell ({i},{j}) level {level}: {e}"));
                    return;
                }
            }
            for (v, cs) in cell_state.iter().enumerate() {
                job.pd.set(v, i, j, *cs);
            }
        }
    }
}

impl ChemistryAdvancePort for ImplicitInner {
    fn advance_chemistry(&self, state: &str, dt: f64, p: f64) -> Result<usize, String> {
        let _scope = self
            .services
            .profiler()
            .scope("ImplicitIntegrator.chemistry-advance");
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .map_err(|e| e.to_string())?;
        let integ = self
            .services
            .get_port::<Rc<dyn OdeIntegratorPort>>("integrator")
            .map_err(|e| e.to_string())?;
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .map_err(|e| e.to_string())?;
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .map_err(|e| e.to_string())?;
        let nvars = data.nvars(state);
        // The parallel route needs both upstream components to offer
        // kernel snapshots; otherwise the sweep stays on this thread.
        let kernels = chem.kernel().zip(integ.cell_kernel());
        let executor = self.services.executor();
        let mut total_steps = 0usize;
        let mut failure: Option<String> = None;
        // "for all cells and all patches", finest-first so coarse covered
        // regions could be skipped by restriction afterwards; order does
        // not matter physically (point operation).
        for level in 0..mesh.n_levels() {
            if let Some((chem_k, cell_k)) = &kernels {
                // Patch-parallel sweep: detach the level's patches as
                // disjoint owned views, integrate them on the worker
                // pool, re-attach. The kernel path is taken at *any*
                // worker count (the executor runs inline at 1), so the
                // numerics never depend on the worker knob.
                let ids: Vec<usize> = mesh.patches(level).iter().map(|(id, _, _)| *id).collect();
                let jobs: Vec<PatchSweep> = data
                    .take_level_patches(state, level, &ids)
                    .into_iter()
                    .map(|pd| {
                        let cells = pd
                            .interior
                            .cells()
                            .filter(|&(i, j)| !mesh.covered_by_finer(level, i, j))
                            .collect();
                        PatchSweep {
                            pd,
                            cells,
                            steps: 0,
                            error: None,
                        }
                    })
                    .collect();
                let (chem_k, cell_k) = (chem_k.clone(), cell_k.clone());
                let report = executor.run(
                    "ImplicitIntegrator.cell-sweep",
                    jobs,
                    move |_worker, job| {
                        Self::sweep_patch(job, &chem_k, &cell_k, level, dt, p, nvars);
                    },
                );
                if report.poisoned() {
                    // A kernel panicked: the run is poisoned and the
                    // detached patches are forfeit (documented contract
                    // of take_level_patches).
                    return Err(report
                        .into_result()
                        .err()
                        .expect("poisoned runs carry failures"));
                }
                let jobs = report.into_result().expect("not poisoned");
                let mut put_back = Vec::with_capacity(jobs.len());
                for job in jobs {
                    total_steps += job.steps;
                    if let Some(e) = job.error {
                        failure.get_or_insert(e);
                    }
                    put_back.push(job.pd);
                }
                data.put_level_patches(state, level, &ids, put_back);
                if let Some(e) = failure {
                    return Err(e);
                }
            } else {
                // One RHS adaptor and one state buffer for the whole
                // level sweep: `integrate` takes the Rc by value, so
                // each cell costs a refcount bump, not a heap
                // allocation (the adaptor's internal scratch is reused
                // across cells).
                let rhs = Rc::new(CellChemistryRhs::new(chem.clone(), p));
                let mut cell_state = scratch::take_f64(nvars);
                for (id, _interior, _) in mesh.patches(level) {
                    let mut step_patch = |pd: &mut PatchData| {
                        let interior = pd.interior;
                        for (i, j) in interior.cells() {
                            if mesh.covered_by_finer(level, i, j) {
                                continue; // the finer level integrates this region
                            }
                            for (v, cs) in cell_state.iter_mut().enumerate() {
                                *cs = pd.get(v, i, j);
                            }
                            match integ.integrate(rhs.clone(), 0.0, dt, &mut cell_state) {
                                Ok(st) => total_steps += st.steps,
                                Err(e) => {
                                    failure.get_or_insert(format!(
                                        "cell ({i},{j}) level {level}: {e}"
                                    ));
                                    return;
                                }
                            }
                            for (v, cs) in cell_state.iter().enumerate() {
                                pd.set(v, i, j, *cs);
                            }
                        }
                    };
                    data.with_patch_mut(state, level, id, &mut step_patch);
                    if let Some(e) = failure {
                        return Err(e);
                    }
                    failure = None;
                }
            }
        }
        Ok(total_steps)
    }
}

/// The `ImplicitIntegrator` adaptor: provides `chemistry-advance`; uses
/// `chemistry`, `integrator`, `mesh`, `data`.
#[derive(Default)]
pub struct ImplicitIntegrator;

impl Component for ImplicitIntegrator {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn OdeIntegratorPort>>("integrator");
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.add_provides_port::<Rc<dyn ChemistryAdvancePort>>(
            "chemistry-advance",
            Rc::new(ImplicitInner {
                services: s.clone(),
            }),
        );
    }
}
