//! `ExplicitIntegratorRK2` — the two-stage Runge-Kutta time integrator of
//! the shock assembly, acting on Data Objects. Between the two stages the
//! ghost regions are refilled and the boundary conditions re-applied "at
//! each of the stages of a multi-stage integration scheme" (paper §4,
//! Boundary Condition subsystem).

use crate::ports::{BoundaryConditionPort, DataPort, MeshPort, PatchRhsPort, TimeIntegratorPort};
use crate::rkc_integrator::{eval_hierarchy_rhs, FlatView};
use cca_core::{scratch, Component, Services};
use std::cell::Cell;
use std::rc::Rc;

struct Inner {
    services: Services,
    steps: Cell<usize>,
}

impl Inner {
    /// One global RHS evaluation: scatter, ghost-fill each level, eval
    /// patch by patch (on the executor when the port offers a kernel),
    /// gather.
    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        view: &FlatView,
        rhs_view: &FlatView,
        rhs_port: &Rc<dyn PatchRhsPort>,
        bc: &Rc<dyn BoundaryConditionPort>,
        t: f64,
        y: &[f64],
        dydt: &mut Vec<f64>,
    ) {
        view.scatter(y);
        for level in 0..view.mesh.n_levels() {
            view.data
                .fill_ghosts(&view.name, level, &|side, var| bc.rule(side, var));
        }
        eval_hierarchy_rhs(
            view,
            rhs_port,
            &rhs_view.name,
            &self.services.executor(),
            "ExplicitIntegratorRK2.patch-rhs",
            t,
        );
        rhs_view.gather(dydt);
    }
}

impl TimeIntegratorPort for Inner {
    fn advance(&self, state: &str, t: f64, dt_max: f64) -> Result<f64, String> {
        let _scope = self
            .services
            .profiler()
            .scope("ExplicitIntegratorRK2.advance");
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .map_err(|e| e.to_string())?;
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .map_err(|e| e.to_string())?;
        let rhs_port = self
            .services
            .get_port::<Rc<dyn PatchRhsPort>>("patch-rhs")
            .map_err(|e| e.to_string())?;
        let bc = self
            .services
            .get_port::<Rc<dyn BoundaryConditionPort>>("bc")
            .map_err(|e| e.to_string())?;
        let nvars = data.nvars(state);
        let rhs_name = format!("__rk2_rhs_{state}");
        data.create_data_object(&rhs_name, nvars, 0);
        let rhs_view = FlatView {
            mesh: mesh.clone(),
            data: data.clone(),
            name: rhs_name,
            nvars,
        };
        let view = FlatView {
            mesh,
            data,
            name: state.to_string(),
            nvars,
        };
        // All four stage vectors come from the scratch pool: warm steps
        // allocate nothing.
        let n = view.dim();
        let mut y = scratch::take_f64(n);
        view.gather(&mut y);
        let h = dt_max;

        let mut k1 = scratch::take_f64(n);
        self.eval(&view, &rhs_view, &rhs_port, &bc, t, &y, &mut k1);
        let mut ystar = scratch::take_f64(n);
        for ((ys, yi), k) in ystar.iter_mut().zip(&*y).zip(&*k1) {
            *ys = yi + h * k;
        }
        let mut k2 = scratch::take_f64(n);
        self.eval(&view, &rhs_view, &rhs_port, &bc, t + h, &ystar, &mut k2);
        for ((yi, k1i), k2i) in y.iter_mut().zip(&*k1).zip(&*k2) {
            *yi += 0.5 * h * (k1i + k2i);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(format!("RK2 produced a non-finite state at t = {t:e}"));
        }
        view.scatter(&y);
        self.steps.set(self.steps.get() + 1);
        Ok(h)
    }
}

/// The component: provides `time-integrator`; uses `mesh`, `data`,
/// `patch-rhs`, `bc`.
#[derive(Default)]
pub struct ExplicitIntegratorRk2;

impl Component for ExplicitIntegratorRk2 {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn PatchRhsPort>>("patch-rhs");
        s.register_uses_port::<Rc<dyn BoundaryConditionPort>>("bc");
        s.add_provides_port::<Rc<dyn TimeIntegratorPort>>(
            "time-integrator",
            Rc::new(Inner {
                services: s.clone(),
                steps: Cell::new(0),
            }),
        );
    }
}
