//! `ErrorEstAndRegrid` — "estimates the gradients at a cell and flags
//! regions for refinement/coarsening", then drives the Mesh subsystem's
//! regrid. Reused verbatim by the reaction–diffusion and shock assemblies
//! (one of the paper's three headline reuse demonstrations).

use crate::ports::{BoundaryConditionPort, DataPort, MeshPort, RegridPort};
use cca_core::{Component, Services};
use std::rc::Rc;

struct Inner {
    services: Services,
}

impl RegridPort for Inner {
    fn estimate_and_regrid(&self, state: &str, level: usize, var: usize, threshold: f64) -> usize {
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .expect("ErrorEstAndRegrid needs the mesh port");
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .expect("ErrorEstAndRegrid needs the data port");
        let bc = self
            .services
            .get_port::<Rc<dyn BoundaryConditionPort>>("bc")
            .expect("ErrorEstAndRegrid needs the bc port");
        // Gradients need ghost values.
        data.fill_ghosts(state, level, &|side, v| bc.rule(side, v));
        let mut flags: Vec<(i64, i64)> = Vec::new();
        for (id, _, _) in mesh.patches(level) {
            data.with_patch(state, level, id, &mut |pd| {
                let interior = pd.interior;
                for (i, j) in interior.cells() {
                    // Undivided central differences: resolution-blind, so
                    // a fixed threshold refines exactly the steep features.
                    let gx = 0.5 * (pd.get(var, i + 1, j) - pd.get(var, i - 1, j)).abs();
                    let gy = 0.5 * (pd.get(var, i, j + 1) - pd.get(var, i, j - 1)).abs();
                    if gx.max(gy) > threshold {
                        flags.push((i, j));
                    }
                }
            });
        }
        let n = flags.len();
        mesh.regrid(level, &flags);
        n
    }
}

/// The component: provides `regrid` (RegridPort); uses `mesh`, `data`,
/// `bc`.
#[derive(Default)]
pub struct ErrorEstAndRegrid;

impl Component for ErrorEstAndRegrid {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn BoundaryConditionPort>>("bc");
        s.add_provides_port::<Rc<dyn RegridPort>>(
            "regrid",
            Rc::new(Inner {
                services: s.clone(),
            }),
        );
    }
}
