//! `ProlongRestrict` — "performs the cell-centered interpolations" of the
//! shock assembly: explicit prolongation/restriction between specific
//! levels through the Data Object port.

use crate::ports::{DataPort, InterpolationPort, MeshPort};
use cca_core::{Component, Services};
use cca_mesh::interp::{prolong_limited, restrict_average};
use std::rc::Rc;

struct Inner {
    services: Services,
}

impl Inner {
    fn ports(&self) -> (Rc<dyn MeshPort>, Rc<dyn DataPort>) {
        (
            self.services
                .get_port::<Rc<dyn MeshPort>>("mesh")
                .expect("ProlongRestrict needs the mesh port"),
            self.services
                .get_port::<Rc<dyn DataPort>>("data")
                .expect("ProlongRestrict needs the data port"),
        )
    }
}

impl InterpolationPort for Inner {
    fn prolong_level(&self, name: &str, level: usize) {
        assert!(level >= 1, "prolongation targets level >= 1");
        let (mesh, data) = self.ports();
        let ratio = {
            let d0 = mesh.dx(level - 1);
            let d1 = mesh.dx(level);
            (d0[0] / d1[0]).round() as i64
        };
        for (fid, fine_box, _) in mesh.patches(level) {
            for (cid, coarse_box, _) in mesh.patches(level - 1) {
                let Some(overlap) = fine_box.coarsen(ratio).intersect(&coarse_box) else {
                    continue;
                };
                let mut donor = None;
                data.with_patch(name, level - 1, cid, &mut |pd| donor = Some(pd.clone()));
                let donor = donor.expect("coarse patch exists");
                let fine_region = overlap
                    .refine(ratio)
                    .intersect(&fine_box)
                    .expect("refined overlap intersects the fine box");
                data.with_patch_mut(name, level, fid, &mut |fine_pd| {
                    prolong_limited(fine_pd, &donor, &fine_region, ratio);
                });
            }
        }
    }

    fn restrict_level(&self, name: &str, level: usize) {
        assert!(level >= 1, "restriction sources level >= 1");
        let (mesh, data) = self.ports();
        let ratio = {
            let d0 = mesh.dx(level - 1);
            let d1 = mesh.dx(level);
            (d0[0] / d1[0]).round() as i64
        };
        for (fid, fine_box, _) in mesh.patches(level) {
            let mut fine_copy = None;
            data.with_patch(name, level, fid, &mut |pd| fine_copy = Some(pd.clone()));
            let fine_copy = fine_copy.expect("fine patch exists");
            for (cid, coarse_box, _) in mesh.patches(level - 1) {
                let Some(region) = fine_box.coarsen(ratio).intersect(&coarse_box) else {
                    continue;
                };
                data.with_patch_mut(name, level - 1, cid, &mut |coarse_pd| {
                    restrict_average(coarse_pd, &fine_copy, &region, ratio);
                });
            }
        }
    }
}

/// The component: provides `interpolation`; uses `mesh`, `data`.
#[derive(Default)]
pub struct ProlongRestrict;

impl Component for ProlongRestrict {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.add_provides_port::<Rc<dyn InterpolationPort>>(
            "interpolation",
            Rc::new(Inner {
                services: s.clone(),
            }),
        );
    }
}
