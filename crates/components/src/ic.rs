//! Initial Condition components: the 0D `Initializer`, the hot-spot IC of
//! the reaction–diffusion flame (§4.2: "initializes a configuration with
//! three hot-spots"), and the `ConicalInterfaceIC` of the shock problem
//! (§4.3: "a shock tube with Air and Freon (density ratio 3) separated by
//! an oblique (30° from the vertical) interface which is ruptured by a
//! Mach 1.5 shock").

use crate::ports::{
    ChemistrySourcePort, DataPort, InitialConditionPort, MeshPort, OdeIntegratorPort, OdeRhsPort,
    SolutionPort,
};
use cca_core::{Component, GoPort, ParameterPort, ParameterStore, Services};
use cca_hydro_solver::{prim_to_cons, Prim};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Standard atmosphere, Pa.
const P_ATM: f64 = 101_325.0;

// ---------------------------------------------------------------------
// 0D Initializer (doubles as the driver of the Fig. 1 assembly)
// ---------------------------------------------------------------------

struct Init0dInner {
    services: Services,
    params: Rc<ParameterStore>,
    result: RefCell<Vec<f64>>,
    t_reached: Cell<f64>,
}

impl Init0dInner {
    /// Stoichiometric H₂–air mass fractions for an `n`-species table laid
    /// out like the `cca-chem` mechanisms (H2 first, O2 second, N2 last).
    fn stoichiometric(n: usize) -> Vec<f64> {
        let w_h2 = 2.0 * 2.016;
        let w_o2 = 31.998;
        let w_n2 = 3.76 * 28.014;
        let total = w_h2 + w_o2 + w_n2;
        let mut y = vec![0.0; n];
        y[0] = w_h2 / total;
        y[1] = w_o2 / total;
        y[n - 1] = w_n2 / total;
        y
    }
}

impl GoPort for Init0dInner {
    fn go(&self) -> Result<(), String> {
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .map_err(|e| e.to_string())?;
        let rhs = self
            .services
            .get_port::<Rc<dyn OdeRhsPort>>("rhs")
            .map_err(|e| e.to_string())?;
        let integ = self
            .services
            .get_port::<Rc<dyn OdeIntegratorPort>>("integrator")
            .map_err(|e| e.to_string())?;
        let modeler_cfg = self
            .services
            .get_port::<Rc<dyn ParameterPort>>("modeler-config")
            .map_err(|e| e.to_string())?;

        let t0 = self.params.get_parameter("T0").unwrap_or(1000.0);
        let p0 = self.params.get_parameter("P0").unwrap_or(P_ATM);
        let t_end = self.params.get_parameter("t_end").unwrap_or(1.0e-3);
        let n = chem.n_species();
        let y = Self::stoichiometric(n);
        // Rigid vessel: freeze the density at its initial value and tell
        // the problemModeler.
        let rho = chem.density(t0, p0, &y);
        modeler_cfg.set_parameter("density", rho);

        // Paper state layout: Φ = {T, Y1..Y_{N-1}, P0}.
        let mut state = Vec::with_capacity(n + 1);
        state.push(t0);
        state.extend_from_slice(&y[..n - 1]);
        state.push(p0);
        integ
            .integrate(rhs, 0.0, t_end, &mut state)
            .map_err(|e| format!("0D ignition failed: {e}"))?;
        *self.result.borrow_mut() = state;
        self.t_reached.set(t_end);
        Ok(())
    }
}

impl SolutionPort for Init0dInner {
    fn solution(&self) -> Vec<f64> {
        self.result.borrow().clone()
    }

    fn time(&self) -> f64 {
        self.t_reached.get()
    }
}

/// The 0D `Initializer`: provides `go` (GoPort), `solution`
/// (SolutionPort), `setup` (ParameterPort: `T0`, `P0`, `t_end`); uses
/// `chemistry`, `rhs`, `integrator`, `modeler-config`.
#[derive(Default)]
pub struct Initializer0D;

impl Component for Initializer0D {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn OdeRhsPort>>("rhs");
        s.register_uses_port::<Rc<dyn OdeIntegratorPort>>("integrator");
        s.register_uses_port::<Rc<dyn ParameterPort>>("modeler-config");
        let params = Rc::new(ParameterStore::new());
        let inner = Rc::new(Init0dInner {
            services: s.clone(),
            params: params.clone(),
            result: RefCell::new(Vec::new()),
            t_reached: Cell::new(0.0),
        });
        s.add_provides_port::<Rc<dyn GoPort>>("go", inner.clone());
        s.add_provides_port::<Rc<dyn SolutionPort>>("solution", inner);
        s.add_provides_port::<Rc<dyn ParameterPort>>("setup", params);
    }
}

// ---------------------------------------------------------------------
// Hot-spot IC for the 2D reaction-diffusion flame
// ---------------------------------------------------------------------

struct HotSpotsInner {
    services: Services,
    params: Rc<ParameterStore>,
}

impl InitialConditionPort for HotSpotsInner {
    fn apply(&self, state: &str) {
        let _scope = self.services.profiler().scope("InitialCondition.ic");
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .expect("HotSpotsIC needs the mesh port");
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .expect("HotSpotsIC needs the data port");
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .expect("HotSpotsIC needs the chemistry port");
        let n = chem.n_species();
        let y = Init0dInner::stoichiometric(n);
        let t_ambient = self.params.get_parameter("T_ambient").unwrap_or(300.0);
        let t_hot = self.params.get_parameter("T_hot").unwrap_or(1400.0);
        let radius = self.params.get_parameter("radius").unwrap_or(0.8e-3);
        // Three hot spots placed asymmetrically in the square domain (in
        // fractions of the domain side).
        let spots = [(0.35, 0.35), (0.65, 0.45), (0.45, 0.70)];
        let dom = mesh.level_domain(0);
        let dx0 = mesh.dx(0);
        let lx = dom.nx() as f64 * dx0[0];
        let ly = dom.ny() as f64 * dx0[1];
        for level in 0..mesh.n_levels() {
            for (id, _box_, _) in mesh.patches(level) {
                data.with_patch_mut(state, level, id, &mut |pd| {
                    let total = pd.total_box();
                    for (i, j) in total.cells() {
                        let [x, yy] = mesh.cell_center(level, i, j);
                        let mut t = t_ambient;
                        for (fx, fy) in spots {
                            let dx = x - fx * lx;
                            let dy = yy - fy * ly;
                            let r2 = (dx * dx + dy * dy) / (radius * radius);
                            t += (t_hot - t_ambient) * (-r2).exp();
                        }
                        pd.set(0, i, j, t);
                        for v in 1..n {
                            pd.set(v, i, j, y[v - 1]);
                        }
                    }
                });
            }
        }
    }
}

/// Hot-spot initial condition: provides `ic` (InitialConditionPort) and
/// `setup` (ParameterPort: `T_ambient`, `T_hot`, `radius`); uses `mesh`,
/// `data`, `chemistry`.
#[derive(Default)]
pub struct HotSpotsIC;

impl Component for HotSpotsIC {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        let params = Rc::new(ParameterStore::new());
        let inner = Rc::new(HotSpotsInner {
            services: s.clone(),
            params: params.clone(),
        });
        s.add_provides_port::<Rc<dyn InitialConditionPort>>("ic", inner);
        s.add_provides_port::<Rc<dyn ParameterPort>>("setup", params);
    }
}

// ---------------------------------------------------------------------
// Conical (oblique) interface + shock IC
// ---------------------------------------------------------------------

struct ConicalInner {
    services: Services,
    params: Rc<ParameterStore>,
}

impl ConicalInner {
    /// Pre-shock, post-shock and heavy-gas primitive states from the
    /// normal-shock relations at Mach `ms`.
    fn states(&self, gamma: f64, ms: f64, density_ratio: f64) -> (Prim, Prim, Prim) {
        // Nondimensional pre-shock air: rho = gamma (so c = 1), p = 1.
        let pre = Prim {
            rho: gamma,
            u: 0.0,
            v: 0.0,
            p: 1.0,
            zeta: 0.0,
        };
        let p2 = 1.0 + 2.0 * gamma / (gamma + 1.0) * (ms * ms - 1.0);
        let r2 = (gamma + 1.0) * ms * ms / ((gamma - 1.0) * ms * ms + 2.0);
        let u2 = ms * (1.0 - 1.0 / r2); // c1 = 1
        let post = Prim {
            rho: pre.rho * r2,
            u: u2,
            v: 0.0,
            p: p2,
            zeta: 0.0,
        };
        let heavy = Prim {
            rho: pre.rho * density_ratio,
            u: 0.0,
            v: 0.0,
            p: 1.0,
            zeta: 1.0,
        };
        (pre, post, heavy)
    }
}

impl InitialConditionPort for ConicalInner {
    fn apply(&self, state: &str) {
        let _scope = self.services.profiler().scope("ConicalInterfaceIC.ic");
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .expect("ConicalInterfaceIC needs the mesh port");
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .expect("ConicalInterfaceIC needs the data port");
        let gas = self
            .services
            .get_port::<Rc<dyn ParameterPort>>("gas")
            .expect("ConicalInterfaceIC needs the GasProperties port");
        let gamma = gas.get_parameter("gamma").unwrap_or(1.4);
        let ms = self.params.get_parameter("mach").unwrap_or(1.5);
        let ratio = self.params.get_parameter("density_ratio").unwrap_or(3.0);
        let angle = self
            .params
            .get_parameter("angle_deg")
            .unwrap_or(30.0)
            .to_radians();
        let dom = mesh.level_domain(0);
        let dx0 = mesh.dx(0);
        let lx = dom.nx() as f64 * dx0[0];
        let x_shock = self.params.get_parameter("x_shock").unwrap_or(0.15 * lx);
        let x_interface = self
            .params
            .get_parameter("x_interface")
            .unwrap_or(0.35 * lx);
        let (pre, post, heavy) = self.states(gamma, ms, ratio);
        for level in 0..mesh.n_levels() {
            for (id, _box_, _) in mesh.patches(level) {
                data.with_patch_mut(state, level, id, &mut |pd| {
                    let total = pd.total_box();
                    for (i, j) in total.cells() {
                        let [x, y] = mesh.cell_center(level, i, j);
                        // Interface tilted `angle` from the vertical.
                        let w = if x < x_shock {
                            post
                        } else if x < x_interface + y * angle.tan() {
                            pre
                        } else {
                            heavy
                        };
                        let u = prim_to_cons(&w, gamma);
                        for (v, &uv) in u.iter().enumerate() {
                            pd.set(v, i, j, uv);
                        }
                    }
                });
            }
        }
    }
}

/// The `ConicalInterfaceIC`: provides `ic` and `setup` (`mach`,
/// `density_ratio`, `angle_deg`, `x_shock`, `x_interface`); uses `mesh`,
/// `data`, `gas` (GasProperties database).
#[derive(Default)]
pub struct ConicalInterfaceIC;

impl Component for ConicalInterfaceIC {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn ParameterPort>>("gas");
        let params = Rc::new(ParameterStore::new());
        let inner = Rc::new(ConicalInner {
            services: s.clone(),
            params: params.clone(),
        });
        s.add_provides_port::<Rc<dyn InitialConditionPort>>("ic", inner);
        s.add_provides_port::<Rc<dyn ParameterPort>>("setup", params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_shock_relations_mach_1_5() {
        let inner = ConicalInner {
            services: Services::new("x"),
            params: Rc::new(ParameterStore::new()),
        };
        let (pre, post, heavy) = inner.states(1.4, 1.5, 3.0);
        // Textbook Mach-1.5 normal shock: p2/p1 = 2.4583, rho2/rho1 = 1.8621.
        assert!((post.p / pre.p - 2.4583).abs() < 1e-3);
        assert!((post.rho / pre.rho - 1.8621).abs() < 1e-3);
        assert!(post.u > 0.0);
        assert_eq!(heavy.rho, 3.0 * pre.rho);
        assert_eq!(heavy.zeta, 1.0);
        // Pressure equilibrium across the material interface.
        assert_eq!(heavy.p, pre.p);
    }

    #[test]
    fn stoichiometric_helper_sums_to_one() {
        let y = Init0dInner::stoichiometric(9);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y[0] > 0.02 && y[0] < 0.03);
    }
}
