//! `DiffusionPhysics` — the patch-at-a-time evaluator of the diffusive
//! transport source term `K ∇·(B ∇Φ)` of paper Eq. 3, with
//! `Φ = {T, Y₁…Y_{N−1}}`, `K = (1/ρ){1/cp, 1, …}`, `B = {λ, ρD₁, …}`.
//!
//! The stencil lives in `diffusion_rhs`, written once and instantiated
//! twice: over the CCA ports (serial framework-thread path) and over the
//! `Send + Sync` kernels (worker-thread path). When the connected
//! chemistry and transport components offer kernels, the port path
//! itself routes through the kernel, so both paths are one code path.

use crate::ports::{
    ChemistryKernel, ChemistrySourcePort, PatchKernel, PatchRhsPort, TransportKernel, TransportPort,
};
use cca_core::{scratch, Component, Services};
use cca_mesh::data::PatchData;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fixed ambient pressure of the open-domain flame (Pa): "pressure is
/// assumed to be constant in time and space (i.e. burning in an open
/// domain)".
const P0: f64 = 101_325.0;

/// The gas-property surface the stencil needs, abstracted over port
/// dispatch vs kernel dispatch so the arithmetic is written exactly once
/// (the determinism guarantee of the parallel executor relies on this).
trait DiffProps {
    fn n_species(&self) -> usize;
    fn molar_masses(&self, out: &mut [f64]);
    fn mean_molar_mass(&self, y: &[f64]) -> f64;
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64;
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64;
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]);
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64;
}

struct PortProps<'a> {
    chem: &'a Rc<dyn ChemistrySourcePort>,
    transport: &'a Rc<dyn TransportPort>,
}

impl DiffProps for PortProps<'_> {
    fn n_species(&self) -> usize {
        self.chem.n_species()
    }
    fn molar_masses(&self, out: &mut [f64]) {
        self.chem.molar_masses(out);
    }
    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        self.chem.mean_molar_mass(y)
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        self.chem.density(t, p, y)
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        self.chem.cp_mass(t, y)
    }
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        self.transport.mix_diffusivities(t, p, x, out);
    }
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        self.transport.mix_conductivity(t, x)
    }
}

struct KernelProps {
    chem: Arc<dyn ChemistryKernel>,
    transport: Arc<dyn TransportKernel>,
}

impl DiffProps for KernelProps {
    fn n_species(&self) -> usize {
        self.chem.n_species()
    }
    fn molar_masses(&self, out: &mut [f64]) {
        self.chem.molar_masses(out);
    }
    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        self.chem.mean_molar_mass(y)
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        self.chem.density(t, p, y)
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        self.chem.cp_mass(t, y)
    }
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        self.transport.mix_diffusivities(t, p, x, out);
    }
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        self.transport.mix_conductivity(t, x)
    }
}

/// The 5-point diffusive RHS of one patch — the single copy of the
/// stencil arithmetic behind both the port and the kernel face.
///
/// Cell properties are precomputed over the interior+1 ring into pooled
/// SoA scratch tables (`λ`, `1/ρcp`, `1/ρ` per cell; `ρD` per cell ×
/// species) instead of a per-cell `CellProps { Vec<f64>, .. }` — same
/// arithmetic in the same order, zero steady-state allocations.
fn diffusion_rhs<P: DiffProps>(
    props: &P,
    state: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
) {
    let n = props.n_species();
    assert_eq!(state.nvars, n, "state layout is {{T, Y1..Y_{{N-1}}}}");
    assert!(state.nghost >= 1);
    let mut w = scratch::take_f64(n);
    props.molar_masses(&mut w);

    // Pre-compute properties on interior+1 ring, row-major cache.
    let ring = state.interior.grow(1);
    let nx = ring.nx();
    let ncells = (nx * ring.ny()) as usize;
    let mut lambda = scratch::take_f64(ncells);
    let mut inv_rho_cp = scratch::take_f64(ncells);
    let mut inv_rho = scratch::take_f64(ncells);
    let mut rho_d = scratch::take_f64(ncells * n);
    // Per-cell working slices, hoisted out of the ring loop.
    let mut y = scratch::take_f64(n);
    let mut x = scratch::take_f64(n);
    let mut d = scratch::take_f64(n);
    for (cell, (i, j)) in ring.cells().enumerate() {
        let t = state.get(0, i, j).max(200.0);
        let mut bulk = 1.0;
        for (v, yv) in y.iter_mut().take(n - 1).enumerate() {
            *yv = state.get(1 + v, i, j);
            bulk -= *yv;
        }
        y[n - 1] = bulk;
        let w_mean = props.mean_molar_mass(&y);
        let rho = props.density(t, P0, &y);
        for (v, xv) in x.iter_mut().enumerate() {
            *xv = y[v] * w_mean / w[v];
        }
        props.mix_diffusivities(t, P0, &x, &mut d);
        lambda[cell] = props.mix_conductivity(t, &x);
        let cp = props.cp_mass(t, &y);
        for (v, di) in d.iter().enumerate() {
            rho_d[cell * n + v] = rho * di;
        }
        inv_rho_cp[cell] = 1.0 / (rho * cp);
        inv_rho[cell] = 1.0 / rho;
    }
    let at = |i: i64, j: i64| -> usize {
        let ii = (i - ring.lo[0]) as usize;
        let jj = (j - ring.lo[1]) as usize;
        jj * nx as usize + ii
    };

    let interior = state.interior;
    for (i, j) in interior.cells() {
        let pc = at(i, j);
        // Temperature: (1/ρcp) ∇·(λ∇T), 5-point form with
        // face-averaged coefficients.
        let lam_c = lambda[pc];
        let lam_e = 0.5 * (lam_c + lambda[at(i + 1, j)]);
        let lam_w = 0.5 * (lam_c + lambda[at(i - 1, j)]);
        let lam_n = 0.5 * (lam_c + lambda[at(i, j + 1)]);
        let lam_s = 0.5 * (lam_c + lambda[at(i, j - 1)]);
        let t_c = state.get(0, i, j);
        let div_t = (lam_e * (state.get(0, i + 1, j) - t_c)
            - lam_w * (t_c - state.get(0, i - 1, j)))
            / (dx * dx)
            + (lam_n * (state.get(0, i, j + 1) - t_c) - lam_s * (t_c - state.get(0, i, j - 1)))
                / (dy * dy);
        rhs.set(0, i, j, inv_rho_cp[pc] * div_t);
        // Species: (1/ρ) ∇·(ρD_i ∇Y_i) for the N-1 stored species.
        for v in 0..n - 1 {
            let b_c = rho_d[pc * n + v];
            let b_e = 0.5 * (b_c + rho_d[at(i + 1, j) * n + v]);
            let b_w = 0.5 * (b_c + rho_d[at(i - 1, j) * n + v]);
            let b_n = 0.5 * (b_c + rho_d[at(i, j + 1) * n + v]);
            let b_s = 0.5 * (b_c + rho_d[at(i, j - 1) * n + v]);
            let y_c = state.get(1 + v, i, j);
            let div = (b_e * (state.get(1 + v, i + 1, j) - y_c)
                - b_w * (y_c - state.get(1 + v, i - 1, j)))
                / (dx * dx)
                + (b_n * (state.get(1 + v, i, j + 1) - y_c)
                    - b_s * (y_c - state.get(1 + v, i, j - 1)))
                    / (dy * dy);
            rhs.set(1 + v, i, j, inv_rho[pc] * div);
        }
    }
}

/// Worker-thread face: chemistry + transport kernel snapshots and the
/// shared evaluation counter.
struct DiffusionKernel {
    props: KernelProps,
    evals: Arc<AtomicUsize>,
}

impl PatchKernel for DiffusionKernel {
    fn eval(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, _t: f64) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        diffusion_rhs(&self.props, state, rhs, dx, dy);
    }

    fn label(&self) -> &'static str {
        "DiffusionPhysics.patch-rhs"
    }
}

struct Inner {
    services: Services,
    evals: Arc<AtomicUsize>,
    /// Built on first use (needs both upstream kernels); never rebuilt —
    /// the component has no mutable configuration to re-snapshot.
    kernel: RefCell<Option<Arc<dyn PatchKernel>>>,
}

impl PatchRhsPort for Inner {
    fn eval_patch(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, t: f64) {
        let _scope = self.services.profiler().scope("DiffusionPhysics.patch-rhs");
        // One code path: if the upstream components can snapshot, the
        // serial call runs the very kernel the executor runs.
        if let Some(k) = self.patch_kernel() {
            k.eval(state, rhs, dx, dy, t);
            return;
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .expect("DiffusionPhysics needs the chemistry port");
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .expect("DiffusionPhysics needs the transport port");
        diffusion_rhs(
            &PortProps {
                chem: &chem,
                transport: &transport,
            },
            state,
            rhs,
            dx,
            dy,
        );
    }

    fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    fn patch_kernel(&self) -> Option<Arc<dyn PatchKernel>> {
        if let Some(k) = self.kernel.borrow().as_ref() {
            return Some(k.clone());
        }
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .ok()?;
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .ok()?;
        let k: Arc<dyn PatchKernel> = Arc::new(DiffusionKernel {
            props: KernelProps {
                chem: chem.kernel()?,
                transport: transport.kernel()?,
            },
            evals: self.evals.clone(),
        });
        *self.kernel.borrow_mut() = Some(k.clone());
        Some(k)
    }
}

/// The component: provides `patch-rhs` (PatchRhsPort); uses `chemistry`
/// and `transport`.
#[derive(Default)]
pub struct DiffusionPhysics;

impl Component for DiffusionPhysics {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn TransportPort>>("transport");
        s.add_provides_port::<Rc<dyn PatchRhsPort>>(
            "patch-rhs",
            Rc::new(Inner {
                services: s.clone(),
                evals: Arc::new(AtomicUsize::new(0)),
                kernel: RefCell::new(None),
            }),
        );
    }
}
