//! `DiffusionPhysics` — the patch-at-a-time evaluator of the diffusive
//! transport source term `K ∇·(B ∇Φ)` of paper Eq. 3, with
//! `Φ = {T, Y₁…Y_{N−1}}`, `K = (1/ρ){1/cp, 1, …}`, `B = {λ, ρD₁, …}`.
//!
//! The stencil lives in `diffusion_rhs`, written once and instantiated
//! twice: over the CCA ports (serial framework-thread path) and over the
//! `Send + Sync` kernels (worker-thread path). When the connected
//! chemistry and transport components offer kernels, the port path
//! itself routes through the kernel, so both paths are one code path.

use crate::ports::{
    ChemistryKernel, ChemistrySourcePort, PatchKernel, PatchRhsPort, TransportKernel, TransportPort,
};
use cca_core::{scratch, Component, Services};
use cca_mesh::data::PatchData;
use cca_mesh::layout::KernelConfig;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fixed ambient pressure of the open-domain flame (Pa): "pressure is
/// assumed to be constant in time and space (i.e. burning in an open
/// domain)".
const P0: f64 = 101_325.0;

/// The gas-property surface the stencil needs, abstracted over port
/// dispatch vs kernel dispatch so the arithmetic is written exactly once
/// (the determinism guarantee of the parallel executor relies on this).
trait DiffProps {
    fn n_species(&self) -> usize;
    fn molar_masses(&self, out: &mut [f64]);
    fn mean_molar_mass(&self, y: &[f64]) -> f64;
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64;
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64;
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]);
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64;
}

struct PortProps<'a> {
    chem: &'a Rc<dyn ChemistrySourcePort>,
    transport: &'a Rc<dyn TransportPort>,
}

impl DiffProps for PortProps<'_> {
    fn n_species(&self) -> usize {
        self.chem.n_species()
    }
    fn molar_masses(&self, out: &mut [f64]) {
        self.chem.molar_masses(out);
    }
    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        self.chem.mean_molar_mass(y)
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        self.chem.density(t, p, y)
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        self.chem.cp_mass(t, y)
    }
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        self.transport.mix_diffusivities(t, p, x, out);
    }
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        self.transport.mix_conductivity(t, x)
    }
}

struct KernelProps {
    chem: Arc<dyn ChemistryKernel>,
    transport: Arc<dyn TransportKernel>,
}

impl DiffProps for KernelProps {
    fn n_species(&self) -> usize {
        self.chem.n_species()
    }
    fn molar_masses(&self, out: &mut [f64]) {
        self.chem.molar_masses(out);
    }
    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        self.chem.mean_molar_mass(y)
    }
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        self.chem.density(t, p, y)
    }
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        self.chem.cp_mass(t, y)
    }
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]) {
        self.transport.mix_diffusivities(t, p, x, out);
    }
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64 {
        self.transport.mix_conductivity(t, x)
    }
}

/// The 5-point diffusive RHS of one patch — the single copy of the
/// stencil arithmetic behind both the port and the kernel face.
/// Snapshots the process-wide [`KernelConfig`] once per call; see
/// [`diffusion_rhs_cfg`] for the explicit-config form.
fn diffusion_rhs<P: DiffProps>(
    props: &P,
    state: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
) {
    diffusion_rhs_cfg(props, state, rhs, dx, dy, KernelConfig::current());
}

/// Cache-tiled, band-fused diffusive RHS (DESIGN.md §13).
///
/// The j-loop is blocked into bands of `cfg.band_rows` interior rows. The
/// per-cell transport/thermo property tables (`λ`, `1/ρcp`, `1/ρ` per
/// cell; `ρD` per species plane) are computed into pooled scratch sized
/// for **one band plus its one-row stencil halo** and consumed by the
/// stencil sweep immediately — the property and divergence stages are
/// fused at band granularity, so no patch-sized intermediate field ever
/// exists and the working set stays cache resident. Properties are pure
/// per-cell functions, so recomputing the band-halo rows gives the exact
/// values a whole-patch table would, and with `cfg.fast_div` off every
/// cell's arithmetic is the seed expression in the seed order: results
/// are bit-identical at any tile size and pitch. `cfg.fast_div` replaces
/// the two per-cell divisions by `dx²`/`dy²` with hoisted reciprocal
/// multiplies (tolerance-gated, default off).
fn diffusion_rhs_cfg<P: DiffProps>(
    props: &P,
    state: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
    cfg: KernelConfig,
) {
    let n = props.n_species();
    assert_eq!(state.nvars, n, "state layout is {{T, Y1..Y_{{N-1}}}}");
    assert!(state.nghost >= 1);
    let mut w = scratch::take_f64(n);
    props.molar_masses(&mut w);

    let int = state.interior;
    let ring = int.grow(1);
    let nxr = ring.nx() as usize;
    let nxi = int.nx() as usize;
    let band_h = cfg.band_rows(int.ny() as usize);
    // One band of stencil rows plus the halo row above and below.
    let rows_cap = band_h + 2;
    let mut lambda = scratch::take_f64(rows_cap * nxr);
    let mut inv_rho_cp = scratch::take_f64(rows_cap * nxr);
    let mut inv_rho = scratch::take_f64(rows_cap * nxr);
    // One dense plane per species so each species sweep is unit-stride.
    let mut rho_d = scratch::take_f64(n * rows_cap * nxr);
    // Per-cell working slices, hoisted out of the property loop.
    let mut y = scratch::take_f64(n);
    let mut x = scratch::take_f64(n);
    let mut d = scratch::take_f64(n);

    // Column offsets of the ring / the interior inside a stored row.
    // `rhs` may carry a different ghost width than `state`, so its
    // interior column offset is computed from its own total box.
    let c0r = (ring.lo[0] - state.total_box().lo[0]) as usize;
    let c0i = c0r + 1;
    let r0 = (int.lo[0] - rhs.total_box().lo[0]) as usize;
    let inv_dx2 = 1.0 / (dx * dx);
    let inv_dy2 = 1.0 / (dy * dy);

    let mut j0 = int.lo[1];
    while j0 <= int.hi[1] {
        let j1 = (j0 + band_h as i64 - 1).min(int.hi[1]);
        // Property pass over the band's ring rows [j0-1, j1+1].
        for (r, j) in (j0 - 1..=j1 + 1).enumerate() {
            let trow = &state.row(0, j)[c0r..c0r + nxr];
            for (ii, tv) in trow.iter().enumerate() {
                let t = tv.max(200.0);
                let mut bulk = 1.0;
                for (v, yv) in y.iter_mut().take(n - 1).enumerate() {
                    *yv = state.row(1 + v, j)[c0r + ii];
                    bulk -= *yv;
                }
                y[n - 1] = bulk;
                let w_mean = props.mean_molar_mass(&y);
                let rho = props.density(t, P0, &y);
                for (v, xv) in x.iter_mut().enumerate() {
                    *xv = y[v] * w_mean / w[v];
                }
                props.mix_diffusivities(t, P0, &x, &mut d);
                let cell = r * nxr + ii;
                lambda[cell] = props.mix_conductivity(t, &x);
                let cp = props.cp_mass(t, &y);
                for (v, di) in d.iter().enumerate() {
                    rho_d[v * rows_cap * nxr + cell] = rho * di;
                }
                inv_rho_cp[cell] = 1.0 / (rho * cp);
                inv_rho[cell] = 1.0 / rho;
            }
        }
        // Stencil pass: consume the band tables while they are hot.
        for j in j0..=j1 {
            // Table row of stencil row `j` (halo row j0-1 is table row 0).
            let tj = (j - (j0 - 1)) as usize;
            let (lam_s, rest) = lambda[(tj - 1) * nxr..(tj + 2) * nxr].split_at(nxr);
            let (lam_c, lam_n) = rest.split_at(nxr);
            let ircp = &inv_rho_cp[tj * nxr..(tj + 1) * nxr];
            // Temperature: (1/ρcp) ∇·(λ∇T), 5-point form with
            // face-averaged coefficients.
            let (t_s, t_c, t_n) = state.rows3(0, j);
            let out = rhs.row_mut(0, j);
            for ii in 0..nxi {
                let p = ii + 1; // ring/table column of interior column ii
                let s = c0i + ii; // stored-row column
                let lam_cc = lam_c[p];
                let lam_e = 0.5 * (lam_cc + lam_c[p + 1]);
                let lam_w = 0.5 * (lam_cc + lam_c[p - 1]);
                let lam_nn = 0.5 * (lam_cc + lam_n[p]);
                let lam_ss = 0.5 * (lam_cc + lam_s[p]);
                let t_cc = t_c[s];
                let div_x = lam_e * (t_c[s + 1] - t_cc) - lam_w * (t_cc - t_c[s - 1]);
                let div_y = lam_nn * (t_n[s] - t_cc) - lam_ss * (t_cc - t_s[s]);
                let div_t = if cfg.fast_div {
                    div_x * inv_dx2 + div_y * inv_dy2
                } else {
                    div_x / (dx * dx) + div_y / (dy * dy)
                };
                out[r0 + ii] = ircp[p] * div_t;
            }
            // Species: (1/ρ) ∇·(ρD_i ∇Y_i) for the N-1 stored species.
            let irho = &inv_rho[tj * nxr..(tj + 1) * nxr];
            for v in 0..n - 1 {
                let plane = &rho_d[v * rows_cap * nxr..(v + 1) * rows_cap * nxr];
                let (b_s, rest) = plane[(tj - 1) * nxr..(tj + 2) * nxr].split_at(nxr);
                let (b_c, b_n) = rest.split_at(nxr);
                let (y_s, y_c, y_n) = state.rows3(1 + v, j);
                let out = rhs.row_mut(1 + v, j);
                for ii in 0..nxi {
                    let p = ii + 1;
                    let s = c0i + ii;
                    let b_cc = b_c[p];
                    let b_e = 0.5 * (b_cc + b_c[p + 1]);
                    let b_w = 0.5 * (b_cc + b_c[p - 1]);
                    let b_nn = 0.5 * (b_cc + b_n[p]);
                    let b_ss = 0.5 * (b_cc + b_s[p]);
                    let y_cc = y_c[s];
                    let div_x = b_e * (y_c[s + 1] - y_cc) - b_w * (y_cc - y_c[s - 1]);
                    let div_y = b_nn * (y_n[s] - y_cc) - b_ss * (y_cc - y_s[s]);
                    let div = if cfg.fast_div {
                        div_x * inv_dx2 + div_y * inv_dy2
                    } else {
                        div_x / (dx * dx) + div_y / (dy * dy)
                    };
                    out[r0 + ii] = irho[p] * div;
                }
            }
        }
        j0 = j1 + 1;
    }
}

/// Explicit-config entry point over kernel snapshots, for benches and
/// tiling-correctness tests that must not mutate the process-wide knobs.
pub fn diffusion_rhs_with_kernels(
    chem: &Arc<dyn ChemistryKernel>,
    transport: &Arc<dyn TransportKernel>,
    state: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
    cfg: KernelConfig,
) {
    let props = KernelProps {
        chem: chem.clone(),
        transport: transport.clone(),
    };
    diffusion_rhs_cfg(&props, state, rhs, dx, dy, cfg);
}

/// Worker-thread face: chemistry + transport kernel snapshots and the
/// shared evaluation counter.
struct DiffusionKernel {
    props: KernelProps,
    evals: Arc<AtomicUsize>,
}

impl PatchKernel for DiffusionKernel {
    fn eval(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, _t: f64) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        diffusion_rhs(&self.props, state, rhs, dx, dy);
    }

    fn label(&self) -> &'static str {
        "DiffusionPhysics.patch-rhs"
    }
}

struct Inner {
    services: Services,
    evals: Arc<AtomicUsize>,
    /// Built on first use (needs both upstream kernels); never rebuilt —
    /// the component has no mutable configuration to re-snapshot.
    kernel: RefCell<Option<Arc<dyn PatchKernel>>>,
}

impl PatchRhsPort for Inner {
    fn eval_patch(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, t: f64) {
        let _scope = self.services.profiler().scope("DiffusionPhysics.patch-rhs");
        self.services
            .profiler()
            .add_cells("DiffusionPhysics.patch-rhs", state.interior.count() as u64);
        // One code path: if the upstream components can snapshot, the
        // serial call runs the very kernel the executor runs.
        if let Some(k) = self.patch_kernel() {
            k.eval(state, rhs, dx, dy, t);
            return;
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .expect("DiffusionPhysics needs the chemistry port");
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .expect("DiffusionPhysics needs the transport port");
        diffusion_rhs(
            &PortProps {
                chem: &chem,
                transport: &transport,
            },
            state,
            rhs,
            dx,
            dy,
        );
    }

    fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    fn patch_kernel(&self) -> Option<Arc<dyn PatchKernel>> {
        if let Some(k) = self.kernel.borrow().as_ref() {
            return Some(k.clone());
        }
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .ok()?;
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .ok()?;
        let k: Arc<dyn PatchKernel> = Arc::new(DiffusionKernel {
            props: KernelProps {
                chem: chem.kernel()?,
                transport: transport.kernel()?,
            },
            evals: self.evals.clone(),
        });
        *self.kernel.borrow_mut() = Some(k.clone());
        Some(k)
    }
}

/// The component: provides `patch-rhs` (PatchRhsPort); uses `chemistry`
/// and `transport`.
#[derive(Default)]
pub struct DiffusionPhysics;

impl Component for DiffusionPhysics {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn TransportPort>>("transport");
        s.add_provides_port::<Rc<dyn PatchRhsPort>>(
            "patch-rhs",
            Rc::new(Inner {
                services: s.clone(),
                evals: Arc::new(AtomicUsize::new(0)),
                kernel: RefCell::new(None),
            }),
        );
    }
}
