//! `DiffusionPhysics` — the patch-at-a-time evaluator of the diffusive
//! transport source term `K ∇·(B ∇Φ)` of paper Eq. 3, with
//! `Φ = {T, Y₁…Y_{N−1}}`, `K = (1/ρ){1/cp, 1, …}`, `B = {λ, ρD₁, …}`.

use crate::ports::{ChemistrySourcePort, PatchRhsPort, TransportPort};
use cca_core::{Component, Services};
use cca_mesh::data::PatchData;
use std::cell::Cell;
use std::rc::Rc;

/// Fixed ambient pressure of the open-domain flame (Pa): "pressure is
/// assumed to be constant in time and space (i.e. burning in an open
/// domain)".
const P0: f64 = 101_325.0;

struct Inner {
    services: Services,
    evals: Cell<usize>,
}

struct CellProps {
    /// λ at the cell.
    lambda: f64,
    /// ρ·D_i per species.
    rho_d: Vec<f64>,
    /// 1/(ρ cp).
    inv_rho_cp: f64,
    /// 1/ρ.
    inv_rho: f64,
}

impl Inner {
    fn props(
        &self,
        chem: &Rc<dyn ChemistrySourcePort>,
        transport: &Rc<dyn TransportPort>,
        pd: &PatchData,
        i: i64,
        j: i64,
    ) -> CellProps {
        let n = chem.n_species();
        let t = pd.get(0, i, j).max(200.0);
        let mut y = vec![0.0; n];
        let mut bulk = 1.0;
        for (v, yv) in y.iter_mut().take(n - 1).enumerate() {
            *yv = pd.get(1 + v, i, j);
            bulk -= *yv;
        }
        y[n - 1] = bulk;
        let w_mean = chem.mean_molar_mass(&y);
        let rho = chem.density(t, P0, &y);
        let mut x = vec![0.0; n];
        for (v, xv) in x.iter_mut().enumerate() {
            *xv = y[v] * w_mean / chem.molar_mass(v);
        }
        let mut d = vec![0.0; n];
        transport.mix_diffusivities(t, P0, &x, &mut d);
        let lambda = transport.mix_conductivity(t, &x);
        let cp = chem.cp_mass(t, &y);
        CellProps {
            lambda,
            rho_d: d.iter().map(|di| rho * di).collect(),
            inv_rho_cp: 1.0 / (rho * cp),
            inv_rho: 1.0 / rho,
        }
    }
}

impl PatchRhsPort for Inner {
    fn eval_patch(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, _t: f64) {
        self.evals.set(self.evals.get() + 1);
        let _scope = self.services.profiler().scope("DiffusionPhysics.patch-rhs");
        let chem = self
            .services
            .get_port::<Rc<dyn ChemistrySourcePort>>("chemistry")
            .expect("DiffusionPhysics needs the chemistry port");
        let transport = self
            .services
            .get_port::<Rc<dyn TransportPort>>("transport")
            .expect("DiffusionPhysics needs the transport port");
        let n = chem.n_species();
        assert_eq!(state.nvars, n, "state layout is {{T, Y1..Y_{{N-1}}}}");
        assert!(state.nghost >= 1);

        // Pre-compute properties on interior+1 ring, row-major cache.
        let ring = state.interior.grow(1);
        let nx = ring.nx();
        let props: Vec<CellProps> = ring
            .cells()
            .map(|(i, j)| self.props(&chem, &transport, state, i, j))
            .collect();
        let at = |i: i64, j: i64| -> &CellProps {
            let ii = (i - ring.lo[0]) as usize;
            let jj = (j - ring.lo[1]) as usize;
            &props[jj * nx as usize + ii]
        };

        let interior = state.interior;
        for (i, j) in interior.cells() {
            let pc = at(i, j);
            // Temperature: (1/ρcp) ∇·(λ∇T), 5-point form with
            // face-averaged coefficients.
            let lam_c = pc.lambda;
            let lam_e = 0.5 * (lam_c + at(i + 1, j).lambda);
            let lam_w = 0.5 * (lam_c + at(i - 1, j).lambda);
            let lam_n = 0.5 * (lam_c + at(i, j + 1).lambda);
            let lam_s = 0.5 * (lam_c + at(i, j - 1).lambda);
            let t_c = state.get(0, i, j);
            let div_t = (lam_e * (state.get(0, i + 1, j) - t_c)
                - lam_w * (t_c - state.get(0, i - 1, j)))
                / (dx * dx)
                + (lam_n * (state.get(0, i, j + 1) - t_c) - lam_s * (t_c - state.get(0, i, j - 1)))
                    / (dy * dy);
            rhs.set(0, i, j, pc.inv_rho_cp * div_t);
            // Species: (1/ρ) ∇·(ρD_i ∇Y_i) for the N-1 stored species.
            for v in 0..n - 1 {
                let b_c = pc.rho_d[v];
                let b_e = 0.5 * (b_c + at(i + 1, j).rho_d[v]);
                let b_w = 0.5 * (b_c + at(i - 1, j).rho_d[v]);
                let b_n = 0.5 * (b_c + at(i, j + 1).rho_d[v]);
                let b_s = 0.5 * (b_c + at(i, j - 1).rho_d[v]);
                let y_c = state.get(1 + v, i, j);
                let div = (b_e * (state.get(1 + v, i + 1, j) - y_c)
                    - b_w * (y_c - state.get(1 + v, i - 1, j)))
                    / (dx * dx)
                    + (b_n * (state.get(1 + v, i, j + 1) - y_c)
                        - b_s * (y_c - state.get(1 + v, i, j - 1)))
                        / (dy * dy);
                rhs.set(1 + v, i, j, pc.inv_rho * div);
            }
        }
    }

    fn evals(&self) -> usize {
        self.evals.get()
    }
}

/// The component: provides `patch-rhs` (PatchRhsPort); uses `chemistry`
/// and `transport`.
#[derive(Default)]
pub struct DiffusionPhysics;

impl Component for DiffusionPhysics {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn ChemistrySourcePort>>("chemistry");
        s.register_uses_port::<Rc<dyn TransportPort>>("transport");
        s.add_provides_port::<Rc<dyn PatchRhsPort>>(
            "patch-rhs",
            Rc::new(Inner {
                services: s.clone(),
                evals: Cell::new(0),
            }),
        );
    }
}
