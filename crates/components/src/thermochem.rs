//! `ThermoChemistry` — the paper's thermochemistry component: "it provides
//! the source terms for temperature and species due to chemistry and is a
//! thin C++ wrapper around Fortran 77 subroutines... also serves as a
//! Database subsystem, i.e. it holds the gas properties." Here the wrapped
//! library is `cca-chem`.
//!
//! The gas-phase evaluations live in a `Send + Sync` `MechKernel` that
//! the single-threaded port face delegates to, so the same object (and
//! the same shared NFE counter) serves both the serial port path and the
//! parallel executor path.

use crate::ports::{ChemistryKernel, ChemistrySourcePort};
use cca_chem::kinetics::Mechanism;
use cca_chem::thermo::Mixture;
use cca_core::{Component, ParameterPort, Services};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which mechanism the component instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MechanismChoice {
    /// 9 species, 19 reversible reactions (paper §4.1/§4.2).
    Full19,
    /// 8 species, 5 reactions (the deliberately light Table 4 mechanism).
    Reduced5,
}

/// The thread-safe core: mechanism data plus the production-rate call
/// counter (Table 4's NFE), shared by every port and kernel handle.
struct MechKernel {
    mech: Mechanism,
    calls: AtomicUsize,
}

impl ChemistryKernel for MechKernel {
    fn n_species(&self) -> usize {
        self.mech.n_species()
    }

    fn molar_masses(&self, out: &mut [f64]) {
        for (o, s) in out.iter_mut().zip(&self.mech.species) {
            *o = s.molar_mass;
        }
    }

    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.mech.production_rates(t, c, wdot);
    }

    fn enthalpies_molar(&self, t: f64, out: &mut [f64]) {
        for (o, s) in out.iter_mut().zip(&self.mech.species) {
            *o = s.h_molar(t);
        }
    }

    fn internal_energies_molar(&self, t: f64, out: &mut [f64]) {
        for (o, s) in out.iter_mut().zip(&self.mech.species) {
            *o = s.u_molar(t);
        }
    }

    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        Mixture::new(&self.mech.species).cp_mass(t, y)
    }

    fn cv_mass(&self, t: f64, y: &[f64]) -> f64 {
        Mixture::new(&self.mech.species).cv_mass(t, y)
    }

    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        Mixture::new(&self.mech.species).mean_molar_mass(y)
    }

    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        Mixture::new(&self.mech.species).density(t, p, y)
    }
}

struct Inner {
    kernel: Arc<MechKernel>,
    /// The Database face: gas properties by name.
    params: std::cell::RefCell<std::collections::BTreeMap<String, f64>>,
}

impl ChemistrySourcePort for Inner {
    fn n_species(&self) -> usize {
        self.kernel.n_species()
    }

    fn molar_mass(&self, i: usize) -> f64 {
        self.kernel.mech.species[i].molar_mass
    }

    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]) {
        ChemistryKernel::production_rates(&*self.kernel, t, c, wdot);
    }

    fn h_molar(&self, i: usize, t: f64) -> f64 {
        self.kernel.mech.species[i].h_molar(t)
    }

    fn u_molar(&self, i: usize, t: f64) -> f64 {
        self.kernel.mech.species[i].u_molar(t)
    }

    // Array overrides (CHEMKIN CKWT/CKHML/CKUML shape): one port call per
    // evaluation, no per-species dispatch in hot loops.
    fn molar_masses(&self, out: &mut [f64]) {
        self.kernel.molar_masses(out);
    }

    fn enthalpies_molar(&self, t: f64, out: &mut [f64]) {
        ChemistryKernel::enthalpies_molar(&*self.kernel, t, out);
    }

    fn internal_energies_molar(&self, t: f64, out: &mut [f64]) {
        ChemistryKernel::internal_energies_molar(&*self.kernel, t, out);
    }

    fn cp_mass(&self, t: f64, y: &[f64]) -> f64 {
        ChemistryKernel::cp_mass(&*self.kernel, t, y)
    }

    fn cv_mass(&self, t: f64, y: &[f64]) -> f64 {
        ChemistryKernel::cv_mass(&*self.kernel, t, y)
    }

    fn mean_molar_mass(&self, y: &[f64]) -> f64 {
        ChemistryKernel::mean_molar_mass(&*self.kernel, y)
    }

    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64 {
        ChemistryKernel::density(&*self.kernel, t, p, y)
    }

    fn calls(&self) -> usize {
        self.kernel.calls.load(Ordering::Relaxed)
    }

    fn kernel(&self) -> Option<Arc<dyn ChemistryKernel>> {
        Some(self.kernel.clone())
    }
}

impl ParameterPort for Inner {
    fn set_parameter(&self, key: &str, value: f64) {
        self.params.borrow_mut().insert(key.to_string(), value);
    }

    fn get_parameter(&self, key: &str) -> Option<f64> {
        // Built-in gas properties first, then user-set keys.
        match key {
            "n_species" => Some(self.kernel.mech.n_species() as f64),
            "n_reactions" => Some(self.kernel.mech.reactions.len() as f64),
            _ => self.params.borrow().get(key).copied(),
        }
    }
}

/// The component. Registers `chemistry` (ChemistrySourcePort) and
/// `properties` (ParameterPort) provides-ports.
pub struct ThermoChemistry {
    choice: MechanismChoice,
}

impl ThermoChemistry {
    /// Component with the full 19-reaction mechanism.
    pub fn full() -> Self {
        ThermoChemistry {
            choice: MechanismChoice::Full19,
        }
    }

    /// Component with the reduced 5-reaction mechanism.
    pub fn reduced() -> Self {
        ThermoChemistry {
            choice: MechanismChoice::Reduced5,
        }
    }
}

impl Component for ThermoChemistry {
    fn set_services(&mut self, s: Services) {
        let mech = match self.choice {
            MechanismChoice::Full19 => cca_chem::h2_air_19(),
            MechanismChoice::Reduced5 => cca_chem::h2_air_reduced_5(),
        };
        let inner = Rc::new(Inner {
            kernel: Arc::new(MechKernel {
                mech,
                calls: AtomicUsize::new(0),
            }),
            params: Default::default(),
        });
        s.add_provides_port::<Rc<dyn ChemistrySourcePort>>("chemistry", inner.clone());
        s.add_provides_port::<Rc<dyn ParameterPort>>("properties", inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(choice: MechanismChoice) -> Rc<dyn ChemistrySourcePort> {
        let mut c = ThermoChemistry { choice };
        let s = Services::new("chem");
        c.set_services(s.clone());
        // Fetch the provides port directly for unit testing.
        let mut fw = cca_core::Framework::new();
        fw.register_class("T", move || Box::new(ThermoChemistry { choice }));
        fw.instantiate("T", "t").unwrap();
        fw.get_provides_port::<Rc<dyn ChemistrySourcePort>>("t", "chemistry")
            .unwrap()
    }

    #[test]
    fn full_and_reduced_dimensions() {
        assert_eq!(port(MechanismChoice::Full19).n_species(), 9);
        assert_eq!(port(MechanismChoice::Reduced5).n_species(), 8);
    }

    #[test]
    fn database_face_reports_gas_properties() {
        let mut fw = cca_core::Framework::new();
        fw.register_class("T", || Box::new(ThermoChemistry::full()));
        fw.instantiate("T", "t").unwrap();
        let db = fw
            .get_provides_port::<Rc<dyn ParameterPort>>("t", "properties")
            .unwrap();
        assert_eq!(db.get_parameter("n_species"), Some(9.0));
        assert_eq!(db.get_parameter("n_reactions"), Some(19.0));
        db.set_parameter("reference_pressure", 101325.0);
        assert_eq!(db.get_parameter("reference_pressure"), Some(101325.0));
    }

    #[test]
    fn call_counter_tracks_nfe() {
        let p = port(MechanismChoice::Reduced5);
        let n = p.n_species();
        let mut wdot = vec![0.0; n];
        assert_eq!(p.calls(), 0);
        p.production_rates(1200.0, &vec![1e-3; n], &mut wdot);
        p.production_rates(1200.0, &vec![1e-3; n], &mut wdot);
        assert_eq!(p.calls(), 2);
    }

    #[test]
    fn kernel_matches_port_and_shares_the_counter() {
        let p = port(MechanismChoice::Full19);
        let k = p.kernel().expect("ThermoChemistry offers a kernel");
        let n = p.n_species();
        assert_eq!(k.n_species(), n);
        let c = vec![1e-3; n];
        let (mut wp, mut wk) = (vec![0.0; n], vec![0.0; n]);
        p.production_rates(1500.0, &c, &mut wp);
        k.production_rates(1500.0, &c, &mut wk);
        // Same code behind both faces: bit-identical rates...
        for (a, b) in wp.iter().zip(&wk) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // ...and one shared NFE counter.
        assert_eq!(p.calls(), 2);
        let y = vec![1.0 / n as f64; n];
        assert_eq!(
            p.density(1500.0, 101_325.0, &y).to_bits(),
            k.density(1500.0, 101_325.0, &y).to_bits()
        );
    }
}
