//! `ExplicitIntegrator` — the Runge-Kutta-Chebyshev time integrator of the
//! reaction–diffusion assembly, acting on Data Objects in a synchronized
//! manner (a type-(c) port). The RKC stage recursion runs over a
//! *flattened view* of the whole hierarchy: each stage's RHS evaluation
//! scatters the stage vector into the Data Object, refills ghosts (so
//! patch coupling happens exactly once per stage, as in GrACE), and calls
//! the connected `PatchRhsPort` one patch at a time.

use crate::ports::{
    BoundaryConditionPort, DataPort, EigenEstimatePort, MeshPort, PatchRhsPort, TimeIntegratorPort,
};
use cca_core::{scratch, Component, Executor, Services};
use cca_mesh::data::PatchData;
use cca_solvers::ode::OdeSystem;
use cca_solvers::rkc::{Rkc, RkcConfig, RkcStats};
use std::cell::Cell;
use std::rc::Rc;

/// Flattened hierarchy view: gather/scatter between a Data Object and a
/// contiguous vector (interiors only, level-major, patch-major,
/// variable-major within a cell... variable-major per patch).
pub(crate) struct FlatView {
    pub mesh: Rc<dyn MeshPort>,
    pub data: Rc<dyn DataPort>,
    pub name: String,
    pub nvars: usize,
}

impl FlatView {
    pub fn dim(&self) -> usize {
        let mut n = 0usize;
        for level in 0..self.mesh.n_levels() {
            for (_, interior, _) in self.mesh.patches(level) {
                n += interior.count() as usize * self.nvars;
            }
        }
        n
    }

    pub fn gather(&self, out: &mut Vec<f64>) {
        out.clear();
        for level in 0..self.mesh.n_levels() {
            for (id, _, _) in self.mesh.patches(level) {
                self.data.with_patch(&self.name, level, id, &mut |pd| {
                    // Dense interior rows in the same var-major, row-major
                    // value order the per-cell loop produced.
                    let interior = pd.interior;
                    let si = (interior.lo[0] - pd.total_box().lo[0]) as usize;
                    let w = interior.nx() as usize;
                    for var in 0..pd.nvars {
                        for j in interior.lo[1]..=interior.hi[1] {
                            out.extend_from_slice(&pd.row(var, j)[si..si + w]);
                        }
                    }
                });
            }
        }
    }

    pub fn scatter(&self, v: &[f64]) {
        let mut k = 0usize;
        for level in 0..self.mesh.n_levels() {
            for (id, _, _) in self.mesh.patches(level) {
                self.data.with_patch_mut(&self.name, level, id, &mut |pd| {
                    let interior = pd.interior;
                    let di = (interior.lo[0] - pd.total_box().lo[0]) as usize;
                    let w = interior.nx() as usize;
                    for var in 0..pd.nvars {
                        for j in interior.lo[1]..=interior.hi[1] {
                            pd.row_mut(var, j)[di..di + w].copy_from_slice(&v[k..k + w]);
                            k += w;
                        }
                    }
                });
            }
        }
        debug_assert_eq!(k, v.len());
    }
}

/// One patch's share of a hierarchy RHS evaluation: the state view
/// (ghosts filled) and the RHS patch to write, both detached from the
/// Data Objects so a worker thread owns them exclusively.
struct RhsItem {
    state: PatchData,
    rhs: PatchData,
}

/// Evaluate the connected `PatchRhsPort` over every patch of the
/// hierarchy, writing into the `rhs_name` Data Object. Ghosts of
/// `view.name` must already be filled.
///
/// When the port offers a [`crate::ports::PatchKernel`], the patch loop
/// runs on the framework's executor: state and RHS patches are detached
/// as disjoint owned views, evaluated concurrently, and re-attached.
/// The kernel route is taken at *any* worker count (the executor runs
/// inline at 1 worker), so results never depend on the worker knob.
/// Ports without a kernel are evaluated serially, one patch at a time.
pub(crate) fn eval_hierarchy_rhs(
    view: &FlatView,
    rhs_port: &Rc<dyn PatchRhsPort>,
    rhs_name: &str,
    executor: &Executor,
    label: &str,
    t: f64,
) {
    let mesh = &view.mesh;
    let data = &view.data;
    let kernel = rhs_port.patch_kernel();
    for level in 0..mesh.n_levels() {
        let dx = mesh.dx(level);
        match &kernel {
            Some(k) => {
                let descriptors = mesh.patches(level);
                let ids: Vec<usize> = descriptors.iter().map(|(id, _, _)| *id).collect();
                if ids.is_empty() {
                    continue;
                }
                // Boundary-adjacent patches (touching a sibling patch or
                // the level-domain edge) feed the next ghost exchange, so
                // they start first — shortening the path to the exchange
                // the same way the distributed sweep overlaps its halo.
                let domain = mesh.level_domain(level);
                let adjacency: Vec<i64> = descriptors
                    .iter()
                    .enumerate()
                    .map(|(pi, (_, interior, _))| {
                        let ring = interior.grow(1);
                        let edge = !domain.contains_box(&ring);
                        let sibling = descriptors.iter().enumerate().any(|(qi, (_, other, _))| {
                            qi != pi && other.intersect(&ring).is_some()
                        });
                        (edge || sibling) as i64
                    })
                    .collect();
                let states = data.take_level_patches(&view.name, level, &ids);
                let rhss = data.take_level_patches(rhs_name, level, &ids);
                let items: Vec<RhsItem> = states
                    .into_iter()
                    .zip(rhss)
                    .map(|(state, rhs)| RhsItem { state, rhs })
                    .collect();
                // Run under the kernel's own timer name (the same
                // `component.port` the serial port path records) so
                // profiles read the same whichever route patches took.
                let run_label = k.label();
                let cells: u64 = descriptors
                    .iter()
                    .map(|(_, interior, _)| interior.count() as u64)
                    .sum();
                executor.profiler().add_cells(run_label, cells);
                let k = k.clone();
                let report = executor.run_with_priority(
                    run_label,
                    items,
                    |idx, _| adjacency[idx],
                    move |_worker, item| {
                        k.eval(&item.state, &mut item.rhs, dx[0], dx[1], t);
                    },
                );
                // A panicking kernel poisons the run; surface it as the
                // panic the serial path would have raised (patches are
                // forfeit either way).
                let items = report
                    .into_result()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let (mut states, mut rhss) = (Vec::new(), Vec::new());
                for item in items {
                    states.push(item.state);
                    rhss.push(item.rhs);
                }
                data.put_level_patches(&view.name, level, &ids, states);
                data.put_level_patches(rhs_name, level, &ids, rhss);
            }
            None => {
                for (id, _, _) in mesh.patches(level) {
                    // Two-phase: read the state patch (clone), evaluate
                    // into the scratch RHS patch.
                    let mut state_copy = None;
                    data.with_patch(&view.name, level, id, &mut |pd| {
                        state_copy = Some(pd.clone());
                    });
                    let state = state_copy.expect("patch exists");
                    data.with_patch_mut(rhs_name, level, id, &mut |rhs_pd| {
                        rhs_port.eval_patch(&state, rhs_pd, dx[0], dx[1], t);
                    });
                }
            }
        }
    }
}

/// OdeSystem adapter: scatter → ghost fill → per-patch RHS → gather.
struct HierarchyOde {
    view: FlatView,
    /// Pre-built view of the scratch RHS Data Object, so per-stage RHS
    /// evaluations do not rebuild it (and its name `String`) each call.
    rhs_view: FlatView,
    rhs_port: Rc<dyn PatchRhsPort>,
    bc: Rc<dyn BoundaryConditionPort>,
    executor: Executor,
}

impl OdeSystem for HierarchyOde {
    fn dim(&self) -> usize {
        self.view.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self.view.scatter(y);
        let mesh = &self.view.mesh;
        let data = &self.view.data;
        for level in 0..mesh.n_levels() {
            data.fill_ghosts(&self.view.name, level, &|side, var| self.bc.rule(side, var));
        }
        eval_hierarchy_rhs(
            &self.view,
            &self.rhs_port,
            &self.rhs_view.name,
            &self.executor,
            "ExplicitIntegrator.patch-rhs",
            t,
        );
        // Gather the RHS object through a pooled staging buffer (the
        // gather path wants a Vec it can push into).
        let mut buf = scratch::take_f64(dydt.len());
        self.rhs_view.gather(&mut buf);
        dydt.copy_from_slice(&buf);
    }
}

struct Inner {
    services: Services,
    stats: Cell<RkcStats>,
    rtol: Cell<f64>,
    atol: Cell<f64>,
}

impl TimeIntegratorPort for Inner {
    fn advance(&self, state: &str, t: f64, dt_max: f64) -> Result<f64, String> {
        let _scope = self.services.profiler().scope("ExplicitIntegrator.advance");
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .map_err(|e| e.to_string())?;
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .map_err(|e| e.to_string())?;
        let rhs_port = self
            .services
            .get_port::<Rc<dyn PatchRhsPort>>("patch-rhs")
            .map_err(|e| e.to_string())?;
        let eigen = self
            .services
            .get_port::<Rc<dyn EigenEstimatePort>>("eigen-estimate")
            .map_err(|e| e.to_string())?;
        let bc = self
            .services
            .get_port::<Rc<dyn BoundaryConditionPort>>("bc")
            .map_err(|e| e.to_string())?;

        let nvars = data.nvars(state);
        // Scratch RHS Data Object (idempotent creation).
        let rhs_name = format!("__rkc_rhs_{state}");
        data.create_data_object(&rhs_name, nvars, 0);
        let rhs_view = FlatView {
            mesh: mesh.clone(),
            data: data.clone(),
            name: rhs_name,
            nvars,
        };
        let view = FlatView {
            mesh,
            data,
            name: state.to_string(),
            nvars,
        };
        let sys = HierarchyOde {
            view,
            rhs_view,
            rhs_port,
            bc,
            executor: self.services.executor(),
        };
        let n = sys.view.dim();
        let mut y = scratch::take_f64(n);
        sys.view.gather(&mut y);

        let rho = eigen.estimate(state);
        let rkc = Rkc::new(RkcConfig {
            rtol: self.rtol.get(),
            atol: self.atol.get(),
            ..RkcConfig::default()
        });
        // Single stability-scheduled RKC macro-step of size dt_max: the
        // stage count is chosen from the spectral radius (the paper's
        // "dynamic time-step sizing" information path). Stage vectors
        // and the output/error buffers all come from the scratch pool.
        let mut stats = RkcStats::default();
        let mut y_new = scratch::take_f64(n);
        let mut est = scratch::take_f64(n);
        rkc.step_into(&sys, t, &y, dt_max, rho, &mut stats, &mut y_new, &mut est);
        if y_new.iter().any(|v| !v.is_finite()) {
            return Err(format!("RKC produced a non-finite state at t = {t:e}"));
        }
        stats.steps += 1;
        self.stats.set(accumulate(self.stats.get(), stats));
        sys.view.scatter(&y_new);
        Ok(dt_max)
    }
}

fn accumulate(mut a: RkcStats, b: RkcStats) -> RkcStats {
    a.steps += b.steps;
    a.rhs_evals += b.rhs_evals;
    a.rejections += b.rejections;
    a.max_stages_used = a.max_stages_used.max(b.max_stages_used);
    a
}

/// The component: provides `time-integrator` (TimeIntegratorPort); uses
/// `mesh`, `data`, `patch-rhs`, `eigen-estimate`, `bc`.
#[derive(Default)]
pub struct ExplicitIntegratorRkc;

impl Component for ExplicitIntegratorRkc {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn PatchRhsPort>>("patch-rhs");
        s.register_uses_port::<Rc<dyn EigenEstimatePort>>("eigen-estimate");
        s.register_uses_port::<Rc<dyn BoundaryConditionPort>>("bc");
        s.add_provides_port::<Rc<dyn TimeIntegratorPort>>(
            "time-integrator",
            Rc::new(Inner {
                services: s.clone(),
                stats: Cell::new(RkcStats::default()),
                rtol: Cell::new(1e-6),
                atol: Cell::new(1e-9),
            }),
        );
    }
}
