//! Domain-specific port (interface) definitions — the concrete realization
//! of the paper's §4 port taxonomy:
//!
//! * (a) [`MeshPort`] — geometrical manipulation of the domain, field
//!   declaration, domain-decomposition queries;
//! * (b) [`DataPort`] — Data Object manipulation (patch data access, ghost
//!   fill, restriction);
//! * (c) [`TimeIntegratorPort`] — act on Data Objects in a synchronized
//!   manner; [`ChemistryAdvancePort`] for the implicit subsystem;
//! * (d) [`PatchRhsPort`] — accept an array from a patch (RHS evaluation,
//!   one patch at a time);
//! * (e) [`OdeRhsPort`], [`OdeIntegratorPort`] — accept vectors;
//! * (f) `cca_core::ParameterPort` — key-value pairs (Database).
//!
//! All ports are object-safe traits passed as `Rc<dyn Trait>`: one virtual
//! call per invocation, the overhead Table 4 measures.

use cca_mesh::bc::BcKind;
use cca_mesh::boxes::IntBox;
use cca_mesh::data::PatchData;
use std::rc::Rc;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Patch-kernel snapshots — the parallel-executor seam
// ---------------------------------------------------------------------
//
// Ports are single-threaded (`Rc<dyn Trait>`): cheap to call, but pinned
// to the framework thread. The hot loops of the paper's codes, however,
// are *patch* loops whose iterations are independent — exactly the
// "computation of the RHS values... performed patch-by-patch" structure
// the paper exploits for parallelism. To run those loops on the
// framework's worker pool without breaking the component model, a port
// may hand out a **kernel**: an immutable `Send + Sync` snapshot of the
// computation behind the port, safe to invoke from worker threads.
//
// Two invariants keep the port and kernel faces interchangeable:
//
// 1. *Same math*: a component that offers a kernel routes its own port
//    body through the very same code, so serial (port) and parallel
//    (kernel) execution are bit-identical.
// 2. *Snapshot semantics*: a kernel captures the component's
//    configuration (tolerances, limiter, γ) at the moment it is handed
//    out; parameter changes require re-fetching the kernel.
//
// Every hook defaults to `None`, so third-party port implementations
// remain valid and simply run serially.

/// `Send + Sync` face of [`ChemistrySourcePort`]: the thermochemistry
/// evaluations worker threads need. Call counters behind the snapshot
/// are shared atomics, so the port's NFE accounting stays exact.
pub trait ChemistryKernel: Send + Sync {
    /// Number of species.
    fn n_species(&self) -> usize;
    /// All species molar masses, kg/kmol.
    fn molar_masses(&self, out: &mut [f64]);
    /// Net molar production rates from `T` and concentrations.
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]);
    /// All molar enthalpies at `T`, J/kmol.
    fn enthalpies_molar(&self, t: f64, out: &mut [f64]);
    /// All molar internal energies at `T`, J/kmol.
    fn internal_energies_molar(&self, t: f64, out: &mut [f64]);
    /// Mixture mass heat capacity cp, J/(kg·K).
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64;
    /// Mixture mass heat capacity cv, J/(kg·K).
    fn cv_mass(&self, t: f64, y: &[f64]) -> f64;
    /// Mean molar mass, kg/kmol.
    fn mean_molar_mass(&self, y: &[f64]) -> f64;
    /// Ideal-gas density at `(T, P, Y)`.
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64;
}

/// `Send + Sync` face of [`TransportPort`].
pub trait TransportKernel: Send + Sync {
    /// Mixture-averaged diffusivities from `T`, `P`, mole fractions.
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]);
    /// Mixture thermal conductivity.
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64;
}

/// `Send + Sync` face of [`PatchRhsPort`]: one patch RHS evaluation,
/// invocable from any worker thread on disjoint patch views.
pub trait PatchKernel: Send + Sync {
    /// Write the RHS of `state` into `rhs` (interiors only); same
    /// contract as [`PatchRhsPort::eval_patch`].
    fn eval(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, t: f64);

    /// Profiler timer name for one `eval` — the same `component.port`
    /// name the providing component's serial path records, so profiles
    /// stay comparable whichever route a patch took.
    fn label(&self) -> &'static str {
        "patch-kernel.eval"
    }
}

/// A `Sync` ODE right-hand side evaluated inside worker threads (the
/// kernel counterpart of [`OdeRhsPort`], minus the single-threaded NFE
/// cell — kernels count via shared atomics).
pub trait OdeSystemKernel: Sync {
    /// State dimension.
    fn dim(&self) -> usize;
    /// Evaluate the RHS.
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// `Send + Sync` face of [`OdeIntegratorPort`]: a configuration snapshot
/// (tolerances, initial step) that integrates one cell's ODE system on
/// whatever thread the executor chose.
pub trait OdeCellKernel: Send + Sync {
    /// Advance `y` from `t0` to `t1` using `sys`.
    fn integrate(
        &self,
        sys: &dyn OdeSystemKernel,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<IntegrateStats, String>;
}

/// `Send + Sync` face of [`StatesPort`] (limiter captured at snapshot).
pub trait StatesKernel: Send + Sync {
    /// Left/right primitive interface states; same contract as
    /// [`StatesPort::reconstruct`].
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (cca_hydro_solver::Prim, cca_hydro_solver::Prim);
}

/// `Send + Sync` face of [`FluxPort`].
pub trait FluxKernel: Send + Sync {
    /// Numerical flux across an x-normal interface.
    fn flux_x(
        &self,
        left: &cca_hydro_solver::Prim,
        right: &cca_hydro_solver::Prim,
        gamma: f64,
    ) -> [f64; 5];
}

// ---------------------------------------------------------------------
// Vector (ODE) ports — the Implicit Integration subsystem
// ---------------------------------------------------------------------

/// A vector-valued right-hand side `dy/dt = f(t, y)`.
pub trait OdeRhsPort {
    /// State dimension.
    fn dim(&self) -> usize;
    /// Evaluate the RHS.
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
    /// RHS evaluations so far (the paper's NFE).
    fn nfe(&self) -> usize;
}

/// Statistics of one implicit integration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrateStats {
    /// Accepted steps.
    pub steps: usize,
    /// RHS evaluations.
    pub rhs_evals: usize,
    /// Jacobian evaluations.
    pub jacobians: usize,
}

/// A stiff/non-stiff vector integrator (the `CvodeComponent` port).
pub trait OdeIntegratorPort {
    /// Advance `y` from `t0` to `t1` using `rhs`.
    fn integrate(
        &self,
        rhs: Rc<dyn OdeRhsPort>,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<IntegrateStats, String>;

    /// Set relative/absolute tolerances.
    fn set_tolerances(&self, rtol: f64, atol: f64);

    /// Force the initial step size (CVODE's `CVodeSetInitStep`); `None`
    /// restores the heuristic default.
    fn set_initial_step(&self, h: Option<f64>);

    /// A `Send + Sync` snapshot of this integrator's current
    /// configuration, for worker-thread cell sweeps. `None` (the
    /// default) keeps the integration on the framework thread.
    fn cell_kernel(&self) -> Option<Arc<dyn OdeCellKernel>> {
        None
    }
}

/// Chemical source terms and thermodynamic queries — the face of
/// `ThermoChemistry`. Units: SI-kmol (see `cca-chem`).
pub trait ChemistrySourcePort {
    /// Number of species.
    fn n_species(&self) -> usize;
    /// Species molar masses, kg/kmol.
    fn molar_mass(&self, i: usize) -> f64;
    /// Net molar production rates from `T` and concentrations.
    fn production_rates(&self, t: f64, c: &[f64], wdot: &mut [f64]);
    /// Molar enthalpy of species `i` at `T`, J/kmol.
    fn h_molar(&self, i: usize, t: f64) -> f64;
    /// Molar internal energy of species `i` at `T`, J/kmol.
    fn u_molar(&self, i: usize, t: f64) -> f64;
    /// All molar masses at once (CHEMKIN `CKWT` shape). Hot paths call
    /// this once and cache — the values are constants.
    fn molar_masses(&self, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.molar_mass(i);
        }
    }
    /// All molar enthalpies at `T` (CHEMKIN `CKHML` shape): one port call
    /// per evaluation instead of one per species.
    fn enthalpies_molar(&self, t: f64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.h_molar(i, t);
        }
    }
    /// All molar internal energies at `T` (CHEMKIN `CKUML` shape).
    fn internal_energies_molar(&self, t: f64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.u_molar(i, t);
        }
    }
    /// Mixture mass heat capacity cp, J/(kg·K).
    fn cp_mass(&self, t: f64, y: &[f64]) -> f64;
    /// Mixture mass heat capacity cv, J/(kg·K).
    fn cv_mass(&self, t: f64, y: &[f64]) -> f64;
    /// Mean molar mass, kg/kmol.
    fn mean_molar_mass(&self, y: &[f64]) -> f64;
    /// Ideal-gas density at `(T, P, Y)`.
    fn density(&self, t: f64, p: f64, y: &[f64]) -> f64;
    /// Number of production-rate calls so far (Table 4's NFE per cell).
    fn calls(&self) -> usize;
    /// A `Send + Sync` snapshot of the gas-phase evaluations behind this
    /// port, sharing its call counter. `None` (the default) disables
    /// worker-thread chemistry for assemblies using this port.
    fn kernel(&self) -> Option<Arc<dyn ChemistryKernel>> {
        None
    }
}

/// The 0D rigid-vessel pressure closure (the `dPdt` component).
pub trait DpdtPort {
    /// `dP/dt` from the current temperature, its rate, the mass-fraction
    /// rates, and the (fixed) density.
    fn dpdt(&self, t_gas: f64, dtdt: f64, y: &[f64], dydt: &[f64], rho: f64) -> f64;
}

// ---------------------------------------------------------------------
// Mesh / Data Object ports — the SAMR subsystem
// ---------------------------------------------------------------------

/// Geometry and hierarchy management (the `MeshPort` of reference \[4\] in the paper).
pub trait MeshPort {
    /// (Re)create the hierarchy: a level-0 box of `nx × ny` cells over
    /// physical size `lx × ly`, refinement `ratio`.
    fn create(&self, nx: i64, ny: i64, lx: f64, ly: f64, ratio: i64);
    /// Number of levels.
    fn n_levels(&self) -> usize;
    /// Cell sizes of a level.
    fn dx(&self, level: usize) -> [f64; 2];
    /// The level's physical index-space domain.
    fn level_domain(&self, level: usize) -> IntBox;
    /// `(id, interior, owner)` of every patch of a level.
    fn patches(&self, level: usize) -> Vec<(usize, IntBox, usize)>;
    /// Cell-center coordinates.
    fn cell_center(&self, level: usize, i: i64, j: i64) -> [f64; 2];
    /// Rebuild `level + 1` from flags on `level`, moving the data of every
    /// registered Data Object. Returns new patch ids.
    fn regrid(&self, level: usize, flags: &[(i64, i64)]) -> Vec<usize>;
    /// Re-balance patch ownership over `nranks` (modeled decomposition).
    fn load_balance(&self, nranks: usize) -> Vec<Vec<f64>>;
    /// Is `(i, j)` of `level` covered by a finer patch? (Used to count
    /// each physical region once in diagnostics.)
    fn covered_by_finer(&self, level: usize, i: i64, j: i64) -> bool;
}

/// Data Object manipulation (port type (b)).
pub trait DataPort {
    /// Declare a Data Object on the current hierarchy.
    fn create_data_object(&self, name: &str, nvars: usize, nghost: i64);
    /// Number of variables of a Data Object.
    fn nvars(&self, name: &str) -> usize;
    /// Run `f` with mutable access to one patch's data.
    fn with_patch_mut(
        &self,
        name: &str,
        level: usize,
        id: usize,
        f: &mut dyn FnMut(&mut PatchData),
    );
    /// Run `f` with shared access to one patch's data.
    fn with_patch(&self, name: &str, level: usize, id: usize, f: &mut dyn FnMut(&PatchData));
    /// Fill ghosts of every patch of `level`: sibling copies, coarse-fine
    /// interpolation, then the physical boundary rule.
    fn fill_ghosts(
        &self,
        name: &str,
        level: usize,
        bc: &dyn Fn(cca_mesh::bc::Side, usize) -> BcKind,
    );
    /// Conservatively restrict fine data onto coarse parents, finest
    /// level downward.
    fn restrict_down(&self, name: &str);
    /// Copy `src` into `dst` (same shape) on all levels.
    fn copy_object(&self, src: &str, dst: &str);
    /// `dst += s * src` over all interiors (integrator axpy).
    fn axpy(&self, dst: &str, s: f64, src: &str);
    /// Detach the listed patches of `level` as owned [`PatchData`]
    /// values, in `ids` order — the disjoint patch views the parallel
    /// executor hands to worker threads. Until the matching
    /// [`DataPort::put_level_patches`], reads of those patches through
    /// this port see unspecified (implementation-defined) contents.
    ///
    /// The default clones patch by patch, correct for any
    /// implementation; `GrACEComponent` overrides it with a true move
    /// out of the Data Object (no copy).
    fn take_level_patches(&self, name: &str, level: usize, ids: &[usize]) -> Vec<PatchData> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let mut taken = None;
            self.with_patch(name, level, id, &mut |pd| taken = Some(pd.clone()));
            out.push(taken.expect("with_patch always invokes the closure"));
        }
        out
    }
    /// Re-attach patches detached by [`DataPort::take_level_patches`]
    /// (same `ids`, same order).
    fn put_level_patches(&self, name: &str, level: usize, ids: &[usize], patches: Vec<PatchData>) {
        assert_eq!(
            ids.len(),
            patches.len(),
            "put_level_patches id/patch mismatch"
        );
        for (&id, pd) in ids.iter().zip(patches) {
            let mut slot = Some(pd);
            self.with_patch_mut(name, level, id, &mut |dst| {
                *dst = slot.take().expect("closure runs once per patch");
            });
        }
    }
}

// ---------------------------------------------------------------------
// Integration subsystem ports
// ---------------------------------------------------------------------

/// RHS evaluation one patch at a time (port type (d)).
pub trait PatchRhsPort {
    /// Write the RHS of `state` into `rhs` (interiors only); ghosts of
    /// `state` are filled before the call. `dx`, `dy` are the patch's
    /// level cell sizes.
    fn eval_patch(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, t: f64);
    /// Number of patch evaluations performed.
    fn evals(&self) -> usize;
    /// A `Send + Sync` snapshot of the evaluation behind this port,
    /// runnable concurrently on disjoint patches. Shares the `evals`
    /// counter. `None` (the default) keeps RHS loops serial.
    fn patch_kernel(&self) -> Option<Arc<dyn PatchKernel>> {
        None
    }
}

/// Physical boundary rule, applied patch by patch (the paper's Boundary
/// Condition subsystem granularity).
pub trait BoundaryConditionPort {
    /// The ghost-fill rule for `(side, var)`.
    fn rule(&self, side: cca_mesh::bc::Side, var: usize) -> BcKind;
}

/// Estimate of the largest eigenvalue the integrator will encounter
/// (spectral radius for RKC; max signal speed for the CFL of RK2).
pub trait EigenEstimatePort {
    /// Estimate over the whole hierarchy for Data Object `name`.
    fn estimate(&self, name: &str) -> f64;
}

/// A time integrator acting on Data Objects in a synchronized manner
/// (port type (c)).
pub trait TimeIntegratorPort {
    /// Advance Data Object `state` from `t` by up to `dt_max`; returns the
    /// dt actually taken (stability-limited schemes may take less).
    fn advance(&self, state: &str, t: f64, dt_max: f64) -> Result<f64, String>;
}

/// The implicit-subsystem adaptor (`ImplicitIntegrator`): advance the
/// point chemistry of every cell of every patch by `dt`.
pub trait ChemistryAdvancePort {
    /// Advance chemistry in `state` (layout `{T, Y1..Y_{N-1}}` per cell)
    /// by `dt` at fixed pressure `p`. Returns total BDF steps.
    fn advance_chemistry(&self, state: &str, dt: f64, p: f64) -> Result<usize, String>;
}

// ---------------------------------------------------------------------
// Transport, hydro, diagnostics
// ---------------------------------------------------------------------

/// Mixture-averaged transport properties (the `DRFMComponent` port).
pub trait TransportPort {
    /// Mixture-averaged diffusivities from `T`, `P`, mole fractions.
    fn mix_diffusivities(&self, t: f64, p: f64, x: &[f64], out: &mut [f64]);
    /// Mixture thermal conductivity.
    fn mix_conductivity(&self, t: f64, x: &[f64]) -> f64;
    /// Upper bound over species diffusivities (RKC spectral radius input).
    fn max_diffusivity(&self, t: f64, p: f64) -> f64;
    /// A `Send + Sync` snapshot of the property evaluations behind this
    /// port. `None` (the default) keeps transport on the framework thread.
    fn kernel(&self) -> Option<Arc<dyn TransportKernel>> {
        None
    }
}

/// Slope-limited interface state construction (the `States` component).
pub trait StatesPort {
    /// Left/right primitive states at the interface between cells `c` and
    /// `d`, with outer neighbours `b`, `e` (conserved inputs).
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (cca_hydro_solver::Prim, cca_hydro_solver::Prim);

    /// A `Send + Sync` snapshot of the reconstruction (current limiter
    /// captured). `None` (the default) keeps reconstruction serial.
    fn kernel(&self) -> Option<Arc<dyn StatesKernel>> {
        None
    }
}

/// An interface flux (the `GodunovFlux` / `EFMFlux` components).
pub trait FluxPort {
    /// Numerical flux across an x-normal interface.
    fn flux_x(
        &self,
        left: &cca_hydro_solver::Prim,
        right: &cca_hydro_solver::Prim,
        gamma: f64,
    ) -> [f64; 5];
    /// Scheme name (for arena dumps and reports).
    fn scheme_name(&self) -> &'static str;
    /// A `Send + Sync` snapshot of the flux evaluation. `None` (the
    /// default) keeps flux evaluation serial.
    fn kernel(&self) -> Option<Arc<dyn FluxKernel>> {
        None
    }
}

/// Initial condition application (the Initial Condition subsystem).
pub trait InitialConditionPort {
    /// Impose the IC on Data Object `state` across the current hierarchy
    /// (all levels, interiors).
    fn apply(&self, state: &str);
}

/// Prolong/restrict between specific levels (the `ProlongRestrict`
/// component of the shock assembly).
pub trait InterpolationPort {
    /// Initialize `level`'s patches of `name` from `level − 1` (bilinear).
    fn prolong_level(&self, name: &str, level: usize);
    /// Average `level`'s patches of `name` onto `level − 1`.
    fn restrict_level(&self, name: &str, level: usize);
}

/// Field statistics & diagnostics (the `StatisticsComponent`).
pub trait StatisticsPort {
    /// Global max of a variable over the hierarchy (finest data wins).
    fn max_var(&self, name: &str, var: usize) -> f64;
    /// Global min.
    fn min_var(&self, name: &str, var: usize) -> f64;
    /// Interfacial circulation Γ over cells with ζ in the window,
    /// counting each physical region at its finest resolution.
    fn circulation(&self, name: &str, zeta_lo: f64, zeta_hi: f64) -> f64;
    /// Total of `var` weighted by cell area (conservation checks).
    fn integral(&self, name: &str, var: usize) -> f64;
}

/// Save/restore of the whole SAMR state (hierarchy + all Data Objects) —
/// restart capability for long campaigns (the paper's flame run was 58
/// hours; GrACE shipped the equivalent facility).
pub trait CheckpointPort {
    /// Write the current state to `path`.
    fn save(&self, path: &str) -> Result<(), String>;
    /// Replace the current state with the checkpoint at `path`.
    fn restore(&self, path: &str) -> Result<(), String>;
    /// The checkpoint as in-memory bytes (same format as [`Self::save`])
    /// — what a serving tier stores in a result cache instead of touching
    /// the filesystem. Default: unsupported.
    fn save_bytes(&self) -> Result<Vec<u8>, String> {
        Err("in-memory checkpointing not supported by this component".into())
    }
    /// Replace the current state with an in-memory checkpoint produced by
    /// [`Self::save_bytes`]. Default: unsupported.
    fn restore_bytes(&self, _bytes: &[u8]) -> Result<(), String> {
        Err("in-memory checkpointing not supported by this component".into())
    }
}

/// Pluggable patch-to-processor assignment — the interface the paper's
/// future-work item (1) calls for ("an effort to define interfaces to
/// load-balancers prior to testing a number of them"). `GrACEComponent`
/// declares a uses-port of this type; which balancer runs is an assembly
/// (script) decision.
pub trait LoadBalancerPort {
    /// Owner rank of each work item (patch), preserving input order.
    fn assign(&self, work: &[f64], nranks: usize) -> Vec<usize>;
    /// Balancer name for reports.
    fn balancer_name(&self) -> &'static str;
}

/// Read-back of a driver's solution vector (examples and tests).
pub trait SolutionPort {
    /// The stored state vector.
    fn solution(&self) -> Vec<f64>;
    /// The time the state corresponds to.
    fn time(&self) -> f64;
}

/// Error estimation + regrid trigger (the `ErrorEstAndRegrid` component).
pub trait RegridPort {
    /// Flag cells of `level` by the gradient detector on `var` of `state`
    /// and rebuild level+1. Returns the number of flagged cells.
    fn estimate_and_regrid(&self, state: &str, level: usize, var: usize, threshold: f64) -> usize;
}
