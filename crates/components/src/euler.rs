//! The Euler-solver component family of the shock assembly (Table 3):
//! `States`, `GodunovFlux`, `EFMFlux`, `InviscidFlux` (the adaptor that
//! "supplies the right-hand-side of the equation, patch-by-patch"),
//! `CharacteristicQuantities`, and the `GasProperties` database.

use crate::ports::{
    DataPort, EigenEstimatePort, FluxKernel, FluxPort, MeshPort, PatchKernel, PatchRhsPort,
    StatesKernel, StatesPort,
};
use cca_core::{Component, ParameterPort, ParameterStore, Services};
use cca_hydro_solver::efm::EfmFlux;
use cca_hydro_solver::muscl::{interface_states, max_wave_speed};
use cca_hydro_solver::riemann::GodunovFlux;
use cca_hydro_solver::{FluxScheme, Limiter, Prim, NVARS};
use cca_mesh::data::PatchData;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// GasProperties (Database)
// ---------------------------------------------------------------------

/// The `GasProperties` database: γ and friends, retrieved "using a
/// key-value pair mechanism".
#[derive(Default)]
pub struct GasProperties;

impl Component for GasProperties {
    fn set_services(&mut self, s: Services) {
        let store = Rc::new(ParameterStore::new());
        store.set_parameter("gamma", 1.4);
        store.set_parameter("density_ratio", 3.0);
        s.add_provides_port::<Rc<dyn ParameterPort>>("gas", store);
    }
}

// ---------------------------------------------------------------------
// States
// ---------------------------------------------------------------------

struct StatesInner {
    limiter: Cell<Limiter>,
}

/// Limiter snapshot — the `Send + Sync` face of `States`.
struct StatesSnapshot {
    limiter: Limiter,
}

impl StatesKernel for StatesSnapshot {
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (Prim, Prim) {
        interface_states(b, c, d, e, gamma, self.limiter)
    }
}

impl StatesPort for StatesInner {
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (Prim, Prim) {
        interface_states(b, c, d, e, gamma, self.limiter.get())
    }

    fn kernel(&self) -> Option<Arc<dyn StatesKernel>> {
        Some(Arc::new(StatesSnapshot {
            limiter: self.limiter.get(),
        }))
    }
}

impl ParameterPort for StatesInner {
    fn set_parameter(&self, key: &str, value: f64) {
        if key == "limiter" {
            self.limiter.set(match value as i64 {
                0 => Limiter::FirstOrder,
                1 => Limiter::MinMod,
                2 => Limiter::VanLeer,
                3 => Limiter::MonotonizedCentral,
                4 => Limiter::Superbee,
                _ => Limiter::None,
            });
        }
    }

    fn get_parameter(&self, key: &str) -> Option<f64> {
        (key == "limiter").then(|| match self.limiter.get() {
            Limiter::FirstOrder => 0.0,
            Limiter::MinMod => 1.0,
            Limiter::VanLeer => 2.0,
            Limiter::MonotonizedCentral => 3.0,
            Limiter::Superbee => 4.0,
            Limiter::None => 5.0,
        })
    }
}

/// The `States` component: slope-limited interface reconstruction.
/// Provides `states` (StatesPort) and `config` (ParameterPort `limiter`:
/// 0 = first-order, 1 = minmod, 2 = van Leer, 3 = MC, 4 = superbee).
#[derive(Default)]
pub struct StatesComponent;

impl Component for StatesComponent {
    fn set_services(&mut self, s: Services) {
        let inner = Rc::new(StatesInner {
            limiter: Cell::new(Limiter::VanLeer),
        });
        s.add_provides_port::<Rc<dyn StatesPort>>("states", inner.clone());
        s.add_provides_port::<Rc<dyn ParameterPort>>("config", inner);
    }
}

// ---------------------------------------------------------------------
// Flux components
// ---------------------------------------------------------------------

struct FluxWrap<S: FluxScheme>(S);

impl<S: FluxScheme + Send + Sync> FluxKernel for FluxWrap<S> {
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; 5] {
        self.0.flux_x(left, right, gamma)
    }
}

impl<S: FluxScheme + Clone + Send + Sync + 'static> FluxPort for FluxWrap<S> {
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; 5] {
        self.0.flux_x(left, right, gamma)
    }

    fn scheme_name(&self) -> &'static str {
        self.0.name()
    }

    fn kernel(&self) -> Option<Arc<dyn FluxKernel>> {
        // The flux schemes are stateless value types; the kernel is a
        // clone of the same wrapper.
        Some(Arc::new(FluxWrap(self.0.clone())))
    }
}

/// The `GodunovFlux` component (exact Riemann solution at the interface).
#[derive(Default)]
pub struct GodunovFluxComponent;

impl Component for GodunovFluxComponent {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn FluxPort>>("flux", Rc::new(FluxWrap(GodunovFlux)));
    }
}

/// The `EFMFlux` component (Pullin's gas-kinetic flux; "a more diffusive
/// gas-kinetic scheme" that stays stable for strong shocks).
#[derive(Default)]
pub struct EfmFluxComponent;

impl Component for EfmFluxComponent {
    fn set_services(&mut self, s: Services) {
        s.add_provides_port::<Rc<dyn FluxPort>>("flux", Rc::new(FluxWrap(EfmFlux)));
    }
}

// ---------------------------------------------------------------------
// InviscidFlux (adaptor; PatchRhsPort)
// ---------------------------------------------------------------------

struct InviscidInner {
    services: Services,
    evals: Arc<AtomicUsize>,
}

impl InviscidInner {
    fn gamma(&self) -> f64 {
        self.services
            .get_port::<Rc<dyn ParameterPort>>("gas")
            .expect("InviscidFlux needs the GasProperties port")
            .get_parameter("gamma")
            .unwrap_or(1.4)
    }
}

fn load(pd: &PatchData, i: i64, j: i64) -> [f64; NVARS] {
    let mut u = [0.0; NVARS];
    for (var, uk) in u.iter_mut().enumerate() {
        *uk = pd.get(var, i, j);
    }
    u
}

fn swap_uv(w: &Prim) -> Prim {
    Prim {
        rho: w.rho,
        u: w.v,
        v: w.u,
        p: w.p,
        zeta: w.zeta,
    }
}

/// The reconstruction/flux surface of the sweep, abstracted over port
/// dispatch vs kernel dispatch — one copy of the arithmetic.
trait EulerOps {
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (Prim, Prim);
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; 5];
}

struct PortOps<'a> {
    states: &'a Rc<dyn StatesPort>,
    flux: &'a Rc<dyn FluxPort>,
}

impl EulerOps for PortOps<'_> {
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (Prim, Prim) {
        self.states.reconstruct(b, c, d, e, gamma)
    }
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; 5] {
        self.flux.flux_x(left, right, gamma)
    }
}

struct KernelOps {
    states: Arc<dyn StatesKernel>,
    flux: Arc<dyn FluxKernel>,
}

impl EulerOps for KernelOps {
    fn reconstruct(
        &self,
        b: &[f64; 5],
        c: &[f64; 5],
        d: &[f64; 5],
        e: &[f64; 5],
        gamma: f64,
    ) -> (Prim, Prim) {
        self.states.reconstruct(b, c, d, e, gamma)
    }
    fn flux_x(&self, left: &Prim, right: &Prim, gamma: f64) -> [f64; 5] {
        self.flux.flux_x(left, right, gamma)
    }
}

/// MUSCL x/y sweeps over one patch — the single copy of the sweep behind
/// both the port and the kernel face.
fn inviscid_rhs<O: EulerOps>(
    ops: &O,
    gamma: f64,
    state: &PatchData,
    rhs: &mut PatchData,
    dx: f64,
    dy: f64,
) {
    assert!(state.nghost >= 2, "MUSCL needs two ghost layers");
    let interior = state.interior;
    for var in 0..NVARS {
        rhs.fill_var(var, 0.0);
    }
    // x sweep — every interface through the States/Flux pair.
    for j in interior.lo[1]..=interior.hi[1] {
        for i in interior.lo[0]..=interior.hi[0] + 1 {
            let (wl, wr) = ops.reconstruct(
                &load(state, i - 2, j),
                &load(state, i - 1, j),
                &load(state, i, j),
                &load(state, i + 1, j),
                gamma,
            );
            let f = ops.flux_x(&wl, &wr, gamma);
            for (var, &fv) in f.iter().enumerate() {
                if interior.contains(i - 1, j) {
                    rhs.add(var, i - 1, j, -fv / dx);
                }
                if interior.contains(i, j) {
                    rhs.add(var, i, j, fv / dx);
                }
            }
        }
    }
    // y sweep with rotated states.
    for j in interior.lo[1]..=interior.hi[1] + 1 {
        for i in interior.lo[0]..=interior.hi[0] {
            let (wl, wr) = ops.reconstruct(
                &load(state, i, j - 2),
                &load(state, i, j - 1),
                &load(state, i, j),
                &load(state, i, j + 1),
                gamma,
            );
            let fr = ops.flux_x(&swap_uv(&wl), &swap_uv(&wr), gamma);
            let f = [fr[0], fr[2], fr[1], fr[3], fr[4]];
            for (var, &fv) in f.iter().enumerate() {
                if interior.contains(i, j - 1) {
                    rhs.add(var, i, j - 1, -fv / dy);
                }
                if interior.contains(i, j) {
                    rhs.add(var, i, j, fv / dy);
                }
            }
        }
    }
}

/// Worker-thread face of `InviscidFlux`: reconstruction + flux snapshots
/// and γ captured when the kernel is handed out.
struct EulerPatchKernel {
    ops: KernelOps,
    gamma: f64,
    evals: Arc<AtomicUsize>,
}

impl PatchKernel for EulerPatchKernel {
    fn eval(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, _t: f64) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        inviscid_rhs(&self.ops, self.gamma, state, rhs, dx, dy);
    }

    fn label(&self) -> &'static str {
        "InviscidFlux.patch-rhs"
    }
}

impl PatchRhsPort for InviscidInner {
    fn eval_patch(&self, state: &PatchData, rhs: &mut PatchData, dx: f64, dy: f64, t: f64) {
        let _scope = self.services.profiler().scope("InviscidFlux.patch-rhs");
        self.services
            .profiler()
            .add_cells("InviscidFlux.patch-rhs", state.interior.count() as u64);
        // One code path: if States and the flux component can snapshot,
        // the serial call runs the very kernel the executor runs.
        if let Some(k) = self.patch_kernel() {
            k.eval(state, rhs, dx, dy, t);
            return;
        }
        self.evals.fetch_add(1, Ordering::Relaxed);
        let states = self
            .services
            .get_port::<Rc<dyn StatesPort>>("states")
            .expect("InviscidFlux needs the States port");
        let flux = self
            .services
            .get_port::<Rc<dyn FluxPort>>("flux")
            .expect("InviscidFlux needs a flux port");
        let gamma = self.gamma();
        inviscid_rhs(
            &PortOps {
                states: &states,
                flux: &flux,
            },
            gamma,
            state,
            rhs,
            dx,
            dy,
        );
    }

    fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    fn patch_kernel(&self) -> Option<Arc<dyn PatchKernel>> {
        // Snapshot afresh on every request: the limiter and γ are live
        // parameters, and a kernel must capture their current values.
        let states = self
            .services
            .get_port::<Rc<dyn StatesPort>>("states")
            .ok()?;
        let flux = self.services.get_port::<Rc<dyn FluxPort>>("flux").ok()?;
        Some(Arc::new(EulerPatchKernel {
            ops: KernelOps {
                states: states.kernel()?,
                flux: flux.kernel()?,
            },
            gamma: self.gamma(),
            evals: self.evals.clone(),
        }))
    }
}

/// The `InviscidFlux` adaptor: provides `patch-rhs`; uses `states`,
/// `flux`, `gas`.
#[derive(Default)]
pub struct InviscidFluxComponent;

impl Component for InviscidFluxComponent {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn StatesPort>>("states");
        s.register_uses_port::<Rc<dyn FluxPort>>("flux");
        s.register_uses_port::<Rc<dyn ParameterPort>>("gas");
        s.add_provides_port::<Rc<dyn PatchRhsPort>>(
            "patch-rhs",
            Rc::new(InviscidInner {
                services: s.clone(),
                evals: Arc::new(AtomicUsize::new(0)),
            }),
        );
    }
}

// ---------------------------------------------------------------------
// CharacteristicQuantities
// ---------------------------------------------------------------------

struct CharInner {
    services: Services,
}

impl EigenEstimatePort for CharInner {
    /// Largest `(|u|+c)/dx + (|v|+c)/dy` over the hierarchy — the inverse
    /// of the stable time step up to the CFL number.
    fn estimate(&self, name: &str) -> f64 {
        let mesh = self
            .services
            .get_port::<Rc<dyn MeshPort>>("mesh")
            .expect("CharacteristicQuantities needs the mesh port");
        let data = self
            .services
            .get_port::<Rc<dyn DataPort>>("data")
            .expect("CharacteristicQuantities needs the data port");
        let gamma = self
            .services
            .get_port::<Rc<dyn ParameterPort>>("gas")
            .expect("CharacteristicQuantities needs the GasProperties port")
            .get_parameter("gamma")
            .unwrap_or(1.4);
        let mut m: f64 = 0.0;
        for level in 0..mesh.n_levels() {
            let dx = mesh.dx(level);
            for (id, _, _) in mesh.patches(level) {
                data.with_patch(name, level, id, &mut |pd| {
                    m = m.max(max_wave_speed(pd, gamma, dx[0], dx[1]));
                });
            }
        }
        m
    }
}

/// The `CharacteristicQuantities` component: provides `eigen-estimate`;
/// uses `mesh`, `data`, `gas`.
#[derive(Default)]
pub struct CharacteristicQuantities;

impl Component for CharacteristicQuantities {
    fn set_services(&mut self, s: Services) {
        s.register_uses_port::<Rc<dyn MeshPort>>("mesh");
        s.register_uses_port::<Rc<dyn DataPort>>("data");
        s.register_uses_port::<Rc<dyn ParameterPort>>("gas");
        s.add_provides_port::<Rc<dyn EigenEstimatePort>>(
            "eigen-estimate",
            Rc::new(CharInner {
                services: s.clone(),
            }),
        );
    }
}
