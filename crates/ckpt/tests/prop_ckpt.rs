//! Property tests of the checkpoint-set layer: serialization is a
//! bit-exact roundtrip for *arbitrary* two-level hierarchies and field
//! values, and a cohort of any size P can snapshot while a cohort of any
//! other size P' restores the identical bits.

use std::sync::Arc;

use cca_analyze::distplan::PlanBuilder;
use cca_ckpt::{restore, snapshot, CheckpointSet, CkptMeta};
use cca_comm::{scmd, ClusterModel};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::DataObject;
use cca_mesh::dist::DistributedHierarchy;
use cca_mesh::hierarchy::{Hierarchy, Patch};
use proptest::prelude::*;

const NVARS: usize = 2;
const NGHOST: i64 = 1;

fn work(_: &Hierarchy, _: usize, p: &Patch) -> f64 {
    p.interior.count() as f64
}

/// Candidate fine boxes (level-1 index space), each nested in the 16×16
/// level-0 domain; `mask` selects a disjoint subset.
const FINE: [([i64; 2], [i64; 2]); 4] = [
    ([2, 2], [9, 7]),
    ([14, 2], [21, 9]),
    ([4, 16], [13, 23]),
    ([20, 18], [29, 27]),
];

/// An arbitrary two-level hierarchy: four level-0 tiles, a mask-selected
/// subset of fine patches, and a watermark bump as after regrid churn.
fn hier_for(mask: usize, bump: usize) -> Hierarchy {
    let mut h = Hierarchy::new(IntBox::sized(16, 16), [0.0, 0.0], [0.5; 2], 2);
    h.set_level_boxes(
        0,
        &[
            IntBox::new([0, 0], [7, 7]),
            IntBox::new([8, 0], [15, 7]),
            IntBox::new([0, 8], [7, 15]),
            IntBox::new([8, 8], [15, 15]),
        ],
    );
    let boxes: Vec<IntBox> = FINE
        .iter()
        .enumerate()
        .filter(|(k, _)| mask & (1 << k) != 0)
        .map(|(_, &(lo, hi))| IntBox::new(lo, hi))
        .collect();
    h.set_level_boxes(1, &boxes);
    h.reserve_ids(h.next_id_watermark() + bump);
    h
}

/// Deterministic per-cell value: a pure function of identity and seed.
fn cell_value(seed: u32, level: usize, id: usize, var: usize, i: i64, j: i64) -> f64 {
    let h = seed as f64 + 31.0 * id as f64 + 7.0 * var as f64 + 131.0 * level as f64;
    (h + 0.001 * (i * 37 + j * 101) as f64) * 1.000_000_1
}

/// Every patch stored and seeded locally: the ground truth.
fn reference(hier: &Hierarchy, seed: u32) -> DataObject {
    let mut dobj = DataObject::new(NVARS, NGHOST);
    for (level, l) in hier.levels.iter().enumerate() {
        for p in &l.patches {
            dobj.allocate(level, p.id, p.interior);
            let pd = dobj.patch_mut(level, p.id).unwrap();
            for (i, j) in pd.total_box().cells() {
                for v in 0..NVARS {
                    pd.set(v, i, j, cell_value(seed, level, p.id, v, i, j));
                }
            }
        }
    }
    dobj
}

fn meta(seed: u32) -> CkptMeta {
    CkptMeta {
        step: 3,
        config_hash: seed as u64 ^ 0xc0ff_ee00,
        nvars: NVARS,
        nghost: NGHOST,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// to_bytes/from_bytes is byte-stable and bit-exact for arbitrary
    /// two-level hierarchies, field values, and watermarks.
    #[test]
    fn set_serialization_roundtrips_bit_exactly(
        mask in 0usize..16,
        bump in 0usize..5,
        seed in 0usize..10_000,
    ) {
        let seed = seed as u32;
        let hier = hier_for(mask, bump);
        let dobj = reference(&hier, seed);
        let parts = vec![("driver".to_string(), seed.to_le_bytes().to_vec())];
        let set = CheckpointSet::from_local(7, meta(seed), &hier, &dobj, parts).unwrap();
        let bytes = set.to_bytes();
        prop_assert_eq!(&bytes, &set.to_bytes());
        let back = CheckpointSet::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bytes(), bytes);
        let (rh, rd) = back.restore_local().unwrap();
        prop_assert_eq!(rh.next_id_watermark(), hier.next_id_watermark());
        for (level, l) in hier.levels.iter().enumerate() {
            for p in &l.patches {
                let got = rd.patch(level, p.id).unwrap();
                let want = dobj.patch(level, p.id).unwrap();
                let (a, b) = (got.pack(&got.total_box()), want.pack(&want.total_box()));
                prop_assert_eq!(a.len(), b.len());
                prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    /// A snapshot written by P ranks restores bit-exactly on P' ranks,
    /// for random cohort sizes and hierarchies.
    #[test]
    fn p_to_p_prime_restart_is_bit_exact(
        mask in 0usize..16,
        seed in 0usize..10_000,
        p in 1usize..7,
        p_prime in 1usize..7,
    ) {
        let seed = seed as u32;
        let mut dh = DistributedHierarchy::new(hier_for(mask, 2), p);
        dh.assign_owners(work, 1.5);
        let expect = reference(&dh.hier, seed);
        let dh = Arc::new(dh);
        // P-rank cohort takes one coordinated snapshot.
        let results = scmd::run(p, ClusterModel::zero(), {
            let dh = Arc::clone(&dh);
            move |comm| {
                let mut dobj = DataObject::new(NVARS, NGHOST);
                dh.allocate_owned(&mut dobj, comm.rank());
                for (level, l) in dh.hier.levels.iter().enumerate() {
                    for patch in &l.patches {
                        if patch.owner == comm.rank() {
                            let pd = dobj.patch_mut(level, patch.id).unwrap();
                            for (i, j) in pd.total_box().cells() {
                                for v in 0..NVARS {
                                    pd.set(v, i, j, cell_value(seed, level, patch.id, v, i, j));
                                }
                            }
                        }
                    }
                }
                let mut plan = PlanBuilder::new(comm.size());
                snapshot(comm, &mut plan, &dh, &dobj, meta(seed), 1, Vec::new(), None)
                    .map(|s| s.to_bytes())
            }
        });
        let bytes = results[0].clone().expect("rank 0 holds the set");
        let set = Arc::new(CheckpointSet::from_bytes(&bytes).unwrap());
        // P'-rank cohort restores and reports every owned patch's bits.
        let out = scmd::run(p_prime, ClusterModel::zero(), {
            let set = Arc::clone(&set);
            move |comm| {
                let mut plan = PlanBuilder::new(comm.size());
                let (dh, dobj) = restore(comm, &mut plan, &set, comm.size(), work, 1.5);
                let mut owned = Vec::new();
                for (level, l) in dh.hier.levels.iter().enumerate() {
                    for patch in &l.patches {
                        if patch.owner == comm.rank() {
                            let pd = dobj.patch(level, patch.id).unwrap();
                            owned.push((level, patch.id, pd.pack(&pd.total_box())));
                        }
                    }
                }
                owned
            }
        });
        let mut seen = 0usize;
        for (level, id, data) in out.into_iter().flatten() {
            let rp = expect.patch(level, id).unwrap();
            let want = rp.pack(&rp.total_box());
            prop_assert_eq!(data.len(), want.len());
            prop_assert!(
                data.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits()),
                "patch ({},{}) diverged for P={} -> P'={}", level, id, p, p_prime
            );
            seen += 1;
        }
        let total: usize = dh.hier.levels.iter().map(|l| l.patches.len()).sum();
        prop_assert_eq!(seen, total);
    }
}
