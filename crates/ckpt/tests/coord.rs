//! Integration tests for the coordinated snapshot/restore protocol:
//! bit-exact roundtrips through a full SCMD cohort, elastic restarts at
//! a different rank count, plan-verified checkpoint traffic, and the
//! "during checkpoint epoch N" poison path for mid-snapshot faults.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cca_analyze::distplan::PlanBuilder;
use cca_ckpt::{restore, snapshot, CheckpointSet, CkptMeta, CkptStore};
use cca_comm::{scmd, ClusterModel};
use cca_mesh::boxes::IntBox;
use cca_mesh::data::{DataObject, PatchData};
use cca_mesh::dist::DistributedHierarchy;
use cca_mesh::hierarchy::{Hierarchy, Patch};

const NVARS: usize = 2;
const NGHOST: i64 = 1;

fn work(_: &Hierarchy, _: usize, p: &Patch) -> f64 {
    p.interior.count() as f64
}

/// A two-level hierarchy with a nonzero id watermark, as after regrids.
fn two_level_hier() -> Hierarchy {
    let mut h = Hierarchy::new(IntBox::sized(16, 8), [0.0, 0.0], [1.0; 2], 2);
    h.set_level_boxes(
        0,
        &[IntBox::new([0, 0], [7, 7]), IntBox::new([8, 0], [15, 7])],
    );
    h.set_level_boxes(
        1,
        &[IntBox::new([2, 2], [9, 5]), IntBox::new([18, 4], [27, 9])],
    );
    h.reserve_ids(11); // destructive regrids left a gap above max(id)
    h
}

/// Deterministic per-cell values, a function of identity alone — ghosts
/// included, so roundtrips must preserve every stored byte.
fn seed(level: usize, id: usize, pd: &mut PatchData) {
    for (i, j) in pd.total_box().cells() {
        for v in 0..NVARS {
            let x = (level as f64 + 1.0) * 0.37 + id as f64 * 1.75 + v as f64 * 0.11;
            pd.set(v, i, j, x * (3 * i - 7 * j) as f64 + 0.625);
        }
    }
}

/// All patches seeded locally: the ground truth every restore must hit.
fn reference(hier: &Hierarchy) -> DataObject {
    let mut dobj = DataObject::new(NVARS, NGHOST);
    for (level, l) in hier.levels.iter().enumerate() {
        for p in &l.patches {
            dobj.allocate(level, p.id, p.interior);
            seed(level, p.id, dobj.patch_mut(level, p.id).unwrap());
        }
    }
    dobj
}

fn meta() -> CkptMeta {
    CkptMeta {
        step: 4,
        config_hash: 0x5eed_cafe,
        nvars: NVARS,
        nghost: NGHOST,
    }
}

/// Run a P-rank cohort through one coordinated snapshot and return the
/// serialized set (from rank 0) plus the verified comm plan's cleanliness.
fn snapshot_at(nranks: usize, epoch: u64) -> Vec<u8> {
    let mut dh = DistributedHierarchy::new(two_level_hier(), nranks);
    dh.assign_owners(work, 1.5);
    let dh = Arc::new(dh);
    let (reports, trace) = scmd::run_reported_traced(nranks, ClusterModel::zero(), move |comm| {
        let mut dobj = DataObject::new(NVARS, NGHOST);
        dh.allocate_owned(&mut dobj, comm.rank());
        for (level, l) in dh.hier.levels.iter().enumerate() {
            for p in &l.patches {
                if p.owner == comm.rank() {
                    seed(level, p.id, dobj.patch_mut(level, p.id).unwrap());
                }
            }
        }
        let mut plan = PlanBuilder::new(comm.size());
        let parts = vec![("driver".to_string(), vec![7u8, 7, 7])];
        let set = snapshot(comm, &mut plan, &dh, &dobj, meta(), epoch, parts, None);
        set.map(|s| (s.to_bytes(), plan.build()))
    });
    let (bytes, plan) = reports[0].result.clone().expect("rank 0 assembles the set");
    let verdict = plan.verify();
    assert!(verdict.is_clean(), "{}", verdict.render("ckpt plan"));
    let conformance = plan.audit(&trace);
    assert!(
        conformance.is_clean(),
        "{}",
        conformance.render("ckpt trace")
    );
    for r in reports.iter().skip(1) {
        assert!(r.result.is_none(), "only rank 0 holds the set");
    }
    bytes
}

/// Restore the set on a P'-rank cohort and check every patch, on whatever
/// rank it landed, against the local ground truth — bit for bit.
fn check_restore_at(bytes: &[u8], nranks: usize) {
    let set = Arc::new(CheckpointSet::from_bytes(bytes).expect("set parses"));
    let expect = reference(&two_level_hier());
    let watermark = set.hier.next_id;
    let out = scmd::run(nranks, ClusterModel::zero(), {
        let set = Arc::clone(&set);
        move |comm| {
            let mut plan = PlanBuilder::new(comm.size());
            let (dh, dobj) = restore(comm, &mut plan, &set, comm.size(), work, 1.5);
            let verdict = plan.build().verify();
            assert!(verdict.is_clean(), "{}", verdict.render("restore plan"));
            assert_eq!(dh.hier.next_id_watermark(), watermark);
            let mut owned = Vec::new();
            for (level, l) in dh.hier.levels.iter().enumerate() {
                for p in &l.patches {
                    if p.owner == comm.rank() {
                        let pd = dobj.patch(level, p.id).unwrap();
                        owned.push((level, p.id, pd.pack(&pd.total_box())));
                    }
                }
            }
            owned
        }
    });
    let mut seen = 0usize;
    for (level, id, data) in out.into_iter().flatten() {
        let rp = expect.patch(level, id).unwrap();
        let want = rp.pack(&rp.total_box());
        assert_eq!(data.len(), want.len());
        assert!(
            data.iter()
                .zip(&want)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "patch ({level},{id}) diverged after restore at P'={nranks}"
        );
        seen += 1;
    }
    let total: usize = two_level_hier()
        .levels
        .iter()
        .map(|l| l.patches.len())
        .sum();
    assert_eq!(seen, total, "every patch restored exactly once");
}

#[test]
fn coordinated_snapshot_roundtrips_bit_identically() {
    let bytes = snapshot_at(3, 1);
    let set = CheckpointSet::from_bytes(&bytes).expect("set parses");
    assert_eq!(set.epoch, 1);
    assert_eq!(set.meta, meta());
    assert_eq!(set.parts, vec![("driver".to_string(), vec![7u8, 7, 7])]);
    assert_eq!(set.to_bytes(), bytes, "serialization is byte-stable");
    // Local restore hits the ground truth exactly.
    let (hier, dobj) = set.restore_local().expect("local restore");
    let expect = reference(&two_level_hier());
    for (level, l) in hier.levels.iter().enumerate() {
        for p in &l.patches {
            let got = dobj.patch(level, p.id).unwrap();
            let want = expect.patch(level, p.id).unwrap();
            let (a, b) = (got.pack(&got.total_box()), want.pack(&want.total_box()));
            assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn elastic_restore_is_bit_identical_at_any_rank_count() {
    let bytes = snapshot_at(4, 1);
    for nranks in [1usize, 2, 4, 6] {
        check_restore_at(&bytes, nranks);
    }
}

#[test]
fn snapshots_from_different_cohort_sizes_are_equivalent() {
    // The manifest and record contents depend only on the hierarchy and
    // field data, never on who owned what — so sets written at different
    // P restore to the same bits.
    let a = snapshot_at(2, 3);
    let b = snapshot_at(5, 3);
    let sa = CheckpointSet::from_bytes(&a).unwrap();
    let sb = CheckpointSet::from_bytes(&b).unwrap();
    assert_eq!(sa.hier.patches, sb.hier.patches);
    assert_eq!(sa.record_index(), sb.record_index());
    check_restore_at(&a, 3);
    check_restore_at(&b, 3);
}

#[test]
fn store_commits_are_atomic_and_monotonic() {
    let store = CkptStore::new();
    assert!(store.is_empty());
    let first = CheckpointSet::from_bytes(&snapshot_at(2, 1)).unwrap();
    let second = CheckpointSet::from_bytes(&snapshot_at(2, 2)).unwrap();
    store.commit(first.clone()).expect("first commit");
    store.commit(second).expect("newer commit");
    assert_eq!(store.len(), 2);
    assert_eq!(store.latest().unwrap().epoch, 2);
    // A stale epoch must never roll the store back.
    let err = store.commit(first).unwrap_err();
    assert!(format!("{err}").contains("not newer"), "{err}");
    // A damaged set never enters the store.
    let mut broken = CheckpointSet::from_bytes(&snapshot_at(2, 9)).unwrap();
    broken.shards.pop();
    assert!(store.commit(broken).is_err());
    assert_eq!(store.latest().unwrap().epoch, 2);
}

#[test]
fn rank_killed_mid_snapshot_names_the_checkpoint_epoch() {
    let mut dh = DistributedHierarchy::new(two_level_hier(), 2);
    dh.assign_owners(work, 1.5);
    let dh = Arc::new(dh);
    let err = catch_unwind(AssertUnwindSafe(|| {
        scmd::run(2, ClusterModel::zero(), move |comm| {
            let mut dobj = DataObject::new(NVARS, NGHOST);
            dh.allocate_owned(&mut dobj, comm.rank());
            for (level, l) in dh.hier.levels.iter().enumerate() {
                for p in &l.patches {
                    if p.owner == comm.rank() {
                        seed(level, p.id, dobj.patch_mut(level, p.id).unwrap());
                    }
                }
            }
            let mut plan = PlanBuilder::new(comm.size());
            snapshot(comm, &mut plan, &dh, &dobj, meta(), 7, Vec::new(), Some(1));
        })
    }))
    .expect_err("the injected fault must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("string panic payload");
    assert!(
        msg.contains("during checkpoint epoch 7"),
        "poison must name the checkpoint epoch: {msg}"
    );
    assert!(msg.contains("injected fault"), "{msg}");
}
