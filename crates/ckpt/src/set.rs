//! The checkpoint-set format: a versioned, checksummed container holding
//! everything a cohort needs to restart **at any rank count** —
//! replicated hierarchy metadata (including the exact next-patch-id
//! watermark), one shard of bit-exact patch records per writing rank, any
//! named component-state blobs, and an RNG-free configuration hash that
//! gates restore against the wrong run.
//!
//! Wire layout (magic `CCKS`, little-endian throughout):
//!
//! ```text
//! magic, version u32,
//! epoch u64, step u64, config_hash u64, nvars u64, nghost i64,
//! hierarchy: domain0 box, origin f64×2, dx0 f64×2, ratio i64,
//!            next-id watermark u64, n_levels u64,
//!            per level: n_patches u64, per patch: id u64, box,
//! n_parts u64,  per part:  name, blob (len-prefixed), blob FNV-1a u64,
//! n_shards u64, per shard: writer u64, n_records u64,
//!                          records (len-prefixed bytes), shard FNV-1a u64,
//! set FNV-1a u64 over every preceding byte
//! ```
//!
//! Patch records inside a shard are the hardened
//! [`cca_mesh::checkpoint::patch_to_bytes`] records (length prefix +
//! per-record checksum), concatenated in `(level, id)` order — the same
//! wire format migration uses, so a restored patch is bit-identical to
//! the one the interrupted run held, ghosts included.

use cca_mesh::boxes::IntBox;
use cca_mesh::checkpoint::{
    fnv1a64, patch_from_bytes, patch_record_len, CheckpointError, FNV1A_INIT,
};
use cca_mesh::data::DataObject;
use cca_mesh::hierarchy::{Hierarchy, Level, Patch};
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"CCKS";
const VERSION: u32 = 1;

/// Checkpoint-set errors: every structural fault is typed, never a panic.
#[derive(Debug)]
pub enum CkptError {
    /// Not a checkpoint set, or a different format version.
    BadHeader(String),
    /// Structurally invalid or checksum-failing payload.
    Corrupt(String),
    /// The set is well-formed but does not belong to this run
    /// (configuration hash or geometry mismatch).
    Incompatible(String),
    /// A patch record inside a shard failed to parse.
    Record(CheckpointError),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadHeader(m) => write!(f, "bad checkpoint-set header: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint set: {m}"),
            CkptError::Incompatible(m) => write!(f, "incompatible checkpoint set: {m}"),
            CkptError::Record(e) => write!(f, "bad patch record in checkpoint set: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<CheckpointError> for CkptError {
    fn from(e: CheckpointError) -> Self {
        CkptError::Record(e)
    }
}

/// Run identity and resume point carried by a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CkptMeta {
    /// First macro step the resumed run must execute (the interrupted run
    /// completed steps `0..step`).
    pub step: u64,
    /// RNG-free hash of the physics-bearing configuration; restore
    /// refuses a set whose hash differs from the resuming run's.
    pub config_hash: u64,
    /// Variables per mesh point of the checkpointed Data Object.
    pub nvars: usize,
    /// Ghost-ring width of the checkpointed Data Object.
    pub nghost: i64,
}

/// Replicated hierarchy metadata as saved: enough to rebuild the exact
/// [`Hierarchy`], including the id counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedHierarchy {
    /// Level-0 domain in index space.
    pub domain0: IntBox,
    /// Physical origin.
    pub origin: [u64; 2],
    /// Level-0 cell sizes (bit patterns, so equality is exact).
    pub dx0: [u64; 2],
    /// Refinement ratio.
    pub ratio: i64,
    /// The exact next-patch-id watermark at checkpoint time (see
    /// [`Hierarchy::next_id_watermark`]) — restoring `max(id) + 1`
    /// instead would let post-restart regrids issue different fresh ids
    /// and silently break bit-identical restart.
    pub next_id: usize,
    /// Per level, per patch: `(id, interior)`. Owners are deliberately
    /// NOT saved — restore replays the LPT assignment at the new rank
    /// count, so two cohorts of different sizes write byte-identical
    /// manifests for the same physical state.
    pub patches: Vec<Vec<(usize, IntBox)>>,
}

impl SavedHierarchy {
    /// Capture the replicated metadata of a live hierarchy.
    pub fn capture(hier: &Hierarchy) -> Self {
        SavedHierarchy {
            domain0: hier.domain0,
            origin: [hier.origin[0].to_bits(), hier.origin[1].to_bits()],
            dx0: [hier.dx0[0].to_bits(), hier.dx0[1].to_bits()],
            ratio: hier.ratio,
            next_id: hier.next_id_watermark(),
            patches: hier
                .levels
                .iter()
                .map(|l| l.patches.iter().map(|p| (p.id, p.interior)).collect())
                .collect(),
        }
    }

    /// Rebuild the exact hierarchy, id watermark included.
    pub fn rebuild(&self) -> Hierarchy {
        let mut hier = Hierarchy::new(
            self.domain0,
            [
                f64::from_bits(self.origin[0]),
                f64::from_bits(self.origin[1]),
            ],
            [f64::from_bits(self.dx0[0]), f64::from_bits(self.dx0[1])],
            self.ratio,
        );
        hier.levels.clear();
        for saved in &self.patches {
            let mut level = Level::default();
            for &(id, interior) in saved {
                level.patches.push(Patch {
                    id,
                    interior,
                    owner: 0,
                });
            }
            hier.levels.push(level);
        }
        hier.reserve_ids(self.next_id);
        hier
    }

    /// All `(level, id, interior)` triples in `(level, id)` order.
    fn sorted_patches(&self) -> Vec<(usize, usize, IntBox)> {
        let mut out = Vec::new();
        for (level, saved) in self.patches.iter().enumerate() {
            for &(id, interior) in saved {
                out.push((level, id, interior));
            }
        }
        out.sort_unstable_by_key(|&(level, id, _)| (level, id));
        out
    }
}

/// One rank's worth of patch records: concatenated hardened
/// `patch_to_bytes` records in `(level, id)` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Rank that wrote the shard in the interrupted run.
    pub writer: usize,
    /// Number of records in `records`.
    pub n_records: u64,
    /// The concatenated records.
    pub records: Vec<u8>,
}

/// One complete coordinated checkpoint: manifest + shards + component
/// state. Assembled on rank 0 at a macro-step barrier, committed to a
/// [`crate::store::CkptStore`] only once whole — a rank that dies
/// mid-snapshot can never leave a half-written set behind.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    /// Monotonic checkpoint epoch within the run (1-based).
    pub epoch: u64,
    /// Run identity and resume point.
    pub meta: CkptMeta,
    /// Replicated hierarchy metadata.
    pub hier: SavedHierarchy,
    /// Named component-state blobs (e.g. `CheckpointPort::save_bytes`
    /// output), each integrity-checksummed on the wire.
    pub parts: Vec<(String, Vec<u8>)>,
    /// Per-writing-rank patch shards.
    pub shards: Vec<Shard>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_box(out: &mut Vec<u8>, b: &IntBox) {
    put_i64(out, b.lo[0]);
    put_i64(out, b.lo[1]);
    put_i64(out, b.hi[0]);
    put_i64(out, b.hi[1]);
}

/// Cursor-style reader over a byte slice with typed EOF errors.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.buf.len() {
            return Err(CkptError::Corrupt(format!(
                "unexpected end of set at byte {} (want {n} more of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn boxx(&mut self) -> Result<IntBox, CkptError> {
        let lo = [self.i64()?, self.i64()?];
        let hi = [self.i64()?, self.i64()?];
        if lo[0] > hi[0] || lo[1] > hi[1] {
            return Err(CkptError::Corrupt(format!("inverted box {lo:?}..{hi:?}")));
        }
        Ok(IntBox::new(lo, hi))
    }

    fn bytes(&mut self, cap: usize, what: &str) -> Result<Vec<u8>, CkptError> {
        let n = self.u64()? as usize;
        if n > cap {
            return Err(CkptError::Corrupt(format!(
                "{what} length {n} exceeds {cap}"
            )));
        }
        Ok(self.take(n)?.to_vec())
    }
}

impl CheckpointSet {
    /// Serialize the whole set, trailer checksum included. Byte-stable:
    /// the same set always serializes to the same bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut out, self.epoch);
        put_u64(&mut out, self.meta.step);
        put_u64(&mut out, self.meta.config_hash);
        put_u64(&mut out, self.meta.nvars as u64);
        put_i64(&mut out, self.meta.nghost);
        put_box(&mut out, &self.hier.domain0);
        put_u64(&mut out, self.hier.origin[0]);
        put_u64(&mut out, self.hier.origin[1]);
        put_u64(&mut out, self.hier.dx0[0]);
        put_u64(&mut out, self.hier.dx0[1]);
        put_i64(&mut out, self.hier.ratio);
        put_u64(&mut out, self.hier.next_id as u64);
        put_u64(&mut out, self.hier.patches.len() as u64);
        for level in &self.hier.patches {
            put_u64(&mut out, level.len() as u64);
            for &(id, interior) in level {
                put_u64(&mut out, id as u64);
                put_box(&mut out, &interior);
            }
        }
        put_u64(&mut out, self.parts.len() as u64);
        for (name, blob) in &self.parts {
            put_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, blob.len() as u64);
            out.extend_from_slice(blob);
            put_u64(&mut out, fnv1a64(FNV1A_INIT, blob));
        }
        put_u64(&mut out, self.shards.len() as u64);
        for shard in &self.shards {
            put_u64(&mut out, shard.writer as u64);
            put_u64(&mut out, shard.n_records);
            put_u64(&mut out, shard.records.len() as u64);
            out.extend_from_slice(&shard.records);
            put_u64(&mut out, fnv1a64(FNV1A_INIT, &shard.records));
        }
        let sum = fnv1a64(FNV1A_INIT, &out);
        put_u64(&mut out, sum);
        out
    }

    /// Parse and integrity-check a serialized set: the whole-set trailer
    /// checksum, every per-part and per-shard checksum, and the header
    /// fields are all validated before anything is returned.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CkptError> {
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(CkptError::BadHeader(format!("{} bytes", buf.len())));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let computed = fnv1a64(FNV1A_INIT, body);
        if stored != computed {
            return Err(CkptError::Corrupt(format!(
                "set checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            )));
        }
        let mut r = Rd { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CkptError::BadHeader("magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CkptError::BadHeader(format!("version {version}")));
        }
        let epoch = r.u64()?;
        let step = r.u64()?;
        let config_hash = r.u64()?;
        let nvars = r.u64()? as usize;
        let nghost = r.i64()?;
        if nvars == 0 || nvars > 1 << 12 || !(0..=16).contains(&nghost) {
            return Err(CkptError::Corrupt(format!(
                "nvars {nvars}, nghost {nghost}"
            )));
        }
        let domain0 = r.boxx()?;
        let origin = [r.u64()?, r.u64()?];
        let dx0 = [r.u64()?, r.u64()?];
        let ratio = r.i64()?;
        if !(2..=16).contains(&ratio) {
            return Err(CkptError::Corrupt(format!("ratio {ratio}")));
        }
        let next_id = r.u64()? as usize;
        let n_levels = r.u64()? as usize;
        if n_levels == 0 || n_levels > 64 {
            return Err(CkptError::Corrupt(format!("{n_levels} levels")));
        }
        let mut patches = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n = r.u64()? as usize;
            if n > 1 << 24 {
                return Err(CkptError::Corrupt(format!("{n} patches")));
            }
            let mut level = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.u64()? as usize;
                let interior = r.boxx()?;
                level.push((id, interior));
            }
            patches.push(level);
        }
        let n_parts = r.u64()? as usize;
        if n_parts > 1 << 16 {
            return Err(CkptError::Corrupt(format!("{n_parts} parts")));
        }
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let name_bytes = r.bytes(1 << 20, "part name")?;
            let name = String::from_utf8(name_bytes)
                .map_err(|e| CkptError::Corrupt(format!("part name: {e}")))?;
            let blob = r.bytes(1 << 32, "part blob")?;
            let sum = r.u64()?;
            let want = fnv1a64(FNV1A_INIT, &blob);
            if sum != want {
                return Err(CkptError::Corrupt(format!(
                    "part '{name}' checksum mismatch"
                )));
            }
            parts.push((name, blob));
        }
        let n_shards = r.u64()? as usize;
        if n_shards > 1 << 20 {
            return Err(CkptError::Corrupt(format!("{n_shards} shards")));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let writer = r.u64()? as usize;
            let n_records = r.u64()?;
            let records = r.bytes(1 << 32, "shard")?;
            let sum = r.u64()?;
            let want = fnv1a64(FNV1A_INIT, &records);
            if sum != want {
                return Err(CkptError::Corrupt(format!(
                    "shard of rank {writer} checksum mismatch"
                )));
            }
            shards.push(Shard {
                writer,
                n_records,
                records,
            });
        }
        if r.pos != body.len() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after last shard",
                body.len() - r.pos
            )));
        }
        let set = CheckpointSet {
            epoch,
            meta: CkptMeta {
                step,
                config_hash,
                nvars,
                nghost,
            },
            hier: SavedHierarchy {
                domain0,
                origin,
                dx0,
                ratio,
                next_id,
                patches,
            },
            parts,
            shards,
        };
        set.validate()?;
        Ok(set)
    }

    /// Structural completeness check: every patch of the saved hierarchy
    /// has exactly one well-formed record across the shards (box and
    /// record checksum included), and no shard holds a record for a patch
    /// the hierarchy does not know. Commit gates on this, so a set in a
    /// store is always restorable.
    pub fn validate(&self) -> Result<(), CkptError> {
        let mut seen: BTreeMap<(usize, usize), IntBox> = BTreeMap::new();
        for shard in &self.shards {
            let mut r = shard.records.as_slice();
            for _ in 0..shard.n_records {
                let (level, id, pd) = patch_from_bytes(&mut r, self.meta.nvars, self.meta.nghost)?;
                if seen.insert((level, id), pd.interior).is_some() {
                    return Err(CkptError::Corrupt(format!(
                        "patch (level {level}, id {id}) appears in two shards"
                    )));
                }
            }
            if !r.is_empty() {
                return Err(CkptError::Corrupt(format!(
                    "shard of rank {} has {} trailing bytes",
                    shard.writer,
                    r.len()
                )));
            }
        }
        for (level, id, interior) in self.hier.sorted_patches() {
            match seen.remove(&(level, id)) {
                None => {
                    return Err(CkptError::Corrupt(format!(
                        "patch (level {level}, id {id}) has no record in any shard"
                    )));
                }
                Some(b) if b != interior => {
                    return Err(CkptError::Corrupt(format!(
                        "patch (level {level}, id {id}) record box disagrees with manifest"
                    )));
                }
                Some(_) => {}
            }
        }
        if let Some(((level, id), _)) = seen.into_iter().next() {
            return Err(CkptError::Corrupt(format!(
                "shard record (level {level}, id {id}) not in the manifest"
            )));
        }
        Ok(())
    }

    /// Build a complete set from a fully-local state (every patch stored
    /// in one Data Object) — the single-writer degenerate case of the
    /// coordinated snapshot, used by tests and single-rank runs.
    pub fn from_local(
        epoch: u64,
        meta: CkptMeta,
        hier: &Hierarchy,
        dobj: &DataObject,
        parts: Vec<(String, Vec<u8>)>,
    ) -> Result<Self, CkptError> {
        let saved = SavedHierarchy::capture(hier);
        let mut records = Vec::new();
        let mut n_records = 0u64;
        for (level, id, _) in saved.sorted_patches() {
            let pd = dobj.patch(level, id).ok_or_else(|| {
                CkptError::Corrupt(format!("patch (level {level}, id {id}) not stored locally"))
            })?;
            cca_mesh::checkpoint::patch_to_bytes(level, id, pd, &mut records);
            n_records += 1;
        }
        let set = CheckpointSet {
            epoch,
            meta,
            hier: saved,
            parts,
            shards: vec![Shard {
                writer: 0,
                n_records,
                records,
            }],
        };
        set.validate()?;
        Ok(set)
    }

    /// The blob of the named component-state part, if present.
    pub fn part(&self, name: &str) -> Option<&[u8]> {
        self.parts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Index every record by `(level, id)` as a borrowed byte slice,
    /// using the length prefixes — no field data is copied or parsed.
    /// Assumes a validated set (commit gates on [`CheckpointSet::validate`]).
    pub fn record_index(&self) -> BTreeMap<(usize, usize), &[u8]> {
        let mut index = BTreeMap::new();
        for shard in &self.shards {
            let mut rest = shard.records.as_slice();
            while rest.len() >= 24 {
                let len = u64::from_le_bytes(rest[..8].try_into().expect("8")) as usize;
                let len = len.min(rest.len());
                let level = u64::from_le_bytes(rest[8..16].try_into().expect("8")) as usize;
                let id = u64::from_le_bytes(rest[16..24].try_into().expect("8")) as usize;
                index.insert((level, id), &rest[..len]);
                rest = &rest[len..];
            }
        }
        index
    }

    /// Exact byte length of the records for the patches `owner_rank` owns
    /// under the hierarchy `hier` — derivable from replicated metadata
    /// alone, which is what lets every rank emit identical comm-plan rows
    /// for checkpoint and restore exchanges without seeing the data.
    pub fn owned_record_len(
        hier: &Hierarchy,
        owner_rank: usize,
        nvars: usize,
        nghost: i64,
    ) -> usize {
        hier.levels
            .iter()
            .flat_map(|l| l.patches.iter())
            .filter(|p| p.owner == owner_rank)
            .map(|p| patch_record_len(&p.interior, nvars, nghost))
            .sum()
    }

    /// Restore every patch of the set into one Data Object (the local
    /// inverse of [`CheckpointSet::from_local`]). Returns the rebuilt
    /// hierarchy and data.
    pub fn restore_local(&self) -> Result<(Hierarchy, DataObject), CkptError> {
        let hier = self.hier.rebuild();
        let mut dobj = DataObject::new(self.meta.nvars, self.meta.nghost);
        dobj.ensure_levels(hier.n_levels());
        for shard in &self.shards {
            let mut r = shard.records.as_slice();
            for _ in 0..shard.n_records {
                let (level, id, pd) = patch_from_bytes(&mut r, self.meta.nvars, self.meta.nghost)?;
                dobj.ensure_levels(level + 1);
                dobj.insert(level, id, pd);
            }
        }
        Ok((hier, dobj))
    }
}
