//! The coordinated checkpoint/restore protocol over SCMD ranks.
//!
//! **Snapshot** runs at a macro-step barrier: every rank serializes its
//! owned patches in `(level, id)` order into one shard of hardened
//! records, ships it to rank 0 on [`TAG_CKPT`], and rank 0 assembles the
//! manifest (replicated hierarchy metadata + id watermark + config hash)
//! with all shards into a [`CheckpointSet`], validates completeness, and
//! returns it for commit. A closing barrier makes the checkpoint a true
//! coordination line: no rank proceeds until the set is whole.
//!
//! **Restore** is elastic: every rank rebuilds the exact saved hierarchy
//! (id watermark included), replays the same deterministic LPT
//! assignment at the *new* rank count, and rank 0 scatters each rank its
//! owned records on [`TAG_RESTORE`]. Because shard lengths are derivable
//! from replicated metadata alone, every rank emits identical comm-plan
//! rows for both exchanges — so the PR 6 static checker (C001–C009) and
//! runtime trace audit (C010–C012) cover checkpoint and restore traffic
//! exactly like any ghost exchange.
//!
//! Both exchanges run inside an announced [`Communicator::set_phase`]
//! window, so a rank that dies mid-snapshot poisons its peers with
//! "during checkpoint epoch N" (router poison + SCMD re-raise, the same
//! machinery PR 7 gave regrids).

use crate::set::{CheckpointSet, CkptMeta, SavedHierarchy, Shard};
use cca_analyze::distplan::PlanBuilder;
use cca_comm::Communicator;
use cca_mesh::checkpoint::{patch_from_bytes, patch_to_bytes};
use cca_mesh::data::DataObject;
use cca_mesh::dist::DistributedHierarchy;
use cca_mesh::hierarchy::{Hierarchy, Patch};

/// Tag of shard gathers during a coordinated snapshot (continues the
/// `cca_mesh::dist` tag sequence, which ends at `TAG_MIGRATE = 45`).
pub const TAG_CKPT: u64 = 46;

/// Tag of record scatters during an elastic restore.
pub const TAG_RESTORE: u64 = 47;

/// Deterministic fault injection for recovery drills: kill `rank` at
/// macro step `step` — at the top of the step, or (with `mid_snapshot`)
/// inside the checkpoint phase that follows it, which exercises the
/// "during checkpoint epoch N" poison path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Rank to kill.
    pub rank: usize,
    /// Macro step at which the kill fires.
    pub step: usize,
    /// Die inside the checkpoint phase after `step` instead of at the
    /// top of `step`.
    pub mid_snapshot: bool,
}

/// All `(level, id)` pairs owned by `rank`, in `(level, id)` order.
fn owned_sorted(hier: &Hierarchy, rank: usize) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = hier
        .levels
        .iter()
        .enumerate()
        .flat_map(|(level, l)| {
            l.patches
                .iter()
                .filter(|p| p.owner == rank)
                .map(move |p| (level, p.id))
        })
        .collect();
    out.sort_unstable();
    out
}

/// Take one coordinated snapshot. Mirrors the shard gather and the
/// closing barrier into `plan`; returns the assembled, validated set on
/// rank 0 and `None` elsewhere. `parts` are rank 0's component-state
/// blobs (driver/integrator state); `kill` is the deterministic
/// fault-injection hook — `Some(r)` makes rank `r` panic inside the
/// announced checkpoint phase.
#[allow(clippy::too_many_arguments)]
pub fn snapshot(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    dh: &DistributedHierarchy,
    dobj: &DataObject,
    meta: CkptMeta,
    epoch: u64,
    parts: Vec<(String, Vec<u8>)>,
    kill: Option<usize>,
) -> Option<CheckpointSet> {
    let rank = comm.rank();
    let nranks = dh.nranks;
    debug_assert_eq!(meta.nvars, dobj.nvars);
    debug_assert_eq!(meta.nghost, dobj.nghost);
    // Wire lengths from replicated metadata: identical on every rank.
    let lens: Vec<usize> = (0..nranks)
        .map(|r| CheckpointSet::owned_record_len(&dh.hier, r, meta.nvars, meta.nghost))
        .collect();
    let msgs: Vec<(usize, usize, u64, u64)> = (1..nranks)
        .filter(|&r| lens[r] > 0)
        .map(|r| (r, 0usize, TAG_CKPT, lens[r] as u64))
        .collect();
    plan.exchange(&msgs);
    plan.barrier();
    comm.set_phase(&format!("checkpoint epoch {epoch}"));
    if kill == Some(rank) {
        panic!("injected fault: rank {rank} killed mid-snapshot");
    }
    // Serialize the local shard in (level, id) order.
    let owned = owned_sorted(&dh.hier, rank);
    let mut records = Vec::with_capacity(lens[rank]);
    for &(level, id) in &owned {
        let pd = dobj.patch(level, id).expect("owned patch stored locally");
        patch_to_bytes(level, id, pd, &mut records);
    }
    debug_assert_eq!(records.len(), lens[rank]);
    let result = if rank == 0 {
        let mut reqs = Vec::new();
        for &(src, _, _, _) in &msgs {
            reqs.push((src, comm.irecv::<u8>(src, TAG_CKPT)));
        }
        let mut shards = Vec::new();
        if !records.is_empty() {
            shards.push(Shard {
                writer: 0,
                n_records: owned.len() as u64,
                records,
            });
        }
        for (src, req) in reqs {
            let bytes = comm.wait(req);
            let n_records = owned_sorted(&dh.hier, src).len() as u64;
            shards.push(Shard {
                writer: src,
                n_records,
                records: bytes,
            });
        }
        let set = CheckpointSet {
            epoch,
            meta,
            hier: SavedHierarchy::capture(&dh.hier),
            parts,
            shards,
        };
        set.validate()
            .expect("assembled snapshot covers every patch");
        Some(set)
    } else {
        if !records.is_empty() {
            comm.isend(0, TAG_CKPT, &records);
        }
        None
    };
    comm.barrier();
    comm.clear_phase();
    result
}

/// Restore a cohort of `nranks` ranks (any count — equal to or different
/// from the writing cohort) from a complete set. Rebuilds the exact
/// hierarchy, replays the deterministic LPT assignment via
/// `work`/`affinity_tolerance` (the same cost model the interrupted run
/// used), and redistributes the saved records; the scatter and closing
/// barrier are mirrored into `plan`. Returns the hierarchy and each
/// rank's owned patch data, ready to resume at `set.meta.step`.
pub fn restore(
    comm: &Communicator,
    plan: &mut PlanBuilder,
    set: &CheckpointSet,
    nranks: usize,
    work: impl Fn(&Hierarchy, usize, &Patch) -> f64,
    affinity_tolerance: f64,
) -> (DistributedHierarchy, DataObject) {
    let rank = comm.rank();
    let (nvars, nghost) = (set.meta.nvars, set.meta.nghost);
    let mut dh = DistributedHierarchy::new(set.hier.rebuild(), nranks);
    dh.assign_owners(work, affinity_tolerance);
    let lens: Vec<usize> = (0..nranks)
        .map(|r| CheckpointSet::owned_record_len(&dh.hier, r, nvars, nghost))
        .collect();
    let msgs: Vec<(usize, usize, u64, u64)> = (1..nranks)
        .filter(|&r| lens[r] > 0)
        .map(|r| (0usize, r, TAG_RESTORE, lens[r] as u64))
        .collect();
    let epoch = plan.exchange(&msgs);
    plan.barrier();
    comm.set_phase(&format!("restore epoch {epoch}"));
    let mut dobj = DataObject::new(nvars, nghost);
    dobj.ensure_levels(dh.hier.n_levels());
    if rank == 0 {
        // Rank 0 reads the set: records for its own patches parse in
        // place, records for every other rank concatenate (still in
        // (level, id) order) into one message per destination.
        let index = set.record_index();
        for &(_, dst, _, len) in &msgs {
            let mut buf = Vec::with_capacity(len as usize);
            for (level, id) in owned_sorted(&dh.hier, dst) {
                buf.extend_from_slice(
                    index
                        .get(&(level, id))
                        .expect("validated set has every patch record"),
                );
            }
            debug_assert_eq!(buf.len() as u64, len);
            comm.isend(dst, TAG_RESTORE, &buf);
        }
        for (level, id) in owned_sorted(&dh.hier, 0) {
            let mut r = *index
                .get(&(level, id))
                .expect("validated set has every patch record");
            let (l, i, pd) =
                patch_from_bytes(&mut r, nvars, nghost).expect("validated record parses");
            debug_assert_eq!((l, i), (level, id));
            dobj.insert(level, id, pd);
        }
    } else if lens[rank] > 0 {
        let req = comm.irecv::<u8>(0, TAG_RESTORE);
        let payload = comm.wait(req);
        let mut r = payload.as_slice();
        for _ in owned_sorted(&dh.hier, rank) {
            let (level, id, pd) =
                patch_from_bytes(&mut r, nvars, nghost).expect("validated record parses");
            dobj.insert(level, id, pd);
        }
        debug_assert!(r.is_empty(), "trailing bytes in restore payload");
    }
    comm.barrier();
    comm.clear_phase();
    (dh, dobj)
}
