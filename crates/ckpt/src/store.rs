//! In-memory checkpoint-set store shared between a run and its recovery
//! driver: the stand-in for the parallel filesystem a production cohort
//! would write sets to. Thread-safe (rank threads commit, the driver
//! reads after a crash) and commit-atomic — a set enters the store whole
//! and validated or not at all, so "the last complete set" is always
//! well-defined even when a rank dies mid-snapshot.

use crate::set::{CheckpointSet, CkptError};
use std::sync::{Arc, Mutex};

/// A bounded store of complete checkpoint sets, newest last.
#[derive(Default)]
pub struct CkptStore {
    inner: Mutex<Vec<Arc<CheckpointSet>>>,
}

/// Complete sets retained; older ones are dropped (a real campaign keeps
/// a small rotation on disk for exactly the same reason).
const RETAIN: usize = 4;

impl CkptStore {
    /// An empty store.
    pub fn new() -> Self {
        CkptStore::default()
    }

    /// Validate and commit one complete set. Rejects sets that fail the
    /// structural completeness check or that are older than the newest
    /// committed epoch (a late commit must never roll the store back).
    pub fn commit(&self, set: CheckpointSet) -> Result<(), CkptError> {
        set.validate()?;
        let mut sets = self.inner.lock().expect("store lock");
        if let Some(last) = sets.last() {
            if set.epoch <= last.epoch {
                return Err(CkptError::Incompatible(format!(
                    "epoch {} not newer than committed epoch {}",
                    set.epoch, last.epoch
                )));
            }
        }
        sets.push(Arc::new(set));
        if sets.len() > RETAIN {
            let drop_n = sets.len() - RETAIN;
            sets.drain(..drop_n);
        }
        Ok(())
    }

    /// The newest complete set, if any.
    pub fn latest(&self) -> Option<Arc<CheckpointSet>> {
        self.inner.lock().expect("store lock").last().cloned()
    }

    /// Number of complete sets currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
