//! Cross-shard migration of preempted jobs: the handoff ticket a serving
//! fleet staples to checkpoint bytes that travel between shards.
//!
//! When a work-stealing scheduler moves a preempted job, the committed
//! [`crate::ComponentSet`] bytes are the *entire* migrated state. The
//! source shard seals a [`HandoffTicket`] over them (length, content
//! checksum, committed step count); the destination verifies the ticket
//! before enqueueing the continuation. The ticket makes corruption in
//! flight a typed, attributable error *before* any session time is spent
//! on a doomed restore — the same fail-closed discipline the restore
//! path itself applies — and carries the provenance (source/destination
//! shard) that migration accounting and trace audits report.

use crate::component::ComponentSet;
use crate::set::CkptError;
use cca_mesh::checkpoint::{fnv1a64, FNV1A_INIT};

/// Sealed summary of one checkpoint-set handoff between shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffTicket {
    /// Shard the preempted job yielded on.
    pub from_shard: usize,
    /// Shard the continuation resumes on.
    pub to_shard: usize,
    /// Absolute macro steps the migrated set covers.
    pub committed_steps: u64,
    /// Serialized set length, bytes (the migration-volume figure).
    pub bytes_len: usize,
    /// FNV-1a over the serialized set.
    pub checksum: u64,
}

impl HandoffTicket {
    /// Seal a ticket over `set_bytes`. Fails if the bytes are not a
    /// valid component set — a shard must never ship state it could not
    /// itself restore.
    pub fn seal(from_shard: usize, to_shard: usize, set_bytes: &[u8]) -> Result<Self, CkptError> {
        let set = ComponentSet::from_bytes(set_bytes)?;
        Ok(HandoffTicket {
            from_shard,
            to_shard,
            committed_steps: set.steps_done,
            bytes_len: set_bytes.len(),
            checksum: fnv1a64(FNV1A_INIT, set_bytes),
        })
    }

    /// Verify `set_bytes` on the destination side: length and content
    /// checksum must match the sealed ticket, and the bytes must still
    /// parse as a component set.
    pub fn verify(&self, set_bytes: &[u8]) -> Result<ComponentSet, CkptError> {
        if set_bytes.len() != self.bytes_len {
            return Err(CkptError::Corrupt(format!(
                "handoff length mismatch: ticket {} bytes, payload {} bytes",
                self.bytes_len,
                set_bytes.len()
            )));
        }
        let computed = fnv1a64(FNV1A_INIT, set_bytes);
        if computed != self.checksum {
            return Err(CkptError::Corrupt(format!(
                "handoff checksum mismatch: ticket {:016x}, payload {computed:016x}",
                self.checksum
            )));
        }
        let set = ComponentSet::from_bytes(set_bytes)?;
        if set.steps_done != self.committed_steps {
            return Err(CkptError::Incompatible(format!(
                "handoff step mismatch: ticket says {} committed steps, set says {}",
                self.committed_steps, set.steps_done
            )));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_bytes() -> Vec<u8> {
        ComponentSet {
            config_hash: 0xfeed,
            steps_done: 6,
            parts: vec![("grace".into(), vec![1, 2, 3, 4, 5])],
        }
        .to_bytes()
    }

    #[test]
    fn seal_and_verify_roundtrip() {
        let bytes = set_bytes();
        let ticket = HandoffTicket::seal(0, 3, &bytes).expect("valid set seals");
        assert_eq!(ticket.committed_steps, 6);
        assert_eq!(ticket.bytes_len, bytes.len());
        let set = ticket.verify(&bytes).expect("clean handoff verifies");
        assert_eq!(set.config_hash, 0xfeed);
    }

    #[test]
    fn corruption_in_flight_is_detected() {
        let bytes = set_bytes();
        let ticket = HandoffTicket::seal(1, 2, &bytes).expect("valid set seals");
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(ticket.verify(&flipped).is_err(), "bit flip must be caught");
        let truncated = &bytes[..bytes.len() - 1];
        assert!(ticket.verify(truncated).is_err(), "length gate");
    }

    #[test]
    fn garbage_never_seals() {
        assert!(HandoffTicket::seal(0, 1, &[0xde, 0xad, 0xbe, 0xef]).is_err());
    }
}
