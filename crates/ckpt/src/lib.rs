//! cca-ckpt: coordinated distributed checkpointing with elastic,
//! deterministic restart.
//!
//! This crate layers a checkpoint/restart subsystem over the component
//! framework's `CheckpointPort` and the hardened patch-record wire
//! format in [`cca_mesh::checkpoint`]. At macro-step barriers a cohort
//! of SCMD ranks takes a *coordinated snapshot*: every rank serializes
//! its owned patches into a checksummed shard, rank 0 assembles shards
//! with the replicated hierarchy metadata (including the exact fresh-id
//! watermark) and an RNG-free configuration hash into a versioned
//! [`CheckpointSet`], and a closing barrier commits the set atomically.
//!
//! Restart is *elastic and deterministic*: any rank count `P'` can
//! rebuild the saved hierarchy bit-exactly and replay the same
//! deterministic LPT owner assignment the live run would have produced
//! at `P'` ranks — so a run resumed from a checkpoint is bit-identical
//! to one that never stopped, regardless of cohort size. Both the
//! snapshot gather and the restore scatter are mirrored into the
//! comm-plan IR, putting checkpoint traffic under the same static
//! verification and runtime audit as every other exchange.
//!
//! Modules:
//! - [`set`] — the checkpoint-set container: manifest, shards,
//!   checksums, validation, and elastic record redistribution helpers.
//! - [`store`] — a bounded, commit-atomic in-memory set store shared
//!   between a run and its recovery driver.
//! - [`coord`] — the coordinated snapshot/restore protocol over
//!   [`cca_comm::Communicator`], plus deterministic fault injection.
//! - [`component`] — single-process component-state sets used by the
//!   serving layer to preempt and migrate jobs.
//! - [`migrate`] — handoff tickets sealing component-set bytes that
//!   migrate between serve shards under work stealing.

pub mod component;
pub mod coord;
pub mod migrate;
pub mod set;
pub mod store;

pub use component::ComponentSet;
pub use coord::{restore, snapshot, FaultPlan, TAG_CKPT, TAG_RESTORE};
pub use migrate::HandoffTicket;
pub use set::{CheckpointSet, CkptError, CkptMeta, SavedHierarchy, Shard};
pub use store::CkptStore;
