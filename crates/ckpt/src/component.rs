//! Component-state checkpoint sets: the single-process counterpart of
//! the distributed [`crate::set::CheckpointSet`], used by the serving
//! layer to preempt and migrate long jobs. Instead of handing clients a
//! raw `CheckpointPort::save_bytes` blob, the server wraps every named
//! component blob in a versioned container with per-part and whole-set
//! checksums plus the same RNG-free configuration hash the distributed
//! sets carry — so a resume against the wrong job, a truncated transfer,
//! or a flipped bit is a typed error before any session time is spent.

use crate::set::CkptError;
use cca_mesh::checkpoint::{fnv1a64, FNV1A_INIT};

const MAGIC: &[u8; 4] = b"CCKC";
const VERSION: u32 = 1;

/// A checkpoint of one job's component state: named blobs plus identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentSet {
    /// RNG-free hash of the physics-bearing job configuration (step
    /// counts excluded, so a shorter resume leg still matches).
    pub config_hash: u64,
    /// Macro steps the checkpointed run had completed.
    pub steps_done: u64,
    /// Named component blobs, e.g. `("grace", CheckpointPort bytes)`.
    pub parts: Vec<(String, Vec<u8>)>,
}

impl ComponentSet {
    /// Serialize, with per-part and trailer checksums. Byte-stable.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.steps_done.to_le_bytes());
        out.extend_from_slice(&(self.parts.len() as u64).to_le_bytes());
        for (name, blob) in &self.parts {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(blob);
            out.extend_from_slice(&fnv1a64(FNV1A_INIT, blob).to_le_bytes());
        }
        let sum = fnv1a64(FNV1A_INIT, &out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and integrity-check a serialized component set.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CkptError> {
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(CkptError::BadHeader(format!("{} bytes", buf.len())));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let computed = fnv1a64(FNV1A_INIT, body);
        if stored != computed {
            return Err(CkptError::Corrupt(format!(
                "component-set checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            )));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CkptError> {
            if *pos + n > body.len() {
                return Err(CkptError::Corrupt(format!(
                    "unexpected end of component set at byte {pos}"
                )));
            }
            let s = &body[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(CkptError::BadHeader("magic".into()));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        if version != VERSION {
            return Err(CkptError::BadHeader(format!("version {version}")));
        }
        let config_hash = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let steps_done = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let n_parts = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        if n_parts > 1 << 16 {
            return Err(CkptError::Corrupt(format!("{n_parts} parts")));
        }
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let name_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
            if name_len > 1 << 20 {
                return Err(CkptError::Corrupt(format!("part name length {name_len}")));
            }
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|e| CkptError::Corrupt(format!("part name: {e}")))?;
            let blob_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
            if blob_len > 1 << 32 {
                return Err(CkptError::Corrupt(format!("part blob length {blob_len}")));
            }
            let blob = take(&mut pos, blob_len)?.to_vec();
            let sum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            if sum != fnv1a64(FNV1A_INIT, &blob) {
                return Err(CkptError::Corrupt(format!(
                    "part '{name}' checksum mismatch"
                )));
            }
            parts.push((name, blob));
        }
        if pos != body.len() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after last part",
                body.len() - pos
            )));
        }
        Ok(ComponentSet {
            config_hash,
            steps_done,
            parts,
        })
    }

    /// The blob of the named part, if present.
    pub fn part(&self, name: &str) -> Option<&[u8]> {
        self.parts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComponentSet {
        ComponentSet {
            config_hash: 0xdead_beef_1234_5678,
            steps_done: 17,
            parts: vec![
                ("grace".into(), vec![1, 2, 3, 4, 5]),
                ("integrator".into(), vec![]),
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let set = sample();
        let bytes = set.to_bytes();
        assert_eq!(bytes, set.to_bytes(), "serialization must be byte-stable");
        let back = ComponentSet::from_bytes(&bytes).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.part("grace"), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(back.part("nope"), None);
    }

    #[test]
    fn corruption_and_truncation_are_typed_errors() {
        let bytes = sample().to_bytes();
        for i in [4usize, 20, bytes.len() / 2, bytes.len() - 4] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let err = ComponentSet::from_bytes(&bad).err().unwrap();
            assert!(
                matches!(err, CkptError::Corrupt(_) | CkptError::BadHeader(_)),
                "byte {i}: {err}"
            );
        }
        let err = ComponentSet::from_bytes(&bytes[..bytes.len() / 2])
            .err()
            .unwrap();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
    }
}
